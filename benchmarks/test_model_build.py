"""Model-preparation benchmark: fresh builds vs incremental templates.

The bisection search of ``Reduce_Latency`` prepares one ILP per
iteration.  The fresh path rebuilds the expression model, compiles it to
standard form and hashes it for the solve cache — every iteration.  The
template path (:class:`repro.core.formulation.ModelTemplate`) does all
three once and then patches two right-hand sides per window.

This benchmark replays the *actual* window trajectory of a search on the
paper's two task graphs (AR filter, 4x4 DCT) through both preparation
paths and times them; it also runs the full search end-to-end with
``reuse_templates`` on and off and asserts the trajectories — every
window tried, and the final latency — are identical, i.e. the fast path
changes nothing but the clock.

Writes ``benchmarks/results/BENCH_model_build.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import ModelTemplate, SolverSettings, bounds, build_model, reduce_latency
from repro.solve import SolveExecutor, fingerprint_model
from repro.taskgraph import ar_filter, dct_4x4

#: Search tolerances chosen to yield a healthy number of bisection
#: iterations within the quick-mode budget.
CASES = {
    "ar_filter": {
        "graph": ar_filter,
        "processor": lambda: ReconfigurableProcessor(
            400, 128, 20.0, name="ar_device"
        ),
        "delta": 0.1,
        "prep_repeats": 20,
    },
    "dct_4x4": {
        "graph": dct_4x4,
        "processor": lambda: ReconfigurableProcessor(
            576.0, 2048.0, 30.0, name="R576"
        ),
        "delta": 200.0,
        "prep_repeats": 5,
    },
}


def run_search(case, reuse_templates: bool):
    graph = case["graph"]()
    processor = case["processor"]()
    settings = SolverSettings(
        time_limit=SOLVE_LIMIT, reuse_templates=reuse_templates
    )
    executor = SolveExecutor(settings)
    n = bounds.min_area_partitions(graph, processor.resource_capacity)
    result = None
    for _ in range(8):  # escalate past infeasible partition bounds
        result = reduce_latency(
            graph,
            processor,
            n,
            bounds.max_latency(graph, n, processor.reconfiguration_time),
            bounds.min_latency(graph, n, processor.reconfiguration_time),
            case["delta"],
            settings=settings,
            executor=executor,
        )
        if result.feasible:
            break
        n += 1
    assert result is not None and result.feasible
    return result, graph, processor, n


def best_of(repeats, run):
    """Minimum wall time over ``repeats`` runs — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def time_fresh_prep(graph, processor, n, windows, options, repeats):
    """Per-iteration cost of the pre-template path: build+compile+hash."""

    def trajectory():
        for d_max, d_min in windows:
            tp = build_model(graph, processor, n, d_max, d_min, options)
            tp.model.compile()
            fingerprint_model(tp)

    return best_of(repeats, trajectory) / len(windows)


def time_template_prep(graph, processor, n, windows, options, repeats):
    """Per-iteration cost of the template path, one-time build included."""

    def trajectory():
        template = ModelTemplate(graph, processor, n, options)
        for d_max, d_min in windows:
            fingerprint_model(template.instantiate(d_min, d_max))

    return best_of(repeats, trajectory) / len(windows)


def test_template_prep_speedup_and_identical_trajectory():
    payload: dict = {"solve_limit": SOLVE_LIMIT, "cases": {}}
    speedups = []

    for name, case in CASES.items():
        templated, graph, processor, n = run_search(
            case, reuse_templates=True
        )
        fresh, _, _, n_fresh = run_search(case, reuse_templates=False)

        # The incremental path must not change the search at all.
        assert n == n_fresh
        assert fresh.achieved == pytest.approx(templated.achieved, abs=1e-9)
        templated_windows = [
            (r.d_max, r.d_min) for r in templated.trace
        ]
        fresh_windows = [(r.d_max, r.d_min) for r in fresh.trace]
        assert templated_windows == fresh_windows

        # Replay the real trajectory through both preparation paths.
        # The executor attaches the guiding objective before building;
        # reproduce its effective options for a faithful cost model.
        options = SolveExecutor(
            SolverSettings(time_limit=SOLVE_LIMIT)
        )._effective_options(None)
        repeats = case["prep_repeats"]
        fresh_per_iter = time_fresh_prep(
            graph, processor, n, templated_windows, options, repeats
        )
        template_per_iter = time_template_prep(
            graph, processor, n, templated_windows, options, repeats
        )
        speedup = fresh_per_iter / template_per_iter
        speedups.append(speedup)

        payload["cases"][name] = {
            "num_partitions": n,
            "delta": case["delta"],
            "iterations": len(templated_windows),
            "windows": templated_windows,
            "final_latency_templated": templated.achieved,
            "final_latency_fresh": fresh.achieved,
            "trajectories_identical": templated_windows == fresh_windows,
            "fresh_prep_s_per_iter": fresh_per_iter,
            "template_prep_s_per_iter": template_per_iter,
            "prep_speedup": round(speedup, 2),
            "template_builds": templated.telemetry.template_builds,
            "template_instantiations": (
                templated.telemetry.template_instantiations
            ),
        }

    payload["min_prep_speedup"] = round(min(speedups), 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_model_build.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Acceptance: at least a 3x reduction in per-iteration model
    # preparation time on every case (one-time template build included).
    assert min(speedups) >= 3.0, payload
