"""Section 2 motivating experiment: the reconfiguration-overhead regimes.

Paper claim: with a large ``C_T`` the least-partition solution minimizes
latency; with a small ``C_T`` spending extra partitions on faster design
points can win.  We sweep ``C_T`` over five orders of magnitude on a
synthetic layered workload and check both regimes.
"""

from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig
from repro.experiments import reconfiguration_sweep, sweep_table
from repro.taskgraph import layered_graph

CTS = (0.0, 10.0, 1_000.0, 100_000.0)


def test_ct_crossover(benchmark, bench_settings, artifact_writer):
    graph = layered_graph(
        num_levels=4, tasks_per_level=3, seed=7, edge_probability=0.6
    )
    base = ReconfigurableProcessor(900, 512, 0.0)

    points = benchmark.pedantic(
        lambda: reconfiguration_sweep(
            graph,
            base,
            CTS,
            config=RefinementConfig(gamma=1, delta_fraction=0.03,
                                    time_budget=120.0),
            settings=bench_settings,
        ),
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "motivation_ct_crossover.txt",
        sweep_table(
            points, "Section 2 motivation: partition count vs C_T"
        ).render(),
    )

    assert all(p.partitions is not None for p in points)
    smallest_ct, largest_ct = points[0], points[-1]
    # Large overhead collapses to no more partitions than zero overhead.
    assert largest_ct.partitions <= smallest_ct.partitions
    # At zero overhead the ILP's *execution* latency is at least as good
    # as at the large-overhead point (it may buy speed with partitions).
    assert smallest_ct.execution_latency <= (
        largest_ct.execution_latency + 1e-6
    )
    # And the combined method never loses to the greedy baseline.
    for point in points:
        assert point.total_latency <= point.greedy_latency + 1e-6
