"""Ablation A: iterative search vs solving to optimality (Section 4).

Paper claim: "in none of these experiments could the optimal solution
process get even a single feasible solution in the same run time as the
iterative solution process."  We give both approaches the same wall-clock
budget on the DCT and compare what they deliver.
"""

from repro.core import FormulationOptions, SolverSettings, solve_optimal
from repro.experiments import TextTable, table5
from repro.taskgraph import dct_4x4


def test_iterative_beats_time_boxed_optimal(
    benchmark, artifact_writer, experiment_budget
):
    budget = min(experiment_budget, 240.0)
    solve_limit = budget / 12

    iterative = benchmark.pedantic(
        lambda: table5(
            settings=SolverSettings(time_limit=solve_limit),
            time_budget=budget,
        ),
        rounds=1,
        iterations=1,
    )
    assert iterative.best_latency is not None

    # The optimality run gets the SAME total budget, all on one bound.
    processor = iterative.experiment.processor()
    optimal = solve_optimal(
        dct_4x4(),
        processor,
        [iterative.best_partitions],
        options=FormulationOptions(symmetry_breaking=True),
        time_limit_per_solve=budget,
    )

    table = TextTable(
        "Ablation A: iterative vs optimal under equal wall-clock budget",
        ("approach", "latency (ns)", "proven optimal", "budget (s)"),
    )
    table.add_row("iterative", iterative.best_latency, False, budget)
    table.add_row(
        "optimal ILP",
        optimal.latency,
        optimal.proven_optimal,
        budget,
    )
    artifact_writer("ablation_iterative_vs_optimal.txt", table.render())

    # The optimality run must not have *finished* (otherwise the claim is
    # moot at this scale), and the iterative result is competitive with
    # whatever incumbent it scraped together.
    assert not optimal.proven_optimal
    if optimal.latency is not None:
        assert iterative.best_latency <= optimal.latency * 1.10
