"""Table 4: DCT, R_max = 576, C_T = 10 ms, alpha = 0.

Shape reproduced: the search starts at ``N_min^l = 8``, settles at the
smallest feasible partition count, and — because ``MinLatency(N+1)``
already exceeds the incumbent once 10 ms per reconfiguration is paid —
never relaxes ``N`` ("no relaxation of N was undertaken").

Substitution note (DESIGN.md): the paper's run found N = 8 infeasible
and succeeded at 9; our reconstructed DCT areas pack regularly, so 8 is
feasible.  The escalate-on-infeasible mechanism itself is exercised by
``tests/core/test_refine_partitions.py`` on a crafted fragmented
instance.
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table4


def test_table4(benchmark, bench_settings, experiment_budget, artifact_writer):
    result = run_and_record(
        benchmark, artifact_writer, table4, "table4",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result)

    explored = result.result.trace.partition_counts()
    assert explored[0] == 8
    # Large C_T: the min-latency cut stops all partition relaxation, so
    # only one partition bound is ever refined past phase 1.
    assert result.result.stopped_by_min_latency_cut
    assert result.best_partitions == max(explored)
    # The overhead dominates: 8+ reconfigurations at 10 ms each.
    assert result.best_latency > 8 * 10e6
