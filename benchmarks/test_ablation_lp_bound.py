"""Ablation E: the LP-relaxation D_min tightening (extension).

``SolverSettings.use_lp_bound`` raises the bisection's lower latency
bound to the LP-relaxation value before any MILP runs.  This ablation
verifies the extension changes *effort*, never *answers*: with the bound
off the search reproduces the paper's exact window bookkeeping; with it
on, provably-empty windows are skipped.
"""

from repro.core import (
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.experiments import TextTable, ar_processor
from repro.taskgraph import ar_filter, layered_graph
from repro.arch import ReconfigurableProcessor


CASES = [
    ("ar_filter", ar_filter, ar_processor),
    (
        "layered",
        lambda: layered_graph(3, 3, seed=4),
        lambda: ReconfigurableProcessor(700, 512, 40),
    ),
]


def run_case(factory, processor_factory, use_lp_bound):
    return refine_partitions_bound(
        factory(),
        processor_factory(),
        config=RefinementConfig(delta=10.0, gamma=1),
        settings=SolverSettings(
            time_limit=30.0, use_lp_bound=use_lp_bound
        ),
    )


def test_lp_bound_changes_effort_not_answers(benchmark, artifact_writer):
    table = TextTable(
        "Ablation E: LP-relaxation D_min tightening",
        ("case", "LP bound", "ILP solves", "best D_a (ns)"),
    )
    outcomes = {}

    def run():
        for name, factory, proc_factory in CASES:
            for flag in (False, True):
                result = run_case(factory, proc_factory, flag)
                outcomes[(name, flag)] = result
                table.add_row(
                    name, "on" if flag else "off",
                    len(result.trace), result.achieved,
                )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact_writer("ablation_lp_bound.txt", table.render())

    for name, _f, _p in CASES:
        off = outcomes[(name, False)]
        on = outcomes[(name, True)]
        assert off.feasible and on.feasible
        # Same quality (within the shared delta)...
        assert abs(on.achieved - off.achieved) <= 10.0 + 1e-6
        # ...with no extra solver effort when the bound is on.
        assert len(on.trace) <= len(off.trace)
