"""Ablation B: the latency-tolerance trade-off (Tables 5 vs 7, 6 vs 8).

Paper claim: "reducing latency tolerance increases the run time but
achieves better solutions."  Sweep delta on the R=1024 DCT experiment and
record iterations + achieved latency per setting.
"""

from repro.experiments import DctExperiment, SMALL_CT, TextTable, run_experiment
from repro.taskgraph import dct_4x4
from repro.core import FormulationOptions

DELTAS = (1600.0, 800.0, 200.0)


def run_delta(delta, settings, budget):
    experiment = DctExperiment(
        table=f"delta={delta:g}",
        resource_capacity=1024,
        reconfiguration_time=SMALL_CT,
        delta=delta,
        alpha=1,
        gamma=0,
        solver=settings,
        time_budget=budget,
    )
    return run_experiment(
        experiment,
        dct_4x4(),
        options=FormulationOptions(symmetry_breaking=True),
    )


def test_delta_sweep(benchmark, bench_settings, artifact_writer,
                     experiment_budget):
    budget = experiment_budget / len(DELTAS)

    def sweep():
        return [run_delta(d, bench_settings, budget) for d in DELTAS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(
        "Ablation B: latency tolerance (delta) vs effort and quality",
        ("delta", "ILP solves", "best D_a (ns)", "wall time (s)"),
    )
    for delta, result in zip(DELTAS, results):
        table.add_row(
            delta, result.iterations, result.best_latency,
            round(result.wall_time, 1),
        )
    artifact_writer("ablation_delta_sweep.txt", table.render())

    solves = [r.iterations for r in results]
    latencies = [r.best_latency for r in results]
    assert all(lat is not None for lat in latencies)
    # Tightening the tolerance never reduces the iteration count...
    assert solves[-1] >= solves[0]
    # ...and never worsens the solution beyond solver noise.
    assert latencies[-1] <= latencies[0] * 1.05
