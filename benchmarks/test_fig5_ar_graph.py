"""Figure 5: the AR-filter task graph (structure + DOT export)."""

from repro.experiments import figure5_ar_graph
from repro.taskgraph import ar_filter


def test_fig5_ar_graph(benchmark, artifact_writer):
    dot = benchmark.pedantic(figure5_ar_graph, rounds=1, iterations=1)
    artifact_writer("fig5.dot", dot)

    graph = ar_filter()
    # The figure's structure: 6 tasks, single source T1, single sink T6,
    # the T3/T4 parallel sections, and the paper's design-point counts.
    assert len(graph) == 6
    assert graph.sources() == ("T1",)
    assert graph.sinks() == ("T6",)
    assert set(graph.successors("T2")) == {"T3", "T4"}
    assert len(graph.task("T1").design_points) == 3
    assert '"T2" -> "T3"' in dot
