"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) and writes the rendered artifact to
``benchmarks/results/``.  Two modes:

* **quick** (default): per-solve time limit of 12 s and a 240 s budget
  per experiment — the whole harness finishes in tens of minutes and
  every *shape* assertion still holds.
* **full**: set ``REPRO_BENCH_FULL=1`` for 60 s / 900 s budgets, which
  reproduces the higher-quality end of the search (e.g. the partition
  relaxation finding better DCT solutions at small ``C_T``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import SolverSettings

RESULTS_DIR = Path(__file__).parent / "results"

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

SOLVE_LIMIT = 60.0 if FULL_MODE else 12.0
EXPERIMENT_BUDGET = 900.0 if FULL_MODE else 240.0


@pytest.fixture
def bench_settings() -> SolverSettings:
    return SolverSettings(time_limit=SOLVE_LIMIT)


@pytest.fixture
def experiment_budget() -> float:
    return EXPERIMENT_BUDGET


def write_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture
def artifact_writer():
    return write_artifact
