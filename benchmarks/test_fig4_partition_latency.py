"""Figure 4: per-partition latency = the longest mapped path.

Three paths (350/400/150 ns) mapped to partition 1 give d_1 = 400 ns;
partition 2's single 300 ns path gives d_2 = 300 ns.  The execution
simulator must agree with the analytic value.
"""

import pytest

from repro.arch import ReconfigurableProcessor, simulate
from repro.experiments import figure4_partition_latency


def test_fig4_partition_latency(benchmark, artifact_writer):
    result = benchmark.pedantic(
        figure4_partition_latency, rounds=1, iterations=1
    )
    artifact_writer("fig4.txt", result.table.render())
    assert result.d1 == pytest.approx(400.0)
    assert result.d2 == pytest.approx(300.0)

    processor = ReconfigurableProcessor(1000, 1000, 50.0)
    report = simulate(result.design, processor)
    assert report.makespan == pytest.approx(400 + 300 + 2 * 50)
    by_partition = {t.partition: t for t in report.partitions}
    assert by_partition[1].compute_latency == pytest.approx(400.0)
    assert by_partition[2].compute_latency == pytest.approx(300.0)
