"""Smoke benchmark of the solver execution layer (portfolio + cache).

Four passes over the Table 3 configuration (DCT, R_max = 576, small
C_T, delta = 200):

1. **sequential** — scipy/HiGHS only, cold cache: the baseline search.
2. **portfolio (warm cache)** — highs+bnb racing, but sharing the
   sequential run's solve cache.  Exact-replay hits preserve the search
   trajectory bit-for-bit, so the final latency must equal the
   sequential run's and the cache hit rate must be nonzero.
3. **portfolio (cold cache)** — a genuine race from scratch, recorded
   for the wall-time comparison (its trajectory may legitimately differ:
   which backend answers first within the per-solve budget decides each
   window).
4. **accelerated** — sequential backend plus the cross-window
   acceleration flags (incumbent reuse, primal-first, persistent cuts)
   under the *same* per-solve budget.  The packing bound and the primal
   certificates answer the deep windows the seed run lost to timeouts
   (the seed recorded 17-40 per pass), so timeouts must land strictly
   below that baseline, with nonzero reuse counters.
5. **reduced, conclusive** — the same acceleration on the reduced
   two-collection DCT (``dct_4x4(rows=2)``): every window must end
   conclusively — zero timeouts, never degraded.  The full 32-task
   graph keeps a narrow band of windows between the packing bound and
   the true feasibility boundary that no backend can decide within any
   practical budget (the paper's own CPLEX runs hit the same wall and
   count a timeout as infeasible), so the no-degraded gate lives on the
   instance where conclusiveness is actually attainable.

A final micro-run drives the whole search with an artificially tiny
per-solve budget and asserts it *completes* with ``degraded=True`` —
the execution layer's no-exception guarantee.

Writes ``benchmarks/results/BENCH_portfolio.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import EXPERIMENT_BUDGET, RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings, refine_partitions_bound
from repro.solve import SolveExecutor
from repro.taskgraph import dct_4x4

R_MAX = 576.0
C_T = 30.0
DELTA = 200.0
#: Per-pass window timeouts the seed run recorded on this configuration
#: (17 sequential / 38 warm portfolio / 40 cold portfolio) before the
#: packing bound and the acceleration layer existed.
SEED_TIMEOUT_BASELINE = 17
#: Tolerance of the reduced conclusive pass: wide enough that the
#: bisection stops at the packing bound instead of probing the narrow
#: undecidable band just above it (~3% of the reduced D_max).
REDUCED_DELTA = 400.0


def run_search(settings, executor=None, graph=None, delta=DELTA):
    processor = ReconfigurableProcessor(R_MAX, 2048.0, C_T, name="R576")
    start = time.perf_counter()
    result = refine_partitions_bound(
        dct_4x4() if graph is None else graph,
        processor,
        RefinementConfig(delta=delta, gamma=1, time_budget=EXPERIMENT_BUDGET),
        settings=settings,
        executor=executor,
    )
    wall = time.perf_counter() - start
    return result, wall, processor


def run_payload(result, wall):
    telemetry = result.telemetry
    return {
        "final_latency": result.achieved,
        "wall_time": round(wall, 3),
        "degraded": result.degraded,
        "iterations": len(result.trace),
        "cache_hit_rate": telemetry.cache_hit_rate,
        "cache_hits": telemetry.cache_hits,
        "timeouts": telemetry.timeouts,
        "fallbacks": telemetry.fallbacks,
        "incumbent_reuses": telemetry.incumbent_reuses,
        "primal_hits": telemetry.primal_hits,
        "pooled_cuts": telemetry.pooled_cuts,
        "wall_time_percentiles": telemetry.wall_time_percentiles(),
        "backend_wins": dict(telemetry.backend_wins),
    }


def test_portfolio_speedup_and_cache():
    sequential_settings = SolverSettings(time_limit=SOLVE_LIMIT)
    portfolio_settings = SolverSettings(
        time_limit=SOLVE_LIMIT, portfolio=("highs", "bnb")
    )

    # 1. Sequential baseline, cold cache.
    seq_executor = SolveExecutor(sequential_settings)
    seq, seq_wall, processor = run_search(
        sequential_settings, executor=seq_executor
    )
    assert seq.feasible, "DCT at R_max=576 must be partitionable"
    assert seq.design.audit(processor) == []

    # 2. Portfolio run reusing the sequential run's solve cache: exact
    #    replays answer every previously-seen window, preserving the
    #    trajectory, so the outcome must be identical.
    warm_executor = SolveExecutor(
        portfolio_settings, cache=seq_executor.cache
    )
    warm, warm_wall, _ = run_search(portfolio_settings, executor=warm_executor)
    assert warm.feasible
    assert warm.achieved == pytest.approx(seq.achieved, abs=1e-6)
    assert warm.telemetry.cache_hit_rate > 0.0

    # 3. Portfolio run from scratch: wall-time comparison only.
    cold, cold_wall, _ = run_search(portfolio_settings)
    assert cold.feasible

    # 4. Cross-window acceleration under the same per-solve budget:
    #    the packing bound, primal certificates and carried incumbents
    #    must answer the deep windows the seed run lost to timeouts.
    accel_settings = SolverSettings(
        time_limit=SOLVE_LIMIT,
        incumbent_reuse=True,
        primal_first=True,
        persistent_cuts=True,
    )
    accel, accel_wall, _ = run_search(accel_settings)
    assert accel.feasible
    assert accel.telemetry.timeouts < SEED_TIMEOUT_BASELINE, (
        "acceleration must keep timeouts strictly below the seed's "
        f"{SEED_TIMEOUT_BASELINE}-timeout baseline, "
        f"got {accel.telemetry.timeouts}"
    )
    assert accel.telemetry.incumbent_reuses > 0
    assert accel.telemetry.primal_hits > 0

    # 5. Reduced two-collection DCT: with the undecidable band out of
    #    reach, the accelerated search must be conclusive end to end.
    reduced, reduced_wall, _ = run_search(
        accel_settings, graph=dct_4x4(rows=2), delta=REDUCED_DELTA
    )
    assert reduced.feasible
    assert not reduced.degraded, "reduced DCT run must stay conclusive"
    assert reduced.telemetry.timeouts == 0
    assert reduced.telemetry.incumbent_reuses > 0
    assert reduced.telemetry.primal_hits > 0

    # 6. Hostile budget: the search completes, flagged degraded.
    tiny = refine_partitions_bound(
        dct_4x4(),
        ReconfigurableProcessor(R_MAX, 2048.0, C_T),
        RefinementConfig(delta=DELTA, gamma=0, time_budget=30.0),
        settings=SolverSettings(time_limit=1e-4),
    )
    assert tiny.degraded
    assert tiny.feasible            # greedy fallback certified a design

    payload = {
        "experiment": {
            "graph": "dct_4x4",
            "r_max": R_MAX,
            "c_t": C_T,
            "delta": DELTA,
            "solve_limit": SOLVE_LIMIT,
            "time_budget": EXPERIMENT_BUDGET,
            "seed_timeout_baseline": SEED_TIMEOUT_BASELINE,
            "reduced_delta": REDUCED_DELTA,
        },
        "sequential": run_payload(seq, seq_wall),
        "portfolio_warm_cache": run_payload(warm, warm_wall),
        "portfolio_cold": run_payload(cold, cold_wall),
        "accelerated": run_payload(accel, accel_wall),
        "reduced_conclusive": run_payload(reduced, reduced_wall),
        "tiny_budget": {
            "degraded": tiny.degraded,
            "feasible": tiny.feasible,
            "final_latency": tiny.achieved,
        },
        "speedup_cold_vs_sequential": (
            round(seq_wall / cold_wall, 3) if cold_wall > 0 else None
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_portfolio.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
