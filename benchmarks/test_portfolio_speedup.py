"""Smoke benchmark of the solver execution layer (portfolio + cache).

Three passes over the Table 3 configuration (DCT, R_max = 576, small
C_T, delta = 200):

1. **sequential** — scipy/HiGHS only, cold cache: the baseline search.
2. **portfolio (warm cache)** — highs+bnb racing, but sharing the
   sequential run's solve cache.  Exact-replay hits preserve the search
   trajectory bit-for-bit, so the final latency must equal the
   sequential run's and the cache hit rate must be nonzero.
3. **portfolio (cold cache)** — a genuine race from scratch, recorded
   for the wall-time comparison (its trajectory may legitimately differ:
   which backend answers first within the per-solve budget decides each
   window).

A fourth micro-run drives the whole search with an artificially tiny
per-solve budget and asserts it *completes* with ``degraded=True`` —
the execution layer's no-exception guarantee.

Writes ``benchmarks/results/BENCH_portfolio.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import EXPERIMENT_BUDGET, RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings, refine_partitions_bound
from repro.solve import SolveExecutor
from repro.taskgraph import dct_4x4

R_MAX = 576.0
C_T = 30.0
DELTA = 200.0


def run_search(settings, executor=None):
    processor = ReconfigurableProcessor(R_MAX, 2048.0, C_T, name="R576")
    start = time.perf_counter()
    result = refine_partitions_bound(
        dct_4x4(),
        processor,
        RefinementConfig(delta=DELTA, gamma=1, time_budget=EXPERIMENT_BUDGET),
        settings=settings,
        executor=executor,
    )
    wall = time.perf_counter() - start
    return result, wall, processor


def run_payload(result, wall):
    telemetry = result.telemetry
    return {
        "final_latency": result.achieved,
        "wall_time": round(wall, 3),
        "degraded": result.degraded,
        "iterations": len(result.trace),
        "cache_hit_rate": telemetry.cache_hit_rate,
        "cache_hits": telemetry.cache_hits,
        "timeouts": telemetry.timeouts,
        "fallbacks": telemetry.fallbacks,
        "backend_wins": dict(telemetry.backend_wins),
    }


def test_portfolio_speedup_and_cache():
    sequential_settings = SolverSettings(time_limit=SOLVE_LIMIT)
    portfolio_settings = SolverSettings(
        time_limit=SOLVE_LIMIT, portfolio=("highs", "bnb")
    )

    # 1. Sequential baseline, cold cache.
    seq_executor = SolveExecutor(sequential_settings)
    seq, seq_wall, processor = run_search(
        sequential_settings, executor=seq_executor
    )
    assert seq.feasible, "DCT at R_max=576 must be partitionable"
    assert seq.design.audit(processor) == []

    # 2. Portfolio run reusing the sequential run's solve cache: exact
    #    replays answer every previously-seen window, preserving the
    #    trajectory, so the outcome must be identical.
    warm_executor = SolveExecutor(
        portfolio_settings, cache=seq_executor.cache
    )
    warm, warm_wall, _ = run_search(portfolio_settings, executor=warm_executor)
    assert warm.feasible
    assert warm.achieved == pytest.approx(seq.achieved, abs=1e-6)
    assert warm.telemetry.cache_hit_rate > 0.0

    # 3. Portfolio run from scratch: wall-time comparison only.
    cold, cold_wall, _ = run_search(portfolio_settings)
    assert cold.feasible

    # 4. Hostile budget: the search completes, flagged degraded.
    tiny = refine_partitions_bound(
        dct_4x4(),
        ReconfigurableProcessor(R_MAX, 2048.0, C_T),
        RefinementConfig(delta=DELTA, gamma=0, time_budget=30.0),
        settings=SolverSettings(time_limit=1e-4),
    )
    assert tiny.degraded
    assert tiny.feasible            # greedy fallback certified a design

    payload = {
        "experiment": {
            "graph": "dct_4x4",
            "r_max": R_MAX,
            "c_t": C_T,
            "delta": DELTA,
            "solve_limit": SOLVE_LIMIT,
            "time_budget": EXPERIMENT_BUDGET,
        },
        "sequential": run_payload(seq, seq_wall),
        "portfolio_warm_cache": run_payload(warm, warm_wall),
        "portfolio_cold": run_payload(cold, cold_wall),
        "tiny_budget": {
            "degraded": tiny.degraded,
            "feasible": tiny.feasible,
            "final_latency": tiny.achieved,
        },
        "speedup_cold_vs_sequential": (
            round(seq_wall / cold_wall, 3) if cold_wall > 0 else None
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_portfolio.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
