"""Overhead audit of the metrics layer.

Two promises are checked against the paper's two workloads (the AR
filter of Table 1 and the 4x4 DCT of Table 3):

1. **Disabled metrics are free.**  Every hot path is permanently
   instrumented, so the relevant cost when no registry is configured is
   the no-op metric machinery (``NULL_METRICS`` children).  A
   microbenchmark prices one no-op update, the metered twin run counts
   how many metric updates an average search iteration performs (from
   its own snapshot: every counter increment, gauge set and histogram
   observation leaves a sample), and the product must stay under 2% of
   the measured per-iteration wall time.  The search trajectory must
   also be identical with and without a registry attached — metrics may
   observe the search but never steer it.  (Identity is asserted up to
   the first timeout-decided window: rows concluded by the wall clock
   rather than by a solver verdict are legitimately run-dependent.)
2. **Enabled metrics are honest.**  The counters must reconcile with
   the always-on ``RunTelemetry``: window solves, cache hits and misses
   agree exactly.

Writes ``benchmarks/results/BENCH_metrics_overhead.json``.
"""

from __future__ import annotations

import json
import time

from conftest import EXPERIMENT_BUDGET, RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings, refine_partitions_bound
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.taskgraph import ar_filter, dct_4x4

CASES = [
    {
        "name": "ar_filter",
        "graph": ar_filter,
        "processor": lambda: ReconfigurableProcessor(400.0, 128.0, 20.0),
        "delta": 0.1,
    },
    {
        "name": "dct_4x4",
        "graph": dct_4x4,
        "processor": lambda: ReconfigurableProcessor(576.0, 2048.0, 30.0),
        "delta": 200.0,
    },
]

MAX_DISABLED_OVERHEAD = 0.02


def run_case(case, metrics=None):
    settings = SolverSettings(time_limit=SOLVE_LIMIT, metrics=metrics)
    start = time.perf_counter()
    result = refine_partitions_bound(
        case["graph"](),
        case["processor"](),
        RefinementConfig(
            delta=case["delta"], gamma=1, time_budget=EXPERIMENT_BUDGET
        ),
        settings=settings,
    )
    wall = time.perf_counter() - start
    return result, wall


def trajectory(result):
    return [
        (r.num_partitions, r.iteration, r.d_max, r.d_min, r.achieved)
        for r in result.trace
    ]


def conclusive_prefix(result) -> int:
    """Rows before the first verdict decided by the wall clock."""
    for index, record in enumerate(result.trace):
        if record.degraded or record.backend == "":
            return index
    return len(result.trace)


def null_update_cost(rounds: int = 200_000) -> float:
    """Seconds per no-op metric update, priced like the call sites: a
    ``labels()`` resolution plus the update itself."""
    counter = NULL_METRICS.counter("probe_total", "probe", ("a",))
    histogram = NULL_METRICS.histogram("probe_seconds", "probe")
    start = time.perf_counter()
    for i in range(rounds):
        counter.labels("x").inc()
        histogram.observe(0.1)
    return (time.perf_counter() - start) / (2 * rounds)


def updates_recorded(snapshot) -> float:
    """How many metric updates a run performed, from its snapshot.

    Counter values count their increments (all hot-path counters step
    by 1); histogram counts count their observations; gauge writes are
    bounded by the cut-pool counter that accompanies each ``set``.
    """
    updates = 0.0
    for name in snapshot.names():
        family = snapshot.family(name)
        if family["kind"] == "histogram":
            updates += sum(
                count for _, _, count in family["samples"].values()
            )
        else:
            updates += sum(abs(v) for v in family["samples"].values())
    return updates


def test_metrics_overhead():
    per_update = null_update_cost()
    payload = {
        "solve_limit": SOLVE_LIMIT,
        "null_update_cost_us": round(per_update * 1e6, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "cases": {},
    }

    for case in CASES:
        plain, plain_wall = run_case(case)
        assert plain.feasible, f"{case['name']} must be partitionable"

        registry = MetricsRegistry()
        metered, metered_wall = run_case(case, metrics=registry)
        snapshot = registry.snapshot()

        # Metrics never steer the search: identical up to the first
        # window decided by the wall clock instead of a solver verdict.
        comparable = min(
            conclusive_prefix(plain), conclusive_prefix(metered)
        )
        fully_conclusive = (
            comparable == len(plain.trace) == len(metered.trace)
        )
        assert (
            trajectory(plain)[:comparable]
            == trajectory(metered)[:comparable]
        ), f"{case['name']}: metrics changed the search trajectory"
        if fully_conclusive:
            assert trajectory(plain) == trajectory(metered)

        # The counters reconcile with the always-on telemetry.
        assert snapshot.total("repro_window_solves_total") == len(
            metered.telemetry.solves
        )
        assert snapshot.total("repro_solve_cache_hits_total") == (
            metered.telemetry.cache_hits
        )

        # Price the disabled path: metric updates per iteration
        # (measured on the metered twin) times the no-op update cost,
        # relative to the real per-iteration wall time.
        updates = updates_recorded(snapshot)
        iterations = len(plain.trace)
        updates_per_iteration = updates / max(iterations, 1)
        seconds_per_iteration = plain_wall / max(iterations, 1)
        disabled_overhead = (
            updates_per_iteration * per_update / seconds_per_iteration
        )
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"{case['name']}: null-metrics overhead "
            f"{disabled_overhead:.2%} exceeds {MAX_DISABLED_OVERHEAD:.0%}"
        )

        payload["cases"][case["name"]] = {
            "final_latency": plain.achieved,
            "iterations": iterations,
            "conclusive_iterations_compared": comparable,
            "fully_conclusive": fully_conclusive,
            "wall_time_off": round(plain_wall, 3),
            "wall_time_on": round(metered_wall, 3),
            "enabled_overhead": (
                round(metered_wall / plain_wall - 1.0, 4)
                if plain_wall > 0
                else None
            ),
            "metric_updates": int(updates),
            "updates_per_iteration": round(updates_per_iteration, 2),
            "disabled_overhead": round(disabled_overhead, 6),
            "window_solves_counted": int(
                snapshot.total("repro_window_solves_total")
            ),
            "cache_hits_counted": int(
                snapshot.total("repro_solve_cache_hits_total")
            ),
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_metrics_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
