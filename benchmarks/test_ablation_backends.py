"""Ablation C: solver backends on the same partitioning questions.

Compares scipy/HiGHS, the from-scratch branch & bound (both LP engines),
and the problem-specific CP backtracking on the AR filter.  All must
agree on feasibility and — since the AR design space is tiny — land on
the same optimal latency when driven by the iterative search.
"""

import time

from repro.core import (
    RefinementConfig,
    SolverSettings,
    bounds,
    cp_solve,
    refine_partitions_bound,
)
from repro.experiments import TextTable, ar_processor
from repro.taskgraph import ar_filter


def run_backend(graph, processor, backend, **extra):
    start = time.perf_counter()
    result = refine_partitions_bound(
        graph,
        processor,
        config=RefinementConfig(delta=10.0, gamma=1),
        settings=SolverSettings(backend=backend, time_limit=30.0,
                                extra=extra),
    )
    return result, time.perf_counter() - start


def test_backends_agree(benchmark, artifact_writer):
    graph = ar_filter()
    processor = ar_processor()

    def run_all():
        rows = {}
        rows["highs"] = run_backend(graph, processor, "highs")
        rows["bnb/scipy-lp"] = run_backend(graph, processor, "bnb")
        rows["bnb/own-simplex"] = run_backend(
            graph, processor, "bnb", lp_engine="own"
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # CP answers the same feasibility question at the best-found bound.
    reference = rows["highs"][0]
    n = reference.design.num_partitions_used
    start = time.perf_counter()
    cp_design = cp_solve(
        graph, processor, n,
        bounds.max_latency(graph, n, processor.reconfiguration_time),
    )
    cp_time = time.perf_counter() - start

    table = TextTable(
        "Ablation C: backend comparison on the AR filter",
        ("backend", "latency (ns)", "ILP solves", "wall time (s)"),
    )
    for name, (result, elapsed) in rows.items():
        table.add_row(
            name, result.achieved, len(result.trace), round(elapsed, 2)
        )
    table.add_row(
        "cp (feasibility only)",
        None if cp_design is None else cp_design.total_latency(processor),
        0,
        round(cp_time, 4),
    )
    artifact_writer("ablation_backends.txt", table.render())

    latencies = {
        name: result.achieved for name, (result, _t) in rows.items()
    }
    assert all(lat is not None for lat in latencies.values())
    # All ILP backends converge to the same (optimal) AR latency.
    assert len({round(lat, 6) for lat in latencies.values()}) == 1
    assert cp_design is not None
    assert cp_design.is_valid(processor)
