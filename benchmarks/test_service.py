"""Smoke benchmark of the partition service (sharding + disk cache).

Three passes over one mixed batch of five requests (AR filter, reduced
DCT, and three synthetic graphs; different deltas and processors):

1. **serial** — each request solved one after another through
   :class:`TemporalPartitioner`, the unsharded reference path.
2. **sharded, cold** — the same batch through a
   :class:`PartitionService` with a 4-worker process pool and a fresh
   disk cache.  Requests run concurrently and each request's partition
   bounds shard across the pool, so on parallel hardware the batch wall
   time must beat the serial pass (on a single-core host the gate moves
   to the warm replay — there is nothing for the pool to run on).
3. **sharded, warm** — a brand-new service on the same cache file: the
   disk hit count must be nonzero and every outcome identical to the
   cold pass (the monotone reuse rules replay verdicts, never guess).

Writes ``benchmarks/results/BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.service import PartitionService
from repro.taskgraph import ar_filter, dct_4x4, generators

WORKERS = 4

#: Process-pool sharding can only beat the serial wall time when the
#: machine actually runs workers in parallel.  On a single-core host
#: (CI containers, constrained sandboxes) the pool adds overhead with
#: nothing to amortize it, so the speed gate moves to the warm-cache
#: replay instead; the JSON records which gate applied.
PARALLEL_HARDWARE = (os.cpu_count() or 1) >= 2


def build_batch() -> tuple[ReconfigurableProcessor, list[PartitionRequest]]:
    """Five mixed requests: different graphs, deltas and processors."""
    default_device = ReconfigurableProcessor(
        400.0, 128.0, 20.0, name="ar_device"
    )

    def config(delta: float | None = None) -> PartitionerConfig:
        return PartitionerConfig(
            search=RefinementConfig(delta=delta, time_budget=120.0),
            solver=SolverSettings.fast(time_limit=SOLVE_LIMIT),
        )

    requests = [
        PartitionRequest(graph=ar_filter(), config=config(delta=10.0)),
        PartitionRequest(
            graph=dct_4x4(rows=2),
            processor=ReconfigurableProcessor(
                576.0, 2048.0, 30.0, name="R576"
            ),
            # Shards open their full latency window (no serial incumbent
            # to clip it), so the reduced DCT needs the paper's coarse
            # Table 6/8 tolerance to stay out of the undecidable band.
            config=config(delta=800.0),
        ),
        PartitionRequest(
            graph=generators.fork_join_graph(
                branches=3, branch_length=2, seed=5
            ),
            config=config(delta=25.0),
        ),
        PartitionRequest(
            graph=generators.layered_graph(
                num_levels=3, tasks_per_level=2, seed=7
            ),
            config=config(delta=25.0),
        ),
        PartitionRequest(
            graph=generators.series_parallel_graph(depth=2, seed=11),
            config=config(delta=25.0),
        ),
    ]
    return default_device, requests


def outcome_summary(outcome) -> dict:
    return {
        "feasible": outcome.feasible,
        "total_latency": outcome.total_latency,
        "num_partitions": outcome.num_partitions,
        "degraded": outcome.degraded,
    }


def test_sharded_batch_beats_serial_and_warm_cache_replays():
    device, requests = build_batch()

    # Pass 1: the unsharded reference, one request at a time.
    start = time.perf_counter()
    serial = [
        TemporalPartitioner(
            request.processor or device, request.config
        ).solve(PartitionRequest(graph=request.graph))
        for request in requests
    ]
    serial_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = str(Path(tmp) / "solves.sqlite")

        # Pass 2: sharded over a worker pool, cold disk cache.
        start = time.perf_counter()
        with PartitionService(
            processor=device, max_workers=WORKERS, cache_path=cache_path
        ) as service:
            cold = service.solve_batch(requests)
        cold_wall = time.perf_counter() - start

        # Pass 3: new service, same cache file — warm replay.
        start = time.perf_counter()
        with PartitionService(
            processor=device, max_workers=WORKERS, cache_path=cache_path
        ) as service:
            warm = service.solve_batch(requests)
        warm_wall = time.perf_counter() - start

    warm_disk_hits = sum(o.telemetry.disk_hits for o in warm)

    payload = {
        "experiment": {
            "batch_size": len(requests),
            "workers": WORKERS,
            "solve_limit": SOLVE_LIMIT,
            "graphs": [r.graph.name for r in requests],
        },
        "serial": {
            "wall_time": serial_wall,
            "outcomes": [outcome_summary(o) for o in serial],
        },
        "sharded_cold": {
            "wall_time": cold_wall,
            "outcomes": [outcome_summary(o) for o in cold],
        },
        "sharded_warm": {
            "wall_time": warm_wall,
            "disk_hits": warm_disk_hits,
            "outcomes": [outcome_summary(o) for o in warm],
        },
        "speedup_vs_serial": serial_wall / cold_wall if cold_wall else None,
        "warm_speedup_vs_serial": (
            serial_wall / warm_wall if warm_wall else None
        ),
        "parallel_hardware": PARALLEL_HARDWARE,
        "cpu_count": os.cpu_count(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Every pass solves every request, nothing degraded.
    for outcomes in (serial, cold, warm):
        assert all(o.feasible for o in outcomes)
        assert not any(o.degraded for o in outcomes)

    # Sharding must beat the serial reference on the batch — where the
    # hardware can actually run the workers side by side.  Single-core
    # hosts gate on the warm replay instead (same file, second pass):
    # the disk cache must carry the batch below the serial wall time.
    if PARALLEL_HARDWARE:
        assert cold_wall < serial_wall, (
            f"sharded batch ({cold_wall:.2f}s) not faster than serial "
            f"({serial_wall:.2f}s) on {os.cpu_count()} cores"
        )
    else:
        assert warm_wall < serial_wall, (
            f"warm replay ({warm_wall:.2f}s) not faster than serial "
            f"({serial_wall:.2f}s)"
        )

    # The warm pass replays from disk and reproduces the cold outcomes.
    assert warm_disk_hits > 0
    for before, after in zip(cold, warm):
        assert after.feasible == before.feasible
        assert after.total_latency == before.total_latency
        assert (
            after.design.as_assignment() == before.design.as_assignment()
        )

    # Verdict equivalence with the serial reference: same feasibility,
    # and final latencies within the request's bisection tolerance.
    # Shards open the full latency window of their bound (no serial
    # incumbent clipping it), so the two searches may settle on
    # different — equally valid — points inside the same delta band.
    for request, reference, outcome in zip(requests, serial, cold):
        assert outcome.feasible == reference.feasible
        delta = request.config.search.delta
        assert (
            abs(outcome.total_latency - reference.total_latency) <= delta
        ), (
            f"{request.graph.name}: sharded {outcome.total_latency} vs "
            f"serial {reference.total_latency} differ by more than "
            f"delta={delta}"
        )
