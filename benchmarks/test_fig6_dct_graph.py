"""Figure 6: the 32-task DCT graph (4 collections of 8 tasks)."""

from repro.experiments import figure6_dct_graph
from repro.taskgraph import dct_4x4


def test_fig6_dct_graph(benchmark, artifact_writer):
    dot = benchmark.pedantic(figure6_dct_graph, rounds=1, iterations=1)
    artifact_writer("fig6.dot", dot)

    graph = dct_4x4()
    assert len(graph) == 32
    assert graph.num_edges == 64
    # "A collection of eight tasks forms a row of the 4x4 output matrix":
    # the four collections are mutually disconnected.
    for row in range(4):
        for col in range(4):
            succs = graph.successors(f"Y{row}{col}")
            assert all(s.startswith(f"Z{row}") for s in succs)
    assert dot.count("->") == 64
