"""Figure 3: the crossing-variable (w) memory model.

The hand-partitioned five-task example's analytic boundary occupancies
must agree with the ILP's linearized ``w`` variables.
"""

import pytest

from repro.experiments import figure3_memory_model


def test_fig3_memory_model(benchmark, artifact_writer):
    result = benchmark.pedantic(figure3_memory_model, rounds=1, iterations=1)
    artifact_writer("fig3.txt", result.table.render())
    assert result.consistent
    assert result.analytic_memory[2] == pytest.approx(12.0)
    assert result.analytic_memory[3] == pytest.approx(10.0)
    # The edge spanning two boundaries is charged to both (Figure 3's
    # point: w models adjacent AND non-adjacent partitions).
    assert result.ilp_w[(2, "t1", "t4")] == pytest.approx(1.0)
    assert result.ilp_w[(3, "t1", "t4")] == pytest.approx(1.0)
