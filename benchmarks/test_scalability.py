"""Scalability: model size and first-feasible time vs graph size.

Not a paper table — the engineering counterpart of the paper's "for
larger designs ... we have developed this directed search procedure":
measures how the formulation and one feasibility query grow with the
workload, and how much chain clustering buys.
"""

import time

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, bounds, build_model
from repro.experiments import TextTable
from repro.taskgraph import cluster_chains, layered_graph


def one_query(graph, processor, solve_limit=30.0):
    n = bounds.min_area_partitions(
        graph, processor.resource_capacity
    ) + 1
    started = time.perf_counter()
    tp = build_model(
        graph,
        processor,
        n,
        bounds.max_latency(graph, n, processor.reconfiguration_time),
        options=FormulationOptions(symmetry_breaking=True),
    )
    build_time = time.perf_counter() - started
    started = time.perf_counter()
    solution = tp.solve(
        backend="highs", first_feasible=True, time_limit=solve_limit
    )
    solve_time = time.perf_counter() - started
    return tp.model, solution, build_time, solve_time


def test_scalability(benchmark, artifact_writer):
    processor = ReconfigurableProcessor(900, 4096, 30)
    sizes = [(2, 3), (3, 4), (4, 5), (5, 6)]

    table = TextTable(
        "Scalability: layered graphs, first-feasible query",
        (
            "tasks", "clustered", "binaries", "rows",
            "build (s)", "solve (s)", "feasible",
        ),
    )
    rows = []

    def run():
        for levels, per_level in sizes:
            graph = layered_graph(levels, per_level, seed=13)
            clustered = cluster_chains(graph).graph
            model, solution, build_time, solve_time = one_query(
                clustered, processor
            )
            rows.append(
                (
                    len(graph),
                    len(clustered),
                    model.num_integer_vars,
                    model.num_constraints,
                    round(build_time, 2),
                    round(solve_time, 2),
                    solution.status.has_solution,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add_row(*row)
    artifact_writer("scalability.txt", table.render())

    # Every size must produce a feasible design within the budget, and
    # the model grows monotonically with the workload.
    assert all(row[-1] for row in rows)
    binaries = [row[2] for row in rows]
    assert binaries == sorted(binaries)
