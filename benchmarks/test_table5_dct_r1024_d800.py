"""Table 5: DCT, R_max = 1024, small C_T, delta = 800, alpha = 1.

Shape reproduced: alpha = 1 starts the search at ``N_min^l + 1 = 6``
(the paper's Table 5 trace begins at N = 6); the coarse tolerance keeps
the iteration count low relative to Table 7's delta = 100 run.
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table5


def test_table5(benchmark, bench_settings, experiment_budget, artifact_writer):
    result = run_and_record(
        benchmark, artifact_writer, table5, "table5",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result)

    explored = result.result.trace.partition_counts()
    assert explored[0] == 6              # N_min^l(1024) = 5, alpha = 1
    # R = 1024 holds more parallelism than R = 576: the achieved
    # execution latency beats the serial worst case by a wide margin.
    execution = result.result.design.execution_latency()
    assert execution < 10_000            # serial worst case is 26,880
