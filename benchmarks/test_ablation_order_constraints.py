"""Ablation D: pairwise (paper eq. 2) vs index-sum temporal ordering.

The pairwise form spends N rows per edge but yields a tighter LP
relaxation than the compact partition-index inequality; the LP latency
bound quantifies the difference, and both formulations must agree on
integer feasibility.
"""

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, bounds, build_model
from repro.core.formulation import lp_latency_lower_bound
from repro.experiments import TextTable
from repro.taskgraph import dct_4x4, layered_graph


def test_order_constraint_tightness(benchmark, artifact_writer):
    cases = [
        ("dct/576", dct_4x4(), ReconfigurableProcessor(576, 2048, 30), 8),
        (
            "layered/700",
            layered_graph(3, 3, seed=2),
            ReconfigurableProcessor(700, 512, 40),
            None,
        ),
    ]

    table = TextTable(
        "Ablation D: temporal-order constraint formulations",
        ("case", "mode", "rows", "LP latency bound (ns)"),
    )
    bounds_by_case: dict = {}

    def run():
        for name, graph, processor, n in cases:
            n_parts = n or bounds.min_area_partitions(
                graph, processor.resource_capacity
            ) + 1
            for mode in ("pairwise", "index"):
                options = FormulationOptions(order_mode=mode)
                tp = build_model(
                    graph,
                    processor,
                    n_parts,
                    bounds.max_latency(
                        graph, n_parts, processor.reconfiguration_time
                    ),
                    options=options,
                )
                lp_bound = lp_latency_lower_bound(
                    graph, processor, n_parts, options
                )
                bounds_by_case[(name, mode)] = lp_bound
                table.add_row(
                    name, mode, tp.model.num_constraints,
                    round(lp_bound, 1),
                )
        return bounds_by_case

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact_writer("ablation_order_constraints.txt", table.render())

    for name, _graph, _processor, _n in cases:
        pairwise = bounds_by_case[(name, "pairwise")]
        index = bounds_by_case[(name, "index")]
        # Pairwise dominates: its feasible LP region is a subset.
        assert pairwise >= index - 1e-6


def test_order_modes_same_integer_answer(benchmark):
    graph = layered_graph(3, 2, seed=8)
    processor = ReconfigurableProcessor(700, 512, 40)
    n = bounds.min_area_partitions(graph, 700) + 1
    d_max = bounds.max_latency(graph, n, 40)

    def run():
        answers = {}
        for mode in ("pairwise", "index"):
            tp = build_model(
                graph, processor, n, d_max,
                options=FormulationOptions(order_mode=mode,
                                           minimize_latency=True),
            )
            solution = tp.model.solve(backend="highs", time_limit=60.0)
            answers[mode] = round(
                tp.design_from(solution).total_latency(processor), 6
            )
        return answers

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert answers["pairwise"] == answers["index"]
