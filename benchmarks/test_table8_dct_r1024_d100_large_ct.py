"""Table 8: DCT, R_max = 1024, delta = 100, C_T = 10 ms, alpha = 0.

Shape reproduced: same regime as Table 6 but with the fine tolerance —
at least as many refinement iterations, a solution at least as good, and
still no partition relaxation (the 10 ms overhead cut fires).
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table6, table8


def test_table8_vs_table6(
    benchmark, bench_settings, experiment_budget, artifact_writer
):
    result8 = run_and_record(
        benchmark, artifact_writer, table8, "table8",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result8)

    explored = result8.result.trace.partition_counts()
    assert explored[0] == 5
    assert result8.result.stopped_by_min_latency_cut
    assert result8.best_partitions == 5

    result6 = table6(settings=bench_settings, time_budget=experiment_budget)
    artifact_writer("table8_vs_table6.txt", "\n\n".join([
        result6.table().render(), result8.table().render()
    ]))
    assert len(result8.result.trace) >= len(result6.result.trace)
    assert result8.best_latency <= result6.best_latency * 1.05
