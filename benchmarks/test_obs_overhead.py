"""Overhead audit of the observability layer.

Two promises are checked against the paper's two workloads (the AR
filter of Table 1 and the 4x4 DCT of Table 3):

1. **Disabled tracing is free.**  Every pipeline layer is permanently
   instrumented, so the relevant cost when no tracer is configured is
   the null-span machinery.  A microbenchmark prices one no-op span,
   the traced run counts how many spans an average search iteration
   opens, and the product must stay under 2% of the measured
   per-iteration wall time.  The search trajectory must also be
   identical with and without a tracer attached — instrumentation may
   observe the search but never steer it.  (Identity is asserted up to
   the first timeout-decided window: rows concluded by the wall clock
   rather than by a solver verdict are legitimately run-dependent.)
2. **Enabled tracing is honest.**  The phase profile reconstructed from
   the event stream must agree with the always-on ``RunTelemetry``
   wall-clock accounting to within 5% on ``solve_window`` time.

Writes ``benchmarks/results/BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import EXPERIMENT_BUDGET, RESULTS_DIR, SOLVE_LIMIT
from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings, refine_partitions_bound
from repro.obs import NULL_TRACER, MemorySink, PhaseProfile, Tracer
from repro.taskgraph import ar_filter, dct_4x4

CASES = [
    {
        "name": "ar_filter",
        "graph": ar_filter,
        "processor": lambda: ReconfigurableProcessor(400.0, 128.0, 20.0),
        "delta": 0.1,
    },
    {
        "name": "dct_4x4",
        "graph": dct_4x4,
        "processor": lambda: ReconfigurableProcessor(576.0, 2048.0, 30.0),
        "delta": 200.0,
    },
]

MAX_DISABLED_OVERHEAD = 0.02
PROFILE_TELEMETRY_TOLERANCE = 0.05


def run_case(case, tracer=None):
    settings = SolverSettings(time_limit=SOLVE_LIMIT, tracer=tracer)
    start = time.perf_counter()
    result = refine_partitions_bound(
        case["graph"](),
        case["processor"](),
        RefinementConfig(
            delta=case["delta"], gamma=1, time_budget=EXPERIMENT_BUDGET
        ),
        settings=settings,
    )
    wall = time.perf_counter() - start
    return result, wall


def trajectory(result):
    return [
        (r.num_partitions, r.iteration, r.d_max, r.d_min, r.achieved)
        for r in result.trace
    ]


def conclusive_prefix(result) -> int:
    """Rows before the first verdict decided by the wall clock.

    A record with an empty backend (hard timeout) or the degraded flag
    was concluded by elapsed time, not by a solver; everything after it
    can differ between otherwise identical runs.
    """
    for index, record in enumerate(result.trace):
        if record.degraded or record.backend == "":
            return index
    return len(result.trace)


def null_span_cost(rounds: int = 50_000) -> float:
    """Seconds per no-op span enter/exit (attrs included, like call sites)."""
    start = time.perf_counter()
    for i in range(rounds):
        with NULL_TRACER.span("probe", iteration=i, d_min=0.0) as span:
            span.annotate(status="ok")
    return (time.perf_counter() - start) / rounds


def test_obs_overhead():
    per_span = null_span_cost()
    payload = {
        "solve_limit": SOLVE_LIMIT,
        "null_span_cost_us": round(per_span * 1e6, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "cases": {},
    }

    for case in CASES:
        plain, plain_wall = run_case(case)
        assert plain.feasible, f"{case['name']} must be partitionable"

        sink = MemorySink()
        tracer = Tracer(sink)
        traced, traced_wall = run_case(case, tracer=tracer)
        tracer.close()

        # Tracing never steers the search: identical up to the first
        # window decided by the wall clock instead of a solver verdict.
        comparable = min(conclusive_prefix(plain), conclusive_prefix(traced))
        fully_conclusive = comparable == len(plain.trace) == len(traced.trace)
        assert (
            trajectory(plain)[:comparable] == trajectory(traced)[:comparable]
        ), f"{case['name']}: tracer changed the search trajectory"
        if fully_conclusive:
            assert trajectory(plain) == trajectory(traced)

        # Price the disabled path: spans opened per iteration (measured
        # on the traced twin) times the no-op span cost, relative to the
        # real per-iteration wall time.
        span_ends = sum(
            1 for e in sink.events if e["type"] == "span_end"
        )
        iterations = len(plain.trace)
        spans_per_iteration = span_ends / max(iterations, 1)
        seconds_per_iteration = plain_wall / max(iterations, 1)
        disabled_overhead = (
            spans_per_iteration * per_span / seconds_per_iteration
        )
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"{case['name']}: null-tracer overhead "
            f"{disabled_overhead:.2%} exceeds {MAX_DISABLED_OVERHEAD:.0%}"
        )

        # The profile must reconcile with the always-on telemetry.
        profile = PhaseProfile.from_events(sink.events)
        traced_window = profile.inclusive("solve_window")
        measured_window = traced.telemetry.total_wall_time
        assert traced_window == pytest.approx(
            measured_window, rel=PROFILE_TELEMETRY_TOLERANCE
        ), (
            f"{case['name']}: profile solve_window {traced_window:.3f}s "
            f"vs telemetry {measured_window:.3f}s"
        )

        payload["cases"][case["name"]] = {
            "final_latency": plain.achieved,
            "iterations": iterations,
            "conclusive_iterations_compared": comparable,
            "fully_conclusive": fully_conclusive,
            "wall_time_off": round(plain_wall, 3),
            "wall_time_on": round(traced_wall, 3),
            "enabled_overhead": (
                round(traced_wall / plain_wall - 1.0, 4)
                if plain_wall > 0
                else None
            ),
            "events_recorded": len(sink.events),
            "spans_per_iteration": round(spans_per_iteration, 2),
            "disabled_overhead": round(disabled_overhead, 6),
            "profile_solve_window_s": round(traced_window, 3),
            "telemetry_solve_window_s": round(measured_window, 3),
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
