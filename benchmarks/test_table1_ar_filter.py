"""Table 1: AR filter — the iterative procedure matches the optimal ILP.

Paper claim: on the six-task AR filter the latency reached by the
iterative constraint-satisfaction search equals the latency of the ILP
solved to proven optimality.
"""

import pytest

from repro.experiments import table1_ar_filter


def test_table1_iterative_matches_optimal(
    benchmark, bench_settings, artifact_writer
):
    result = benchmark.pedantic(
        lambda: table1_ar_filter(settings=bench_settings),
        rounds=1,
        iterations=1,
    )
    artifact_writer("table1.txt", result.table.render())

    # The headline claim of Table 1.
    assert result.matches
    assert result.iterative_latency == pytest.approx(510.0)
    # The search explored several partition bounds and bisected within
    # them (the paper's trace has both feasible and infeasible rows).
    assert result.iterative_solves >= 4
    feasible_rows = [r for r in result.table.rows if r[-1] is not None]
    infeasible_rows = [r for r in result.table.rows if r[-1] is None]
    assert feasible_rows and infeasible_rows
