"""Table 2: the DCT task design points and their derived bound figures.

Also cross-checks the bundled HLS estimator: estimating the DCT's
vector-product template must give the same *shape* of design space
(monotone area-latency trade-off, comparable magnitudes).
"""

import pytest

from repro.experiments import table2_design_points
from repro.hls import estimate_design_points, vector_product_dfg
from repro.taskgraph.library import DCT_T1_POINTS, DCT_T2_POINTS


def test_table2_design_points(benchmark, artifact_writer):
    table = benchmark.pedantic(table2_design_points, rounds=1, iterations=1)
    artifact_writer("table2.txt", table.render())
    assert len(table.rows) == 6


def test_design_points_monotone_tradeoff(benchmark):
    def check():
        for points in (DCT_T1_POINTS, DCT_T2_POINTS):
            for smaller, larger in zip(points, points[1:]):
                assert larger.area > smaller.area
                assert larger.latency < smaller.latency

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_hls_estimator_reproduces_design_space_shape(benchmark):
    estimated = benchmark.pedantic(
        lambda: estimate_design_points(
            vector_product_dfg(length=4, data_width=8, accum_width=12)
        ),
        rounds=1,
        iterations=1,
    )
    assert len(estimated) >= 3
    # Same magnitude regime as the calibrated Table 2 points.
    assert 30 <= estimated[0].area <= 300
    assert 50 <= estimated[0].latency <= 2000
    ratio = estimated[0].latency / estimated[-1].latency
    paper_ratio = DCT_T1_POINTS[0].latency / DCT_T1_POINTS[-1].latency
    assert ratio == pytest.approx(paper_ratio, rel=1.0)  # same order
