"""Table 6: DCT, R_max = 1024, delta = 800, C_T = 10 ms, alpha = 0.

Shape reproduced: the search starts at ``N_min^l = 5`` and the
min-latency cut blocks all relaxation (large-overhead regime).
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table6


def test_table6(benchmark, bench_settings, experiment_budget, artifact_writer):
    result = run_and_record(
        benchmark, artifact_writer, table6, "table6",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result)

    explored = result.result.trace.partition_counts()
    assert explored[0] == 5              # N_min^l at R_max = 1024
    assert result.result.stopped_by_min_latency_cut
    assert result.best_partitions == 5
    # 5 reconfigurations dominate the total.
    assert result.best_latency > 5 * 10e6
    # Fewer partitions than the R=576 large-C_T run (Table 4): the bigger
    # device needs fewer configurations.
    assert result.best_partitions < 8
