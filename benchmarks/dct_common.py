"""Shared helpers for the DCT table benchmarks (Tables 3-8)."""

from __future__ import annotations

from repro.experiments import ExperimentResult


def run_and_record(
    benchmark, artifact_writer, table_fn, name, settings, budget
) -> ExperimentResult:
    result = benchmark.pedantic(
        lambda: table_fn(settings=settings, time_budget=budget),
        rounds=1,
        iterations=1,
    )
    artifact_writer(f"{name}.txt", result.table().render())
    return result


def assert_common_shape(result: ExperimentResult) -> None:
    """Invariants every DCT sweep satisfies."""
    assert result.best_latency is not None, "DCT must be partitionable"
    design = result.result.design
    processor = result.experiment.processor()
    assert design.audit(processor) == []
    assert result.best_latency == design.total_latency(processor)
    # Iteration numbering restarts at 1 for every partition bound.
    for n in {r.num_partitions for r in result.result.trace}:
        iterations = [
            r.iteration
            for r in result.result.trace
            if r.num_partitions == n
        ]
        assert iterations == list(range(1, len(iterations) + 1))
