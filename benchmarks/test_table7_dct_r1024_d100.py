"""Table 7: DCT, R_max = 1024, small C_T, delta = 100, alpha = 1.

Shape reproduced vs Table 5: shrinking the latency tolerance from 800 to
100 spends *more iterations* on the same experiment and reaches a
solution at least as good — the paper's "reducing latency tolerance
increases the run time but achieves better solutions".
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table5, table7


def test_table7_vs_table5(
    benchmark, bench_settings, experiment_budget, artifact_writer
):
    result7 = run_and_record(
        benchmark, artifact_writer, table7, "table7",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result7)
    assert result7.result.trace.partition_counts()[0] == 6

    # Companion coarse run for the delta comparison (not benchmarked to
    # keep one timing number per bench).
    result5 = table5(settings=bench_settings, time_budget=experiment_budget)
    artifact_writer("table7_vs_table5.txt", "\n\n".join([
        result5.table().render(), result7.table().render()
    ]))

    solves_at_first_n_7 = len(result7.result.trace.for_partitions(6))
    solves_at_first_n_5 = len(result5.result.trace.for_partitions(6))
    assert solves_at_first_n_7 >= solves_at_first_n_5
    assert result7.best_latency <= result5.best_latency * 1.05
