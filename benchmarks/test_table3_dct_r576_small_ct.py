"""Table 3: DCT, R_max = 576, small C_T (30 ns), delta = 200.

Shape reproduced: the search starts at ``N_min^l = 8``; with gamma = 1 it
never explores past 12 ("we stop our search at 12"); the trace mixes
feasible rows with infeasible bisection probes.
"""

from dct_common import assert_common_shape, run_and_record

from repro.experiments import table3


def test_table3(benchmark, bench_settings, experiment_budget, artifact_writer):
    result = run_and_record(
        benchmark, artifact_writer, table3, "table3",
        bench_settings, experiment_budget,
    )
    assert_common_shape(result)

    explored = result.result.trace.partition_counts()
    assert explored[0] == 8              # N_min^l at R_max = 576
    assert max(explored) <= 12           # N_min^u + gamma
    # The refinement tightened below the first feasible latency.
    first_feasible = next(
        r.achieved for r in result.result.trace if r.feasible
    )
    assert result.best_latency <= first_feasible
    # Small C_T: the reconfiguration overhead is a tiny share of latency.
    overhead = result.best_partitions * 30.0
    assert overhead < 0.1 * result.best_latency
