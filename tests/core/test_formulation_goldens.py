"""Bit-identity of the default scenario against committed goldens.

``tests/golden/paper_oneshot_identity.json`` (written by
``tools/capture_goldens.py``) pins compiled-model fingerprints and
search trajectories captured before the formulation stack was
decomposed into registered constraint families.  These tests recompute
every digest and every trajectory: any change to the ``paper_oneshot``
scenario — row order, variable order, coefficients, or search behavior
— fails here.  New scenarios must register their own families instead
of touching the paper's.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
    bounds,
    build_model,
)
from repro.core.formulation import FormulationOptions, ModelTemplate
from repro.solve.fingerprint import WINDOW_ROW_NAMES
from repro.taskgraph.library import ar_filter, dct_4x4

GOLDEN = Path(__file__).resolve().parent.parent / "golden"

CASES = {
    "ar": {
        "graph": ar_filter,
        "processor": dict(
            resource_capacity=400.0,
            memory_capacity=128.0,
            reconfiguration_time=20.0,
            name="xc6264",
        ),
    },
    "dct2": {
        "graph": lambda: dct_4x4(rows=2),
        "processor": dict(
            resource_capacity=576.0,
            memory_capacity=2048.0,
            reconfiguration_time=30.0,
            name="R576",
        ),
    },
}

OPTION_GRID = [
    ("pairwise", False),
    ("pairwise", True),
    ("index", False),
    ("index", True),
]


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN / "paper_oneshot_identity.json").read_text())


class TestCompiledFingerprints:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("order_mode,two_sided", OPTION_GRID)
    def test_fingerprints_match_golden(
        self, golden, case, order_mode, two_sided
    ):
        spec = CASES[case]
        graph = spec["graph"]()
        processor = ReconfigurableProcessor(**spec["processor"])
        expected = golden["fingerprints"][case]
        n = expected["num_partitions"]
        d_max = expected["d_max"]
        options = FormulationOptions(
            order_mode=order_mode, two_sided_w=two_sided
        )
        want = expected[f"{order_mode}/two_sided={two_sided}"]

        full = build_model(graph, processor, n, d_max, 0.0, options)
        assert full.model.compile().fingerprint() == want["full"]

        with_lb = build_model(
            graph, processor, n, d_max, d_max / 2.0, options
        )
        assert with_lb.model.compile().fingerprint() == want["with_lb"]

        template = ModelTemplate(graph, processor, n, options)
        assert template.base_fingerprint == want["base"]
        assert want["template_base_matches_fresh"] == (
            template.base_fingerprint
            == full.model.compile().fingerprint(skip_rows=WINDOW_ROW_NAMES)
        )

    def test_d_max_matches_bounds(self, golden):
        # The golden's window is MaxLatency(N); if bounds drift the
        # fingerprints above would silently compare a different model.
        for case, spec in CASES.items():
            graph = spec["graph"]()
            processor = ReconfigurableProcessor(**spec["processor"])
            expected = golden["fingerprints"][case]
            assert expected["d_max"] == bounds.max_latency(
                graph, expected["num_partitions"],
                processor.reconfiguration_time,
            )


class TestSearchTrajectories:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_trajectory_matches_golden(self, golden, case):
        spec = CASES[case]
        graph = spec["graph"]()
        processor = ReconfigurableProcessor(**spec["processor"])
        config = PartitionerConfig(
            search=RefinementConfig(
                delta=10.0 if case == "ar" else 800.0, time_budget=120.0
            ),
            solver=SolverSettings(backend="highs", time_limit=30.0),
        )
        outcome = TemporalPartitioner(processor, config).solve(
            PartitionRequest(graph=graph)
        )
        expected = golden["trajectories"][case]
        assert outcome.total_latency == expected["total_latency"]
        assert outcome.num_partitions == expected["num_partitions"]
        rows = [
            [
                record.num_partitions,
                record.iteration,
                record.d_min,
                record.d_max,
                record.achieved,
            ]
            for record in outcome.trace
        ]
        assert rows == expected["rows"]
        assert outcome.scenario == "paper_oneshot"
