"""Property: ``ModelTemplate.instantiate`` equals a fresh ``build_model``.

The incremental path must be *exactly* equivalent to the reference path,
not merely agree on verdicts: for any graph, partition bound and latency
window, the compiled standard form produced by patching a template's
window rows is array-for-array identical to compiling a freshly built
model, and both solve to the same feasibility verdict on every backend.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ReconfigurableProcessor
from repro.core import ModelTemplate, bounds, build_model
from repro.core.formulation import FormulationOptions
from repro.solve import fingerprint_model
from repro.taskgraph import random_dag

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ARRAY_FIELDS = (
    "c",
    "ub_indptr",
    "ub_indices",
    "ub_data",
    "b_ub",
    "eq_indptr",
    "eq_indices",
    "eq_data",
    "b_eq",
    "lb",
    "ub",
    "is_integral",
)


def graph_for(seed: int):
    return random_dag(
        num_tasks=4 + seed % 4, seed=seed, edge_probability=0.35
    )


def processor_for(seed: int):
    return ReconfigurableProcessor(
        resource_capacity=600 + 40 * (seed % 5),
        memory_capacity=512,
        reconfiguration_time=float(5 * (seed % 4)),
        name=f"tmpl{seed}",
    )


def windows_for(graph, processor, n):
    """Window shapes the bisection produces: open bottom and d_min > 0."""
    c_t = processor.reconfiguration_time
    d_max = bounds.max_latency(graph, n, c_t)
    d_min = bounds.min_latency(graph, n, c_t)
    mid = (d_max + d_min) / 2.0
    return [
        (0.0, d_max),
        (d_min, d_max),
        (max(d_min, 1e-6), mid if mid > d_min else d_max),
    ]


def assert_compiled_equal(a, b):
    for name in ARRAY_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert a.ub_names == b.ub_names
    assert a.eq_names == b.eq_names
    assert a.c0 == b.c0
    assert a.maximize == b.maximize
    assert [v.name for v in a.variables] == [v.name for v in b.variables]


class TestTemplateEquivalence:
    @given(st.integers(0, 10_000))
    @SLOW
    def test_compiled_form_is_array_identical(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = max(
            2, bounds.min_area_partitions(graph, processor.resource_capacity)
        )
        options = FormulationOptions(minimize_latency=bool(seed % 2))
        template = ModelTemplate(graph, processor, n, options)
        for d_min, d_max in windows_for(graph, processor, n):
            inst = template.instantiate(d_min, d_max)
            fresh = build_model(
                graph, processor, n, d_max, d_min, options
            ).model.compile()
            assert_compiled_equal(inst.compiled, fresh)

    @given(st.integers(0, 10_000))
    @SLOW
    def test_fingerprints_compose_identically(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = max(
            2, bounds.min_area_partitions(graph, processor.resource_capacity)
        )
        template = ModelTemplate(graph, processor, n)
        for d_min, d_max in windows_for(graph, processor, n):
            via_template = fingerprint_model(
                template.instantiate(d_min, d_max)
            )
            via_fresh = fingerprint_model(
                build_model(graph, processor, n, d_max, d_min)
            )
            assert via_template == via_fresh

    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    @given(st.integers(0, 10_000))
    @SLOW
    def test_solve_verdicts_match(self, backend, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = max(
            2, bounds.min_area_partitions(graph, processor.resource_capacity)
        )
        template = ModelTemplate(graph, processor, n)
        for d_min, d_max in windows_for(graph, processor, n):
            inst = template.instantiate(d_min, d_max)
            fresh = build_model(graph, processor, n, d_max, d_min)
            a = inst.solve(backend=backend, first_feasible=True)
            b = fresh.solve(backend=backend, first_feasible=True)
            assert a.status.has_solution == b.status.has_solution
            if a.status.has_solution:
                # Both certificates decode to audited designs in window.
                for tp, sol in ((inst, a), (fresh, b)):
                    design = tp.design_from(sol)
                    assert design.audit(processor) == []
                    assert (
                        design.total_latency(processor) <= d_max + 1e-6
                    )


class TestTemplateWindowRows:
    def test_window_rows_are_last_and_patchable(self):
        graph = graph_for(3)
        processor = processor_for(3)
        template = ModelTemplate(graph, processor, 2)
        inst = template.instantiate(10.0, 500.0)
        names = inst.compiled.ub_names
        assert names[-2:] == ("latency_ub", "latency_lb")
        assert inst.compiled.b_ub[-2] == 500.0
        assert inst.compiled.b_ub[-1] == -10.0  # >= row, stored negated

    def test_zero_lower_edge_drops_lb_row(self):
        graph = graph_for(3)
        processor = processor_for(3)
        template = ModelTemplate(graph, processor, 2)
        inst = template.instantiate(0.0, 500.0)
        assert inst.compiled.ub_names[-1] == "latency_ub"
        assert "latency_lb" not in inst.compiled.ub_names

    def test_instantiations_do_not_alias_each_other(self):
        graph = graph_for(5)
        processor = processor_for(5)
        template = ModelTemplate(graph, processor, 2)
        first = template.instantiate(0.0, 400.0)
        second = template.instantiate(0.0, 300.0)
        assert first.compiled.b_ub[-1] == 400.0
        assert second.compiled.b_ub[-1] == 300.0

    def test_empty_window_rejected(self):
        graph = graph_for(7)
        processor = processor_for(7)
        template = ModelTemplate(graph, processor, 2)
        with pytest.raises(ValueError):
            template.instantiate(10.0, 5.0)

    def test_instantiated_windows_are_immutable(self):
        """Window siblings share structure arrays; writes must fail loudly.

        ``instantiate`` hands out ``with_b_ub`` siblings whose structure
        arrays alias the template's.  A silent in-place write to one
        window would corrupt every other window (and the cached
        ``_no_lb`` view), so the compiled arrays are frozen.
        """
        graph = graph_for(5)
        processor = processor_for(5)
        template = ModelTemplate(graph, processor, 2)
        first = template.instantiate(0.0, 400.0)
        second = template.instantiate(0.0, 300.0)
        with pytest.raises(ValueError):
            first.compiled.b_ub[-1] = 123.0  # repro-lint: ignore[RL001]
        with pytest.raises(ValueError):
            first.compiled.ub_data[0] = 9.0  # repro-lint: ignore[RL001]
        # The failed writes left both windows intact.
        assert first.compiled.b_ub[-1] == 400.0
        assert second.compiled.b_ub[-1] == 300.0
