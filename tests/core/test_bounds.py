"""Unit tests for the Section 3.1 bounds."""

import math

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import bounds
from repro.taskgraph import DesignPoint, TaskGraph


class TestPartitionCounts:
    def test_min_area_partitions(self, dct_graph):
        assert bounds.min_area_partitions(dct_graph, 576) == 8
        assert bounds.min_area_partitions(dct_graph, 4160) == 1
        assert bounds.min_area_partitions(dct_graph, 100000) == 1

    def test_max_area_partitions(self, dct_graph):
        assert bounds.max_area_partitions(dct_graph, 576) == 11

    def test_invalid_capacity(self, dct_graph):
        with pytest.raises(ValueError):
            bounds.min_area_partitions(dct_graph, 0)
        with pytest.raises(ValueError):
            bounds.max_area_partitions(dct_graph, -5)

    def test_single_small_task(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(10, 5),))
        assert bounds.min_area_partitions(graph, 100) == 1


class TestLatencyBounds:
    def test_max_latency_serializes_everything(self, ar_graph):
        d_max = bounds.max_latency(ar_graph, 3, 20)
        expected = sum(t.max_latency for t in ar_graph) + 60
        assert d_max == pytest.approx(expected)

    def test_min_latency_uses_critical_path(self, dct_graph):
        assert bounds.min_latency(dct_graph, 5, 0) == pytest.approx(795.0)
        assert bounds.min_latency(dct_graph, 5, 30) == pytest.approx(945.0)

    def test_bounds_ordered(self, ar_graph):
        for n in range(1, 6):
            assert bounds.min_latency(ar_graph, n, 20) <= (
                bounds.max_latency(ar_graph, n, 20)
            )

    def test_invalid_partition_count(self, ar_graph):
        with pytest.raises(ValueError):
            bounds.max_latency(ar_graph, 0, 20)
        with pytest.raises(ValueError):
            bounds.min_latency(ar_graph, 0, 20)

    def test_bounds_are_true_bounds_for_any_design(self, ar_graph, ar_device):
        """Every feasible design's latency sits inside [D_min, D_max]."""
        from repro.core import greedy_partition

        for policy in ("min_area", "max_area", "balanced", "min_latency"):
            design = greedy_partition(ar_graph, ar_device, policy).design
            n = design.num_partitions_used
            latency = design.total_latency(ar_device)
            assert latency >= bounds.min_latency(
                ar_graph, n, ar_device.reconfiguration_time
            ) - 1e-9
            assert latency <= bounds.max_latency(
                ar_graph, n, ar_device.reconfiguration_time
            ) + 1e-9


class TestPackingMinLatency:
    """The capacity-aware D_min refinement (crowding forces slow points)."""

    def test_dct_r576_values(self, dct_graph):
        # Hand-checked at N = 8: at R_max = 576 at most 4 DCT tasks
        # share a partition (5 x 116 = 580 > 576), four one-dimensional
        # DCT tasks force a latency-795 point (4 x 150 = 600 > 576) and
        # four row-combination tasks a latency-885 one (4 x 190 > 576,
        # 4 x 144 = 576); the best split of 16 + 16 tasks over 8 full
        # partitions is 5 x 795 + 3 x 885 + 8 x 30 = 6870.
        processor = ReconfigurableProcessor(576, 2048, 30)
        expected = {8: 6870.0, 9: 6105.0, 10: 5430.0, 11: 5250.0, 12: 5250.0}
        for n, value in expected.items():
            assert bounds.packing_min_latency(
                dct_graph, processor, n
            ) == pytest.approx(value)

    def test_dct_r576_infeasible_below_eight_partitions(self, dct_graph):
        # k_max = 4, so fewer than ceil(32 / 4) = 8 partitions cannot
        # hold the graph at all: the bound is infinite.
        processor = ReconfigurableProcessor(576, 2048, 30)
        for n in (4, 5, 6, 7):
            assert bounds.packing_min_latency(
                dct_graph, processor, n
            ) == math.inf

    def test_ar_bound_sits_below_the_critical_path(self, ar_graph, ar_device):
        # In the explored range the AR device is not area-tight: the
        # packing bound must not exceed the critical-path D_min (so
        # wiring it into the search leaves AR trajectories untouched).
        for n in (3, 4):
            packing = bounds.packing_min_latency(ar_graph, ar_device, n)
            assert packing <= bounds.min_latency(ar_graph, n, 20.0)

    def test_ar_refutes_two_partitions(self, ar_graph, ar_device):
        # Minimum areas sum to 970 > 2 x 400: no two-partition design
        # exists, and the bound knows (the MILP agrees, see the solver
        # tests).
        assert bounds.packing_min_latency(ar_graph, ar_device, 2) == math.inf

    def test_sound_against_real_designs(self, dct_graph):
        # Every auditable design's total latency dominates the bound at
        # its own partition count — the bound never excludes a solution.
        from repro.core import greedy_partition

        processor = ReconfigurableProcessor(576, 2048, 30)
        for policy in ("min_area", "max_area", "balanced", "min_latency"):
            design = greedy_partition(dct_graph, processor, policy).design
            if design.audit(processor):
                continue
            n = design.num_partitions_used
            assert design.total_latency(processor) >= bounds.packing_min_latency(
                dct_graph, processor, n
            ) - 1e-9

    def test_monotone_in_partition_budget(self, dct_graph):
        # Allowing more partitions only enlarges the grouping choices,
        # so the bound is non-increasing in N.
        processor = ReconfigurableProcessor(576, 2048, 30)
        values = [
            bounds.packing_min_latency(dct_graph, processor, n)
            for n in range(1, 14)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_crowding_forces_the_slow_point(self):
        # Two tasks, each with a fast-but-wide and a slow-but-narrow
        # point.  Together they exceed capacity on the fast points, so a
        # single partition costs the slow latency; two partitions run
        # both fast.
        graph = TaskGraph()
        points = (DesignPoint(6, 1), DesignPoint(2, 10))
        graph.add_task("a", points)
        graph.add_task("b", points)
        processor = ReconfigurableProcessor(10, 100, 1)
        assert bounds.packing_min_latency(graph, processor, 1) == 11.0
        assert bounds.packing_min_latency(graph, processor, 2) == 4.0

    def test_oversized_task_gives_infinite_bound(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(50, 5),))
        processor = ReconfigurableProcessor(10, 100, 1)
        assert bounds.packing_min_latency(graph, processor, 3) == math.inf

    def test_invalid_partition_count(self, ar_graph, ar_device):
        with pytest.raises(ValueError):
            bounds.packing_min_latency(ar_graph, ar_device, 0)


class TestPartitionRange:
    def test_defaults(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        prange = bounds.partition_range(dct_graph, processor)
        assert prange.lower_bound == 8
        assert prange.upper_seed == 11
        assert prange.start == 8
        assert prange.stop == 11
        assert list(prange) == [8, 9, 10, 11]

    def test_alpha_gamma(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        prange = bounds.partition_range(dct_graph, processor, alpha=1, gamma=2)
        assert prange.start == 9
        assert prange.stop == 13

    def test_stop_never_below_start(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(10, 5),))
        processor = ReconfigurableProcessor(100, 10, 1)
        prange = bounds.partition_range(graph, processor, alpha=5)
        assert prange.stop >= prange.start

    def test_negative_relaxation_rejected(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        with pytest.raises(ValueError):
            bounds.partition_range(dct_graph, processor, alpha=-1)
