"""Unit tests for the Section 3.1 bounds."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import bounds
from repro.taskgraph import DesignPoint, TaskGraph


class TestPartitionCounts:
    def test_min_area_partitions(self, dct_graph):
        assert bounds.min_area_partitions(dct_graph, 576) == 8
        assert bounds.min_area_partitions(dct_graph, 4160) == 1
        assert bounds.min_area_partitions(dct_graph, 100000) == 1

    def test_max_area_partitions(self, dct_graph):
        assert bounds.max_area_partitions(dct_graph, 576) == 11

    def test_invalid_capacity(self, dct_graph):
        with pytest.raises(ValueError):
            bounds.min_area_partitions(dct_graph, 0)
        with pytest.raises(ValueError):
            bounds.max_area_partitions(dct_graph, -5)

    def test_single_small_task(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(10, 5),))
        assert bounds.min_area_partitions(graph, 100) == 1


class TestLatencyBounds:
    def test_max_latency_serializes_everything(self, ar_graph):
        d_max = bounds.max_latency(ar_graph, 3, 20)
        expected = sum(t.max_latency for t in ar_graph) + 60
        assert d_max == pytest.approx(expected)

    def test_min_latency_uses_critical_path(self, dct_graph):
        assert bounds.min_latency(dct_graph, 5, 0) == pytest.approx(795.0)
        assert bounds.min_latency(dct_graph, 5, 30) == pytest.approx(945.0)

    def test_bounds_ordered(self, ar_graph):
        for n in range(1, 6):
            assert bounds.min_latency(ar_graph, n, 20) <= (
                bounds.max_latency(ar_graph, n, 20)
            )

    def test_invalid_partition_count(self, ar_graph):
        with pytest.raises(ValueError):
            bounds.max_latency(ar_graph, 0, 20)
        with pytest.raises(ValueError):
            bounds.min_latency(ar_graph, 0, 20)

    def test_bounds_are_true_bounds_for_any_design(self, ar_graph, ar_device):
        """Every feasible design's latency sits inside [D_min, D_max]."""
        from repro.core import greedy_partition

        for policy in ("min_area", "max_area", "balanced", "min_latency"):
            design = greedy_partition(ar_graph, ar_device, policy).design
            n = design.num_partitions_used
            latency = design.total_latency(ar_device)
            assert latency >= bounds.min_latency(
                ar_graph, n, ar_device.reconfiguration_time
            ) - 1e-9
            assert latency <= bounds.max_latency(
                ar_graph, n, ar_device.reconfiguration_time
            ) + 1e-9


class TestPartitionRange:
    def test_defaults(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        prange = bounds.partition_range(dct_graph, processor)
        assert prange.lower_bound == 8
        assert prange.upper_seed == 11
        assert prange.start == 8
        assert prange.stop == 11
        assert list(prange) == [8, 9, 10, 11]

    def test_alpha_gamma(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        prange = bounds.partition_range(dct_graph, processor, alpha=1, gamma=2)
        assert prange.start == 9
        assert prange.stop == 13

    def test_stop_never_below_start(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(10, 5),))
        processor = ReconfigurableProcessor(100, 10, 1)
        prange = bounds.partition_range(graph, processor, alpha=5)
        assert prange.stop >= prange.start

    def test_negative_relaxation_rejected(self, dct_graph):
        processor = ReconfigurableProcessor(576, 2048, 30)
        with pytest.raises(ValueError):
            bounds.partition_range(dct_graph, processor, alpha=-1)
