"""Unit tests for the optimality oracle."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
    solve_optimal,
)
from repro.ilp import SolveStatus


class TestSolveOptimal:
    def test_ar_filter_optimum(self, ar_graph, ar_device):
        result = solve_optimal(ar_graph, ar_device)
        assert result.feasible
        assert result.proven_optimal
        assert result.latency == pytest.approx(510.0)
        assert result.design.is_valid(ar_device)

    def test_iterative_matches_optimal(self, ar_graph, ar_device):
        """The paper's Table 1 claim."""
        iterative = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(delta=10.0, gamma=1),
            settings=SolverSettings(time_limit=15.0),
        )
        optimal = solve_optimal(ar_graph, ar_device)
        assert iterative.achieved == pytest.approx(optimal.latency)

    def test_explicit_partition_counts(self, ar_graph, ar_device):
        result = solve_optimal(ar_graph, ar_device, [3])
        assert len(result.attempts) == 1
        assert result.attempts[0].num_partitions == 3

    def test_infeasible_bound_recorded(self, ar_graph, ar_device):
        result = solve_optimal(ar_graph, ar_device, [1])
        assert not result.feasible
        assert result.attempts[0].status is SolveStatus.INFEASIBLE
        # A run whose only attempt is proven infeasible is still "proven".
        assert result.proven_optimal

    def test_best_over_multiple_bounds(self, ar_graph, ar_device):
        result = solve_optimal(ar_graph, ar_device, [3, 4, 5])
        latencies = [
            a.latency for a in result.attempts if a.latency is not None
        ]
        assert result.latency == min(latencies)

    def test_node_limit_degrades_gracefully(self, ar_graph, ar_device):
        result = solve_optimal(
            ar_graph, ar_device, [3], node_limit=1
        )
        # Either solved at the root or stopped early; never crashes, and
        # proven_optimal reflects whether the solve completed.
        attempt = result.attempts[0]
        if attempt.status is SolveStatus.OPTIMAL:
            assert result.proven_optimal
        else:
            assert not result.proven_optimal

    def test_large_ct_prefers_fewer_partitions(self, ar_graph):
        processor = ReconfigurableProcessor(400, 128, 1e6)
        result = solve_optimal(ar_graph, processor)
        assert result.design.num_partitions_used == 3  # the minimum
