"""Unit tests for Algorithm Reduce_Latency (Figure 1)."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import SolverSettings, bounds, reduce_latency


def proc(r=400, c_t=20.0):
    return ReconfigurableProcessor(r, 128, c_t)


def run(graph, processor, n, delta=10.0, settings=None, **kwargs):
    d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
    d_min = bounds.min_latency(graph, n, processor.reconfiguration_time)
    return reduce_latency(
        graph,
        processor,
        n,
        d_max,
        d_min,
        delta,
        settings=settings or SolverSettings(time_limit=15.0),
        **kwargs,
    )


class TestBasics:
    def test_invalid_delta(self, ar_graph):
        with pytest.raises(ValueError):
            run(ar_graph, proc(), 3, delta=0.0)

    def test_finds_feasible_solution(self, ar_graph):
        result = run(ar_graph, proc(), 3)
        assert result.feasible
        assert result.design.is_valid(proc())
        assert result.achieved == pytest.approx(
            result.design.total_latency(proc())
        )

    def test_infeasible_partition_bound(self, ar_graph):
        # One partition cannot hold 970+ area on a 400-unit device.
        result = run(ar_graph, proc(), 1)
        assert not result.feasible
        assert result.achieved is None
        assert len(result.trace) == 1
        assert not result.trace.records[0].feasible

    def test_trace_has_monotone_iterations(self, ar_graph):
        result = run(ar_graph, proc(), 3)
        iterations = [r.iteration for r in result.trace]
        assert iterations == list(range(1, len(iterations) + 1))


class TestConvergence:
    def test_achieved_within_delta_of_final_lower_bound(self, ar_graph):
        """Termination: either window < delta or D_a - D_min < delta."""
        delta = 10.0
        result = run(ar_graph, proc(), 3, delta=delta)
        assert result.feasible
        records = result.trace.records
        last = records[-1]
        final_d_min = last.d_min if not last.feasible else records[-1].d_min
        # The incumbent cannot be more than delta above any proven-empty
        # region boundary explored last.
        infeasible_maxima = [
            r.d_max for r in records if not r.feasible
        ]
        if infeasible_maxima:
            assert result.achieved - max(infeasible_maxima) <= delta + 1e-6

    def test_achieved_never_worse_than_first(self, ar_graph):
        result = run(ar_graph, proc(), 3)
        feasible = [r.achieved for r in result.trace if r.feasible]
        assert feasible == sorted(feasible, reverse=True)
        assert result.achieved == feasible[-1]

    def test_larger_delta_means_fewer_iterations(self, ar_graph):
        fine = run(ar_graph, proc(), 3, delta=5.0)
        coarse = run(ar_graph, proc(), 3, delta=200.0)
        assert len(coarse.trace) <= len(fine.trace)

    def test_trials_always_below_incumbent(self, ar_graph):
        result = run(ar_graph, proc(), 3)
        incumbent = None
        for record in result.trace:
            if incumbent is not None:
                assert record.d_max < incumbent
            if record.feasible:
                incumbent = record.achieved


class TestExtensions:
    def test_lp_bound_off_reproduces_paper_window(self, ar_graph):
        settings = SolverSettings(use_lp_bound=False, time_limit=15.0)
        result = run(ar_graph, proc(), 3, settings=settings)
        first = result.trace.records[0]
        assert first.d_min == pytest.approx(
            bounds.min_latency(ar_graph, 3, 20.0)
        )

    def test_lp_bound_on_tightens_d_min(self, ar_graph):
        on = run(ar_graph, proc(), 3)
        off = run(
            ar_graph, proc(), 3,
            settings=SolverSettings(use_lp_bound=False, time_limit=15.0),
        )
        assert on.trace.records[0].d_min >= off.trace.records[0].d_min
        # Both converge to the same quality (the bound removes no design).
        assert on.achieved == pytest.approx(off.achieved, rel=0.05)

    def test_unguided_solves_still_work(self, ar_graph):
        settings = SolverSettings(
            guide_with_objective=False, time_limit=15.0
        )
        result = run(ar_graph, proc(), 3, settings=settings)
        assert result.feasible


class TestDeadline:
    def test_expired_deadline_stops_after_first_solve(self, ar_graph):
        import time

        result = run(
            ar_graph, proc(), 3, deadline=time.perf_counter() - 1.0
        )
        # First solve always happens; refinement loop must not start.
        assert len(result.trace) == 1
