"""Tests for the multiple-resource-types extension.

The paper: "Similar equations can be added if multiple resource types
exist in the FPGA" (Section 3.2.3).  Design points may declare usage of
extra resource kinds (block RAMs, dedicated multipliers); the processor
declares per-kind capacities; the ILP, the CP solver and the audit all
enforce them.
"""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    PartitionedDesign,
    build_model,
    cp_solve,
)
from repro.taskgraph import DesignPoint, TaskGraph, from_dict, to_dict


def dsp_point(area, latency, dsp, name="dp1"):
    return DesignPoint(area=area, latency=latency, name=name).with_resources(
        dsp=dsp
    )


def dsp_graph():
    """Two independent tasks, each wanting 3 DSP blocks."""
    graph = TaskGraph("dsp")
    for name in ("a", "b"):
        graph.add_task(
            name,
            (
                dsp_point(100, 100, dsp=3, name="dsp_heavy"),
                DesignPoint(area=150, latency=300, name="lut_only"),
            ),
        )
    return graph


class TestDesignPoint:
    def test_with_resources(self):
        dp = dsp_point(100, 10, dsp=2)
        assert dp.resource_usage("dsp") == 2
        assert dp.resource_usage("bram") == 0

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            DesignPoint(
                area=1, latency=1, extra_resources=(("dsp", -1),)
            )

    def test_json_round_trip_keeps_resources(self):
        graph = dsp_graph()
        rebuilt = from_dict(to_dict(graph))
        dp = rebuilt.task("a").design_points[0]
        assert dp.resource_usage("dsp") == 3


class TestProcessor:
    def test_with_extra_capacities(self):
        proc = ReconfigurableProcessor(400, 64, 10).with_extra_capacities(
            dsp=4, bram=8
        )
        assert proc.extra_capacity("dsp") == 4
        assert proc.extra_capacity("other") == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReconfigurableProcessor(
                400, 64, 10, extra_capacities=(("dsp", -1),)
            )


class TestFormulation:
    def test_dsp_capacity_forces_spread_or_fallback(self):
        graph = dsp_graph()
        # Only 4 DSPs per configuration: both tasks cannot use their
        # DSP-heavy (3 each) points in the same partition.
        processor = ReconfigurableProcessor(
            1000, 64, 10
        ).with_extra_capacities(dsp=4)
        tp = build_model(
            graph, processor, 1, d_max=1e9,
            options=FormulationOptions(minimize_latency=True),
        )
        solution = tp.model.solve(backend="highs")
        design = tp.design_from(solution)
        assert design.audit(processor) == []
        heavy = [
            t for t in ("a", "b")
            if design.design_point_of(t).name == "dsp_heavy"
        ]
        assert len(heavy) <= 1   # one must fall back to LUTs

    def test_two_partitions_allow_both_heavy(self):
        graph = dsp_graph()
        processor = ReconfigurableProcessor(
            1000, 64, 10
        ).with_extra_capacities(dsp=4)
        tp = build_model(
            graph, processor, 2, d_max=1e9,
            options=FormulationOptions(minimize_latency=True),
        )
        solution = tp.model.solve(backend="highs")
        design = tp.design_from(solution)
        assert design.audit(processor) == []
        # With C_T = 10 << 100 ns saved, splitting and running both
        # DSP-heavy points is optimal.
        names = {design.design_point_of(t).name for t in ("a", "b")}
        assert names == {"dsp_heavy"}
        assert design.num_partitions_used == 2


class TestAuditAndCp:
    def test_audit_flags_extra_resource_violation(self):
        graph = dsp_graph()
        processor = ReconfigurableProcessor(
            1000, 64, 10
        ).with_extra_capacities(dsp=4)
        design = PartitionedDesign.from_labels(
            graph, {"a": (1, "dsp_heavy"), "b": (1, "dsp_heavy")}
        )
        violations = design.audit(processor)
        assert any("dsp" in v.detail for v in violations)

    def test_cp_respects_extra_resources(self):
        graph = dsp_graph()
        processor = ReconfigurableProcessor(
            1000, 64, 10
        ).with_extra_capacities(dsp=4)
        design = cp_solve(graph, processor, 1, d_max=1e9)
        assert design is not None
        assert design.audit(processor) == []

    def test_cp_and_ilp_agree_with_extra_resources(self):
        graph = dsp_graph()
        # Zero DSPs: heavy points unusable anywhere; LUT fallback exists,
        # so both solvers must still find a design.
        processor = ReconfigurableProcessor(
            1000, 64, 10
        ).with_extra_capacities(dsp=0)
        cp_design = cp_solve(graph, processor, 1, d_max=1e9)
        tp = build_model(graph, processor, 1, d_max=1e9)
        ilp = tp.solve(backend="highs", first_feasible=True)
        assert cp_design is not None
        assert ilp.status.has_solution
        assert cp_design.design_point_of("a").name == "lut_only"
