"""Unit tests for iteration traces."""

import pytest

from repro.core import IterationRecord, SearchTrace


def record(n=3, i=1, d_max=100.0, d_min=10.0, achieved=50.0):
    return IterationRecord(
        num_partitions=n,
        iteration=i,
        d_max=d_max,
        d_min=d_min,
        achieved=achieved,
        wall_time=0.5,
        solver_iterations=7,
    )


class TestIterationRecord:
    def test_feasible_flag(self):
        assert record().feasible
        assert not record(achieved=None).feasible

    def test_row_strips_overhead(self):
        r = record(n=3, d_max=160.0, d_min=70.0, achieved=130.0)
        n, i, d_min, d_max, achieved = r.row(reconfiguration_time=20.0)
        assert (n, i) == (3, 1)
        assert d_min == pytest.approx(10.0)
        assert d_max == pytest.approx(100.0)
        assert achieved == pytest.approx(70.0)

    def test_row_infeasible_keeps_none(self):
        n, i, d_min, d_max, achieved = record(achieved=None).row(20.0)
        assert achieved is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            record().iteration = 99


class TestSearchTrace:
    def test_add_and_iterate(self):
        trace = SearchTrace()
        trace.add(record(i=1))
        trace.add(record(i=2, achieved=None))
        assert len(trace) == 2
        assert trace.total_solves == 2
        assert [r.iteration for r in trace] == [1, 2]

    def test_extend(self):
        trace = SearchTrace()
        trace.extend([record(i=1), record(i=2)])
        assert len(trace) == 2

    def test_total_wall_time(self):
        trace = SearchTrace()
        trace.extend([record(), record()])
        assert trace.total_wall_time == pytest.approx(1.0)

    def test_for_partitions(self):
        trace = SearchTrace()
        trace.extend([record(n=3), record(n=4), record(n=3, i=2)])
        assert len(trace.for_partitions(3)) == 2
        assert len(trace.for_partitions(5)) == 0

    def test_partition_counts_in_first_seen_order(self):
        trace = SearchTrace()
        trace.extend([record(n=4), record(n=3), record(n=4, i=2)])
        assert trace.partition_counts() == (4, 3)

    def test_best(self):
        trace = SearchTrace()
        trace.extend(
            [
                record(i=1, achieved=90.0),
                record(i=2, achieved=None),
                record(i=3, achieved=60.0),
            ]
        )
        assert trace.best().achieved == 60.0

    def test_best_of_empty_or_infeasible(self):
        trace = SearchTrace()
        assert trace.best() is None
        trace.add(record(achieved=None))
        assert trace.best() is None


class TestConvergenceChart:
    def test_empty(self):
        assert SearchTrace().convergence_chart() == "(empty trace)"

    def test_marks_feasible_and_infeasible(self):
        trace = SearchTrace()
        trace.add(record(i=1, d_min=0.0, d_max=100.0, achieved=50.0))
        trace.add(record(i=2, d_min=0.0, d_max=40.0, achieved=None))
        chart = trace.convergence_chart(width=40)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "*" in lines[0]
        assert "x" in lines[1]
        assert all(line.startswith("N=3") for line in lines)

    def test_width_respected(self):
        trace = SearchTrace()
        trace.add(record())
        chart = trace.convergence_chart(width=30)
        body = chart.split("|")[1]
        assert len(body) == 30

    def test_single_record_spans_full_width(self):
        trace = SearchTrace()
        trace.add(record(d_min=40.0, d_max=80.0, achieved=60.0))
        chart = trace.convergence_chart(width=21)
        body = chart.split("|")[1]
        # The lone window defines the whole axis: dashes edge to edge,
        # the achieved marker at the midpoint.
        assert body[0] in "-*"
        assert body[-1] in "-*"
        assert body[10] == "*"

    def test_zero_width_window(self):
        # d_min == d_max across the trace makes the axis span zero; the
        # epsilon guard must keep the column math finite and in range.
        trace = SearchTrace()
        trace.add(record(d_min=50.0, d_max=50.0, achieved=50.0))
        chart = trace.convergence_chart(width=10)
        body = chart.split("|")[1]
        assert len(body) == 10
        assert body.count("*") == 1

    def test_infeasible_marker_sits_at_window_upper_end(self):
        trace = SearchTrace()
        trace.add(record(i=1, d_min=0.0, d_max=100.0, achieved=50.0))
        trace.add(record(i=2, d_min=0.0, d_max=50.0, achieved=None))
        chart = trace.convergence_chart(width=41)
        infeasible_body = chart.splitlines()[1].split("|")[1]
        # d_max=50 on a 0..100 axis of width 41 -> column 20.
        assert infeasible_body[20] == "x"
        assert "-" not in infeasible_body[21:]

    def test_real_search_chart(self, ):
        from repro.arch import ReconfigurableProcessor
        from repro.core import (
            RefinementConfig,
            SolverSettings,
            refine_partitions_bound,
        )
        from repro.taskgraph import ar_filter

        result = refine_partitions_bound(
            ar_filter(),
            ReconfigurableProcessor(400, 128, 20),
            config=RefinementConfig(delta=10.0, gamma=1),
            settings=SolverSettings(time_limit=15.0),
        )
        chart = result.trace.convergence_chart()
        assert chart.count("\n") + 1 == len(result.trace)
