"""Unit tests for infeasibility diagnosis."""


from repro.arch import ReconfigurableProcessor
from repro.core import build_model, diagnose_infeasibility
from repro.core.bounds import max_latency
from repro.taskgraph import DesignPoint, TaskGraph


def chain(area=300, volume=5):
    graph = TaskGraph("chain")
    graph.add_task("a", (DesignPoint(area, 100, name="dp1"),))
    graph.add_task("b", (DesignPoint(area, 100, name="dp1"),))
    graph.add_edge("a", "b", volume)
    return graph


class TestCulprits:
    def test_resource_culprit(self):
        graph = chain(area=300)
        # One partition, 400 units: 600 needed -> resource binds.
        processor = ReconfigurableProcessor(400, 1000, 10)
        tp = build_model(graph, processor, 1, d_max=1e9)
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        assert "resource" in report.culprits
        assert "restores LP feasibility" in report.message

    def test_latency_culprit(self):
        graph = chain(area=100)
        processor = ReconfigurableProcessor(400, 1000, 10)
        # Window far below the 210 ns minimum.
        tp = build_model(graph, processor, 1, d_max=50.0)
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        assert "latency_window" in report.culprits

    def test_memory_culprit_from_env_volume(self):
        # Host input alone exceeds M_max: an LP-provable memory conflict.
        graph = chain(area=100, volume=1)
        graph.set_env_input("a", 500)
        processor = ReconfigurableProcessor(400, 50, 10)
        tp = build_model(
            graph, processor, 2, d_max=max_latency(graph, 2, 10)
        )
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        assert report.culprits == ["memory"]

    def test_fractional_memory_conflict_reports_integrality(self):
        # Crossing-edge memory conflicts vanish in the LP (fractional
        # placements drive w to 0), so the report must blame integrality.
        graph = chain(area=300, volume=50)
        processor = ReconfigurableProcessor(400, 5, 10)
        tp = build_model(
            graph, processor, 2, d_max=max_latency(graph, 2, 10)
        )
        solution = tp.solve(backend="highs", first_feasible=True)
        assert not solution.status.has_solution
        report = diagnose_infeasibility(tp)
        assert not report.lp_infeasible
        assert "integrality" in report.message

    def test_feasible_lp_reports_integrality(self):
        # Three tasks of area 200 on a 390-unit device, 2 partitions:
        # LP packs fractionally (1.5 tasks per partition), the ILP can't.
        graph = TaskGraph("frag")
        prev = None
        for i in range(3):
            graph.add_task(f"t{i}", (DesignPoint(200, 10, name="dp1"),))
            if prev:
                graph.add_edge(prev, f"t{i}", 1)
            prev = f"t{i}"
        processor = ReconfigurableProcessor(390, 1000, 10)
        tp = build_model(
            graph, processor, 2, d_max=max_latency(graph, 2, 10)
        )
        solution = tp.solve(backend="highs", first_feasible=True)
        assert not solution.status.has_solution
        report = diagnose_infeasibility(tp)
        assert not report.lp_infeasible
        assert not report.certain
        assert "integrality" in report.message


class TestReportShape:
    def test_detail_covers_all_families(self):
        graph = chain(area=300)
        processor = ReconfigurableProcessor(400, 1000, 10)
        tp = build_model(graph, processor, 1, d_max=1e9)
        report = diagnose_infeasibility(tp)
        assert set(report.detail) == {
            "resource", "memory", "latency_window", "order"
        }


class TestEdgeCases:
    def test_single_task_feasible_model(self):
        graph = TaskGraph("solo")
        graph.add_task("a", (DesignPoint(100, 50, name="dp1"),))
        processor = ReconfigurableProcessor(400, 1000, 10)
        tp = build_model(graph, processor, 1, d_max=1e6)
        report = diagnose_infeasibility(tp)
        # The LP is feasible: diagnosis must not fabricate culprits.
        assert not report.lp_infeasible
        assert report.culprits == []
        assert not report.certain

    def test_single_task_resource_infeasible(self):
        graph = TaskGraph("solo_big")
        graph.add_task("a", (DesignPoint(900, 50, name="dp1"),))
        processor = ReconfigurableProcessor(400, 1000, 10)
        tp = build_model(graph, processor, 1, d_max=1e6)
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        assert "resource" in report.culprits

    def test_single_task_latency_window_infeasible(self):
        graph = TaskGraph("solo_slow")
        graph.add_task("a", (DesignPoint(100, 500, name="dp1"),))
        processor = ReconfigurableProcessor(400, 1000, 10)
        tp = build_model(graph, processor, 1, d_max=5.0)
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        assert "latency_window" in report.culprits

    def test_joint_conflict_yields_no_single_culprit(self):
        # Area forces >= 2 partitions while the window forbids the
        # second reconfiguration: no lone family explains it, and the
        # message says exactly that.
        graph = chain(area=300, volume=1)
        processor = ReconfigurableProcessor(400, 1000, 1000)
        tp = build_model(graph, processor, 2, d_max=250.0)
        report = diagnose_infeasibility(tp)
        assert report.lp_infeasible
        if not report.culprits:
            assert "two families conflict jointly" in report.message
        else:
            # Platform-dependent LP tie-breaks may still find one; the
            # report shape must stay consistent either way.
            assert set(report.culprits) <= set(report.detail)
