"""The scenario registry and the ``slot_coresident`` proof of extensibility.

``paper_oneshot`` is pinned bit-identical by
``test_formulation_goldens``; this module covers everything the
registry added around it — scenario resolution and validation, row-group
provenance on compiled models, template window patching located by
group id, and a second registered scenario (``slot_coresident``:
``R`` reconfigurable slots, per-slot capacity and reconfiguration cost,
free crossings between co-resident slots) running end-to-end through
build → analyze → solve → serialize.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze_model
from repro.arch import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    TemporalPartitioner,
    bounds,
    build_model,
    get_scenario,
    scenario_ids,
)
from repro.core.families import ScenarioSpec
from repro.core.formulation import ModelTemplate
from repro.ilp import solve_compiled
from repro.ilp.status import SolveStatus
from repro.service.wire import decode_config, encode_config
from repro.solve.fingerprint import WINDOW_ROW_NAMES


def slot_options(num_slots: float = 2.0, **kwargs) -> FormulationOptions:
    return FormulationOptions(
        scenario="slot_coresident",
        scenario_params={"num_slots": num_slots},
        **kwargs,
    )


class TestRegistry:
    def test_both_scenarios_registered(self):
        assert set(scenario_ids()) >= {"paper_oneshot", "slot_coresident"}

    def test_unknown_scenario_is_rejected_at_options_construction(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            FormulationOptions(scenario="nope")

    def test_window_family_is_last_and_unique(self):
        for scenario_id in scenario_ids():
            scenario = get_scenario(scenario_id)
            window = [f for f in scenario.families if f.window_dependent]
            assert window == [scenario.families[-1]]

    def test_registering_window_family_mid_list_is_rejected(self):
        paper = get_scenario("paper_oneshot")
        bad = ScenarioSpec(
            id="bad_window_order",
            description="window family not last",
            families=(paper.families[-1],) + paper.families[:-1],
        )
        from repro.core import register_scenario

        with pytest.raises(ValueError, match="last"):
            register_scenario(bad)

    def test_scenario_params_normalize_to_sorted_tuples(self):
        a = FormulationOptions(
            scenario="slot_coresident",
            scenario_params={"num_slots": 3, "slot_reconfiguration_time": 5},
        )
        b = FormulationOptions(
            scenario="slot_coresident",
            scenario_params=(
                ("slot_reconfiguration_time", 5.0),
                ("num_slots", 3.0),
            ),
        )
        assert a == b
        assert hash(a) == hash(b)


class TestRowGroups:
    def test_compiled_model_carries_contiguous_groups(self, ar_graph, ar_device):
        d_max = bounds.max_latency(ar_graph, 3, ar_device.reconfiguration_time)
        tp = build_model(ar_graph, ar_device, 3, d_max, 0.0)
        compiled = tp.compiled_form()
        groups = compiled.row_groups
        assert groups is not None
        scenario = get_scenario("paper_oneshot")
        assert [g.family for g in groups] == [
            f.id for f in scenario.families
        ]
        # Per-block contiguity: each family's span starts where the
        # previous one stopped.
        ub_cursor = eq_cursor = 0
        for group in groups:
            assert (group.ub_start, group.eq_start) == (ub_cursor, eq_cursor)
            ub_cursor, eq_cursor = group.ub_stop, group.eq_stop
        assert ub_cursor == compiled.num_ub_rows
        assert eq_cursor == len(compiled.b_eq)

    def test_window_group_is_the_trailing_ub_rows(self, ar_graph, ar_device):
        window = get_scenario("paper_oneshot").window_family
        full = build_model(
            ar_graph,
            ar_device,
            3,
            bounds.max_latency(ar_graph, 3, ar_device.reconfiguration_time),
            1.0,
        ).compiled_form()
        group = full.row_group(window.id)
        names = [full.ub_names[i] for i in group.ub_rows()]
        assert names == list(WINDOW_ROW_NAMES)
        assert group.ub_stop == full.num_ub_rows

    def test_row_group_accessor_raises_on_unknown_family(
        self, ar_graph, ar_device
    ):
        d_max = bounds.max_latency(ar_graph, 3, ar_device.reconfiguration_time)
        compiled = build_model(ar_graph, ar_device, 3, d_max, 0.0).compiled_form()
        with pytest.raises(KeyError):
            compiled.row_group("no_such_family")


class TestSlotCoresident:
    def test_builds_and_solves_end_to_end(self, ar_graph):
        processor = ReconfigurableProcessor(
            resource_capacity=800,
            memory_capacity=256,
            reconfiguration_time=20.0,
            name="slotted",
        )
        options = slot_options()
        n = 4
        d_max = bounds.max_latency(ar_graph, n, processor.reconfiguration_time)
        template = ModelTemplate(ar_graph, processor, n, options)
        tp = template.instantiate(0.0, d_max)
        result = solve_compiled(tp.compiled_form())
        assert result.status is SolveStatus.OPTIMAL

    def test_analyzer_is_clean_in_strict_mode(self, ar_graph):
        processor = ReconfigurableProcessor(
            resource_capacity=800,
            memory_capacity=256,
            reconfiguration_time=20.0,
        )
        n = 4
        d_max = bounds.max_latency(ar_graph, n, processor.reconfiguration_time)
        tp = build_model(ar_graph, processor, n, d_max, 0.0, slot_options())
        report = analyze_model(tp)
        assert report.ok
        assert not report.diagnostics

    def test_single_slot_reduces_to_the_paper_formulation(
        self, ar_graph, ar_device
    ):
        n = 3
        d_max = bounds.max_latency(ar_graph, n, ar_device.reconfiguration_time)
        paper = build_model(ar_graph, ar_device, n, d_max, 0.0)
        slotted = build_model(
            ar_graph, ar_device, n, d_max, 0.0, slot_options(num_slots=1.0)
        )
        assert (
            slotted.model.compile().fingerprint()
            == paper.model.compile().fingerprint()
        )

    def test_two_slots_change_the_model(self, ar_graph, ar_device):
        n = 3
        d_max = bounds.max_latency(ar_graph, n, ar_device.reconfiguration_time)
        paper = build_model(ar_graph, ar_device, n, d_max, 0.0)
        slotted = build_model(
            ar_graph,
            ar_device,
            n,
            d_max,
            0.0,
            FormulationOptions(scenario="slot_coresident"),
        )
        assert (
            slotted.model.compile().fingerprint()
            != paper.model.compile().fingerprint()
        )

    def test_invalid_slot_count_is_rejected(self, ar_graph, ar_device):
        with pytest.raises(ValueError, match="num_slots"):
            build_model(
                ar_graph,
                ar_device,
                3,
                600.0,
                0.0,
                slot_options(num_slots=0.0),
            )

    def test_partitioner_outcome_carries_the_scenario(self, ar_graph):
        processor = ReconfigurableProcessor(
            resource_capacity=800,
            memory_capacity=256,
            reconfiguration_time=20.0,
        )
        config = PartitionerConfig(
            search=RefinementConfig(delta=100.0, time_budget=60.0),
            formulation=slot_options(),
        )
        outcome = TemporalPartitioner(processor, config).solve(
            PartitionRequest(graph=ar_graph)
        )
        assert outcome.feasible
        assert outcome.scenario == "slot_coresident"
        payload = outcome.to_dict()
        assert payload["scenario"] == "slot_coresident"
        restored = type(outcome).from_dict(
            json.loads(json.dumps(payload)), graph=ar_graph
        )
        assert restored.scenario == "slot_coresident"

    def test_wire_round_trips_scenario_options(self):
        config = PartitionerConfig(
            formulation=slot_options(num_slots=4.0)
        )
        decoded = decode_config(
            json.loads(json.dumps(encode_config(config)))
        )
        assert decoded.formulation == config.formulation
        assert decoded.formulation.scenario == "slot_coresident"
        assert decoded.formulation.scenario_params == (("num_slots", 4.0),)
