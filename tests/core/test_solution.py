"""Unit tests for PartitionedDesign: latency, memory, audit."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import PartitionedDesign, Placement
from repro.taskgraph import DesignPoint, TaskGraph


def proc(r=1000, m=1000, c_t=10.0):
    return ReconfigurableProcessor(r, m, c_t)


def fig4_graph():
    """The Figure 4 example: three paths in partition 1, one in 2."""
    graph = TaskGraph("fig4")
    latencies = {"a1": 100, "a2": 250, "b1": 150, "b2": 250, "c1": 150,
                 "x": 300}
    for name, latency in latencies.items():
        graph.add_task(name, (DesignPoint(50, latency, name="dp1"),))
    graph.add_edge("a1", "a2", 1)
    graph.add_edge("b1", "b2", 1)
    graph.add_edge("a2", "x", 1)
    graph.add_edge("b2", "x", 1)
    graph.add_edge("c1", "x", 1)
    return graph


def fig4_design():
    graph = fig4_graph()
    assignment = {n: (1, "dp1") for n in ("a1", "a2", "b1", "b2", "c1")}
    assignment["x"] = (2, "dp1")
    return PartitionedDesign.from_labels(graph, assignment)


class TestConstruction:
    def test_missing_placement_rejected(self):
        graph = fig4_graph()
        with pytest.raises(ValueError):
            PartitionedDesign(graph, {})

    def test_unknown_task_rejected(self):
        graph = fig4_graph()
        placements = {
            t.name: Placement(1, t.design_points[0]) for t in graph
        }
        placements["ghost"] = Placement(1, graph.task("x").design_points[0])
        with pytest.raises(ValueError):
            PartitionedDesign(graph, placements)

    def test_partition_indices_one_based(self):
        with pytest.raises(ValueError):
            Placement(0, DesignPoint(1, 1))

    def test_round_trip_via_labels(self):
        design = fig4_design()
        assignment = design.as_assignment()
        rebuilt = PartitionedDesign.from_labels(design.graph, assignment)
        assert rebuilt.as_assignment() == assignment


class TestLatency:
    def test_figure4_partition_latencies(self):
        design = fig4_design()
        assert design.partition_latency(1) == pytest.approx(400.0)
        assert design.partition_latency(2) == pytest.approx(300.0)

    def test_empty_partition_zero_latency(self):
        design = fig4_design()
        assert design.partition_latency(7) == 0.0

    def test_execution_and_total(self):
        design = fig4_design()
        assert design.execution_latency() == pytest.approx(700.0)
        assert design.total_latency(proc(c_t=10)) == pytest.approx(720.0)

    def test_eta(self):
        design = fig4_design()
        assert design.num_partitions_used == 2
        assert design.partitions() == (1, 2)

    def test_compacted_renumbers(self):
        graph = fig4_graph()
        assignment = {n: (2, "dp1") for n in ("a1", "a2", "b1", "b2", "c1")}
        assignment["x"] = (5, "dp1")
        design = PartitionedDesign.from_labels(graph, assignment)
        compact = design.compacted()
        assert compact.partitions() == (1, 2)
        assert compact.partition_of("x") == 2


class TestMemory:
    def test_boundary_occupancy_counts_span(self):
        graph = TaskGraph("span")
        for name in ("p", "q", "r"):
            graph.add_task(name, (DesignPoint(10, 10, name="dp1"),))
        graph.add_edge("p", "r", 5)   # spans partitions 1 -> 3
        graph.add_edge("p", "q", 3)
        design = PartitionedDesign.from_labels(
            graph, {"p": (1, "dp1"), "q": (2, "dp1"), "r": (3, "dp1")}
        )
        assert design.memory_at_boundary(2, include_env=False) == 8
        assert design.memory_at_boundary(3, include_env=False) == 5

    def test_env_terms(self):
        graph = TaskGraph("env")
        graph.add_task("a", (DesignPoint(10, 10, name="dp1"),))
        graph.add_task("b", (DesignPoint(10, 10, name="dp1"),))
        graph.add_edge("a", "b", 0)
        graph.set_env_input("b", 7)
        graph.set_env_output("a", 2)
        design = PartitionedDesign.from_labels(
            graph, {"a": (1, "dp1"), "b": (2, "dp1")}
        )
        # Boundary 1: b's input waits (7); a has not produced yet.
        assert design.memory_at_boundary(1) == 7
        # Boundary 2: b's input still waiting + a's output buffered.
        assert design.memory_at_boundary(2) == 9
        assert design.memory_at_boundary(2, include_env=False) == 0

    def test_peak_memory(self):
        design = fig4_design()
        assert design.peak_memory(include_env=False) == 3.0


class TestAudit:
    def test_valid_design_passes(self):
        assert fig4_design().audit(proc()) == []

    def test_order_violation_detected(self):
        graph = fig4_graph()
        assignment = {n: (2, "dp1") for n in ("a1", "a2", "b1", "b2", "c1")}
        assignment["x"] = (1, "dp1")    # consumer before producers
        design = PartitionedDesign.from_labels(graph, assignment)
        violations = design.audit(proc())
        assert any(v.kind == "order" for v in violations)

    def test_resource_violation_detected(self):
        design = fig4_design()
        tiny = proc(r=100)
        violations = design.audit(tiny)
        assert any(v.kind == "resource" for v in violations)

    def test_memory_violation_detected(self):
        design = fig4_design()
        tiny = proc(m=1)
        violations = design.audit(tiny)
        assert any(v.kind == "memory" for v in violations)

    def test_foreign_design_point_detected(self):
        graph = fig4_graph()
        placements = {
            t.name: Placement(1, t.design_points[0]) for t in graph
        }
        placements["x"] = Placement(2, DesignPoint(1, 1, name="alien"))
        design = PartitionedDesign(graph, placements)
        violations = design.audit(proc())
        assert any(v.kind == "structure" for v in violations)

    def test_is_valid_helper(self):
        assert fig4_design().is_valid(proc())
        assert not fig4_design().is_valid(proc(r=100))


class TestSummary:
    def test_summary_mentions_partitions_and_latency(self):
        text = fig4_design().summary(proc())
        assert "partition 1" in text
        assert "partition 2" in text
        assert "total latency" in text
