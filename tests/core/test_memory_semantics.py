"""Boundary-by-boundary memory semantics, ILP vs analytic.

Equation (3) has subtle corners: edges spanning several boundaries,
environment input held until consumption, environment output held after
production, and the first partition (no crossing variables exist for
p = 1).  These tests pin assignments inside the ILP and compare every
boundary against the analytic `memory_at_boundary`.
"""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, PartitionedDesign, build_model
from repro.taskgraph import DesignPoint, TaskGraph


def pipeline_graph():
    """Four-stage pipeline with env I/O and a long-span edge."""
    graph = TaskGraph("pipe")
    for name in ("a", "b", "c", "d"):
        graph.add_task(name, (DesignPoint(80, 10, name="dp1"),))
    graph.add_edge("a", "b", 3)
    graph.add_edge("b", "c", 5)
    graph.add_edge("c", "d", 7)
    graph.add_edge("a", "d", 2)      # spans boundaries 2, 3, 4
    graph.set_env_input("a", 11)
    graph.set_env_input("c", 13)
    graph.set_env_output("b", 4)
    graph.set_env_output("d", 6)
    return graph


def place_each_in_own_partition():
    return PartitionedDesign.from_labels(
        pipeline_graph(),
        {"a": (1, "dp1"), "b": (2, "dp1"), "c": (3, "dp1"), "d": (4, "dp1")},
    )


class TestAnalyticBoundaries:
    def test_boundary_1_env_inputs_only(self):
        design = place_each_in_own_partition()
        # Before partition 1 executes: both env inputs wait (11 + 13).
        assert design.memory_at_boundary(1) == pytest.approx(24.0)

    def test_boundary_2(self):
        design = place_each_in_own_partition()
        # Crossing: a->b (3), a->d (2).  Env: c's input still waiting
        # (13); a has produced nothing for env.
        assert design.memory_at_boundary(2) == pytest.approx(3 + 2 + 13)

    def test_boundary_3(self):
        design = place_each_in_own_partition()
        # Crossing: b->c (5), a->d (2).  Env: c input (13) + b output (4).
        assert design.memory_at_boundary(3) == pytest.approx(5 + 2 + 13 + 4)

    def test_boundary_4(self):
        design = place_each_in_own_partition()
        # Crossing: c->d (7), a->d (2).  Env: b output (4).
        assert design.memory_at_boundary(4) == pytest.approx(7 + 2 + 4)

    def test_peak(self):
        design = place_each_in_own_partition()
        assert design.peak_memory() == pytest.approx(24.0)


class TestIlpAgreesWithAnalytic:
    @pytest.fixture(scope="class")
    def pinned_solution(self):
        graph = pipeline_graph()
        processor = ReconfigurableProcessor(100, 64, 5)
        tp = build_model(
            graph, processor, 4, d_max=1e9,
            options=FormulationOptions(two_sided_w=True),
        )
        for position, name in enumerate(("a", "b", "c", "d"), start=1):
            tp.model.add_constr(
                tp.model.variable(f"Y[{name},{position},1]") >= 1,
                name=f"pin[{name}]",
            )
        solution = tp.solve(backend="highs", first_feasible=True)
        assert solution.status.has_solution
        return tp, solution

    def test_w_values_match_crossings(self, pinned_solution):
        tp, solution = pinned_solution
        design = place_each_in_own_partition()
        graph = design.graph
        for p in (2, 3, 4):
            ilp_crossing = sum(
                volume * solution.values[f"w[{p},{src},{dst}]"]
                for src, dst, volume in graph.edges
            )
            analytic_crossing = sum(
                volume
                for src, dst, volume in graph.edges
                if design.partition_of(src) < p <= design.partition_of(dst)
            )
            assert ilp_crossing == pytest.approx(analytic_crossing)

    def test_memory_budget_binds_where_analytic_says(self):
        graph = pipeline_graph()
        # Budget of 23 < boundary-1 demand of 24: infeasible everywhere.
        processor = ReconfigurableProcessor(400, 23, 5)
        tp = build_model(graph, processor, 4, d_max=1e9)
        solution = tp.solve(backend="highs", first_feasible=True)
        assert not solution.status.has_solution
        # Budget 24 is exactly enough if everything is co-located
        # (single partition: no crossings, env input 24 at boundary 1).
        processor = ReconfigurableProcessor(400, 24, 5)
        tp = build_model(graph, processor, 4, d_max=1e9)
        solution = tp.solve(backend="highs", first_feasible=True)
        assert solution.status.has_solution
        design = tp.design_from(solution)
        assert design.audit(processor) == []
