"""Unit tests for the greedy baselines and alpha/gamma estimation."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    POLICIES,
    bounds,
    estimate_alpha_gamma,
    greedy_partition,
    heuristic_partition_count,
)
from repro.taskgraph import DesignPoint, TaskGraph


class TestGreedy:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_respects_order_and_area(self, ar_graph, ar_device, policy):
        result = greedy_partition(ar_graph, ar_device, policy)
        violations = result.design.audit(ar_device)
        assert not any(v.kind == "order" for v in violations)
        assert not any(v.kind == "resource" for v in violations)

    def test_unknown_policy(self, ar_graph, ar_device):
        with pytest.raises(ValueError):
            greedy_partition(ar_graph, ar_device, "vibes")

    def test_min_area_never_more_partitions_than_max_area(
        self, dct_graph
    ):
        processor = ReconfigurableProcessor(576, 4096, 30)
        small = heuristic_partition_count(dct_graph, processor, "min_area")
        large = heuristic_partition_count(dct_graph, processor, "max_area")
        assert small <= large

    def test_count_at_least_lower_bound(self, dct_graph):
        processor = ReconfigurableProcessor(576, 4096, 30)
        count = heuristic_partition_count(dct_graph, processor, "min_area")
        assert count >= bounds.min_area_partitions(dct_graph, 576)

    def test_oversized_policy_pick_falls_back_to_min_area(self):
        graph = TaskGraph("mix")
        graph.add_task(
            "a",
            (
                DesignPoint(100, 100, name="small"),
                DesignPoint(900, 10, name="huge"),
            ),
        )
        processor = ReconfigurableProcessor(400, 64, 10)
        result = greedy_partition(graph, processor, "min_latency")
        # min_latency would pick the 900-area point; it cannot fit, so the
        # greedy must fall back to the small one.
        assert result.design.design_point_of("a").name == "small"

    def test_memory_feasibility_reported(self):
        graph = TaskGraph("heavy")
        graph.add_task("p", (DesignPoint(300, 10, name="dp1"),))
        graph.add_task("q", (DesignPoint(300, 10, name="dp1"),))
        graph.add_edge("p", "q", 50)
        tight = ReconfigurableProcessor(400, 10, 10)   # forces a crossing
        result = greedy_partition(graph, tight, "min_area")
        assert not result.memory_feasible


class TestAlphaGamma:
    def test_estimates_non_negative(self, dct_graph):
        processor = ReconfigurableProcessor(576, 4096, 30)
        alpha, gamma = estimate_alpha_gamma(dct_graph, processor)
        assert alpha >= 0
        assert gamma >= 0

    def test_perfect_packing_gives_zero(self):
        graph = TaskGraph("exact")
        for i in range(4):
            graph.add_task(f"t{i}", (DesignPoint(100, 10, name="dp1"),))
            if i:
                graph.add_edge(f"t{i-1}", f"t{i}", 1)
        processor = ReconfigurableProcessor(200, 64, 10)
        alpha, _gamma = estimate_alpha_gamma(graph, processor)
        assert alpha == 0
