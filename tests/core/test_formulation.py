"""Unit tests for the ILP formulation (equations (1)-(10))."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, build_model
from repro.core.formulation import interchangeable_groups, lp_latency_lower_bound
from repro.taskgraph import dct_4x4


def proc(r=400, m=1000, c_t=10.0):
    return ReconfigurableProcessor(r, m, c_t)


def solve_design(tp_model, **kwargs):
    solution = tp_model.solve(backend="highs", first_feasible=True, **kwargs)
    assert solution.status.has_solution
    return tp_model.design_from(solution)


class TestBasics:
    def test_invalid_window_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            build_model(chain_graph, proc(), 2, d_max=10, d_min=20)

    def test_invalid_partition_count(self, chain_graph):
        with pytest.raises(ValueError):
            build_model(chain_graph, proc(), 0, d_max=100)

    def test_bad_order_mode(self):
        with pytest.raises(ValueError):
            FormulationOptions(order_mode="psychic")

    def test_variable_counts(self, chain_graph):
        tp = build_model(chain_graph, proc(), 3, d_max=1000)
        # Y: 3 tasks x 3 partitions x 1 dp; w: 2 edges x 2 boundaries;
        # d: 3; eta: 1.
        assert tp.model.num_vars == 9 + 4 + 3 + 1

    def test_solution_respects_everything(self, diamond_graph):
        tp = build_model(diamond_graph, proc(r=250), 3, d_max=1000)
        design = solve_design(tp)
        assert design.audit(proc(r=250)) == []


class TestConstraints:
    def test_uniqueness_soundness(self, diamond_graph):
        tp = build_model(diamond_graph, proc(), 2, d_max=1000)
        design = solve_design(tp)
        # extract_design would raise if a task were double-assigned.
        assert len(design.placements) == 4

    def test_temporal_order_enforced(self, chain_graph):
        tp = build_model(chain_graph, proc(r=160), 3, d_max=1000)
        design = solve_design(tp)
        assert design.partition_of("t0") <= design.partition_of("t1")
        assert design.partition_of("t1") <= design.partition_of("t2")

    @pytest.mark.parametrize("order_mode", ["pairwise", "index"])
    def test_order_modes_equivalent_feasibility(self, chain_graph, order_mode):
        options = FormulationOptions(order_mode=order_mode)
        tp = build_model(
            chain_graph, proc(r=160), 3, d_max=1000, options=options
        )
        design = solve_design(tp)
        assert design.audit(proc(r=160)) == []

    def test_resource_constraint_forces_split(self, diamond_graph):
        # Each task needs >= 100 area; device of 150 fits one per partition.
        tp = build_model(diamond_graph, proc(r=150), 4, d_max=10_000)
        design = solve_design(tp)
        assert design.num_partitions_used == 4

    def test_memory_constraint_infeasible_when_tiny(self, diamond_graph):
        # Forcing a split (r=150) but allowing no crossing data.
        tp = build_model(
            diamond_graph,
            ReconfigurableProcessor(150, 0.5, 10),
            4,
            d_max=10_000,
        )
        solution = tp.solve(backend="highs", first_feasible=True)
        assert not solution.status.has_solution

    def test_memory_constraint_without_env(self, diamond_graph):
        # Env I/O excluded: only the 4-unit edges count; a budget of 8.5
        # admits designs whose boundaries carry at most two edges.
        options = FormulationOptions(include_env_memory=False)
        tp = build_model(
            diamond_graph,
            ReconfigurableProcessor(150, 8.5, 10),
            4,
            d_max=10_000,
            options=options,
        )
        design = solve_design(tp)
        assert design.peak_memory(include_env=False) <= 8.5

    def test_latency_upper_bound_respected(self, diamond_graph):
        processor = proc(r=400, c_t=10)
        tp = build_model(diamond_graph, processor, 2, d_max=150)
        design = solve_design(tp)
        assert design.total_latency(processor) <= 150 + 1e-6

    def test_latency_window_infeasible_when_too_tight(self, diamond_graph):
        processor = proc(r=150, c_t=10)   # forces 4 partitions
        # 4 partitions cost 40 ns alone; 4 tasks at best 25 each = 100.
        tp = build_model(diamond_graph, processor, 4, d_max=120)
        solution = tp.solve(backend="highs", first_feasible=True)
        assert not solution.status.has_solution

    def test_eta_counts_highest_partition(self, chain_graph):
        processor = proc(r=160, c_t=100)  # big C_T: minimize partitions
        tp = build_model(
            chain_graph, processor, 5, d_max=10_000,
            options=FormulationOptions(minimize_latency=True),
        )
        solution = tp.model.solve(backend="highs")
        design = tp.design_from(solution)
        eta_value = solution.value("eta")
        assert eta_value == pytest.approx(design.num_partitions_used)


class TestExtract:
    def test_extract_requires_solution(self, chain_graph):
        tp = build_model(chain_graph, proc(), 1, d_max=1e-3)
        solution = tp.solve(backend="highs", first_feasible=True)
        with pytest.raises(ValueError):
            tp.design_from(solution)


class TestSymmetry:
    def test_dct_groups_found(self):
        groups = interchangeable_groups(dct_4x4())
        # 4 collections x 2 stages = 8 groups of 4.
        assert len(groups) == 8
        assert all(len(g) == 4 for g in groups)

    def test_chain_has_no_groups(self, chain_graph):
        assert interchangeable_groups(chain_graph) == []

    def test_symmetry_breaking_preserves_feasibility(self, diamond_graph):
        # b and c are interchangeable in the diamond.
        groups = interchangeable_groups(diamond_graph)
        assert ("b", "c") in groups
        options = FormulationOptions(symmetry_breaking=True)
        tp = build_model(
            diamond_graph, proc(r=250), 3, d_max=1000, options=options
        )
        design = solve_design(tp)
        assert design.audit(proc(r=250)) == []
        assert design.partition_of("b") <= design.partition_of("c")


class TestLpBound:
    def test_lp_bound_is_lower_bound(self, diamond_graph):
        processor = proc(r=250, c_t=10)
        bound = lp_latency_lower_bound(diamond_graph, processor, 3)
        options = FormulationOptions(minimize_latency=True)
        tp = build_model(diamond_graph, processor, 3, d_max=10_000,
                         options=options)
        solution = tp.model.solve(backend="highs")
        design = tp.design_from(solution)
        assert bound <= design.total_latency(processor) + 1e-6

    def test_lp_bound_infeasible_model(self, diamond_graph):
        processor = ReconfigurableProcessor(150, 0.5, 10)
        bound = lp_latency_lower_bound(diamond_graph, processor, 1)
        assert bound == float("inf")
