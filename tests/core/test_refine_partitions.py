"""Unit tests for Algorithm Refine_Partitions_Bound (Figure 2)."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.taskgraph import DesignPoint, TaskGraph


def settings():
    return SolverSettings(time_limit=15.0)


def proc(r=400, c_t=20.0, m=128):
    return ReconfigurableProcessor(r, m, c_t)


class TestConfig:
    def test_delta_resolution_explicit(self):
        config = RefinementConfig(delta=50.0)
        assert config.resolve_delta(1000.0) == 50.0

    def test_delta_resolution_fraction(self):
        config = RefinementConfig(delta_fraction=0.05)
        assert config.resolve_delta(1000.0) == pytest.approx(50.0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            RefinementConfig(delta=-1.0).resolve_delta(100.0)


class TestSearch:
    def test_finds_solution_on_ar(self, ar_graph, ar_device):
        result = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(delta=10.0, gamma=1),
            settings=settings(),
        )
        assert result.feasible
        assert result.design.is_valid(ar_device)
        assert result.achieved == pytest.approx(510.0)

    def test_escalates_past_infeasible_bounds(self, ar_graph):
        # alpha = 0 starts at N=3; with r=320 the min-area packing (970)
        # needs 4 partitions but N_min^l = ceil(970/320) = 4 already; force
        # a miss by starting below with a graph-level trick instead: use a
        # device where the bound is optimistic because of fragmentation.
        graph = TaskGraph("frag")
        for i in range(3):
            graph.add_task(f"t{i}", (DesignPoint(200, 50, name="dp1"),))
        graph.add_edge("t0", "t1", 1)
        graph.add_edge("t1", "t2", 1)
        processor = proc(r=390, c_t=5, m=64)
        # sum(min area) = 600 -> N_min^l = 2, but 390 fits only one task
        # (2 x 200 = 400 > 390), so 2 partitions are infeasible; the search
        # must escalate to 3.
        result = refine_partitions_bound(
            graph,
            processor,
            config=RefinementConfig(delta=5.0),
            settings=settings(),
        )
        assert result.feasible
        assert result.design.num_partitions_used == 3
        explored = result.explored_partitions
        assert explored[0] == 2
        assert 3 in explored

    def test_escalation_limit_gives_up(self):
        graph = TaskGraph("hopeless")
        graph.add_task("big", (DesignPoint(500, 10, name="dp1"),))
        graph.add_task("big2", (DesignPoint(500, 10, name="dp1"),))
        graph.add_edge("big", "big2", 100)
        # Memory of 1 unit cannot carry the edge, and area forces a split.
        processor = ReconfigurableProcessor(600, 1, 5)
        result = refine_partitions_bound(
            graph,
            processor,
            config=RefinementConfig(
                delta=5.0, infeasible_escalation_limit=3
            ),
            settings=settings(),
        )
        assert not result.feasible
        assert len(result.explored_partitions) == 1 + 3

    def test_min_latency_cut_fires_with_large_ct(self, ar_graph):
        processor = proc(c_t=1e6)
        result = refine_partitions_bound(
            ar_graph,
            processor,
            config=RefinementConfig(delta=10.0, gamma=3),
            settings=settings(),
        )
        assert result.feasible
        assert result.stopped_by_min_latency_cut
        # Only the first feasible bound was fully explored.
        assert len(set(result.explored_partitions)) == 1

    def test_relaxation_explores_up_to_gamma(self, ar_graph, ar_device):
        result = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(delta=10.0, gamma=2),
            settings=settings(),
        )
        # N_min^l = 3, N_min^u = 4, gamma = 2 -> up to 6 unless cut fires.
        assert max(result.explored_partitions) <= 6

    def test_alpha_shifts_start(self, ar_graph, ar_device):
        result = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(alpha=1, delta=10.0),
            settings=settings(),
        )
        assert result.explored_partitions[0] == 4

    def test_time_budget_respected(self, ar_graph, ar_device):
        result = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(delta=1.0, gamma=3, time_budget=1e-9),
        )
        # With an expired budget the search stops after the first
        # reduce-latency call (which itself checks the deadline).
        assert len(set(result.explored_partitions)) <= 1

    def test_incumbent_carried_as_upper_bound(self, ar_graph, ar_device):
        result = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(delta=10.0, gamma=1),
            settings=settings(),
        )
        by_n = {}
        for record in result.trace:
            by_n.setdefault(record.num_partitions, []).append(record)
        ns = sorted(by_n)
        for earlier, later in zip(ns, ns[1:]):
            best_earlier = min(
                (r.achieved for r in by_n[earlier] if r.feasible),
                default=None,
            )
            if best_earlier is not None:
                first_later = by_n[later][0]
                assert first_later.d_max <= best_earlier + 1e-6
