"""Symmetry breaking must never change optimal values, only effort."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, bounds, build_model
from repro.core.formulation import interchangeable_groups
from repro.taskgraph import DesignPoint, TaskGraph, dct_4x4


def symmetric_fanout(copies=4):
    """One producer feeding `copies` identical consumers."""
    graph = TaskGraph("fanout")
    graph.add_task("src", (DesignPoint(100, 50, name="dp1"),))
    for i in range(copies):
        graph.add_task(
            f"c{i}",
            (
                DesignPoint(120, 80, name="dp1"),
                DesignPoint(200, 40, name="dp2"),
            ),
        )
        graph.add_edge("src", f"c{i}", 3)
    return graph


class TestGroups:
    def test_fanout_consumers_grouped(self):
        groups = interchangeable_groups(symmetric_fanout())
        assert groups == [("c0", "c1", "c2", "c3")]

    def test_different_volumes_not_grouped(self):
        graph = symmetric_fanout(2)
        graph2 = TaskGraph("uneven")
        graph2.add_task("src", (DesignPoint(100, 50, name="dp1"),))
        graph2.add_task("c0", (DesignPoint(120, 80, name="dp1"),))
        graph2.add_task("c1", (DesignPoint(120, 80, name="dp1"),))
        graph2.add_edge("src", "c0", 3)
        graph2.add_edge("src", "c1", 7)   # different volume
        assert interchangeable_groups(graph2) == []

    def test_different_env_not_grouped(self):
        graph = TaskGraph("env")
        graph.add_task("a", (DesignPoint(10, 10, name="dp1"),))
        graph.add_task("b", (DesignPoint(10, 10, name="dp1"),))
        graph.set_env_input("a", 5)
        assert interchangeable_groups(graph) == []


class TestOptimalValuePreserved:
    @pytest.mark.parametrize("n", [2, 3])
    def test_same_optimum_with_and_without(self, n):
        graph = symmetric_fanout()
        processor = ReconfigurableProcessor(450, 256, 15)
        d_max = bounds.max_latency(graph, n, 15)
        values = {}
        for flag in (False, True):
            options = FormulationOptions(
                symmetry_breaking=flag, minimize_latency=True
            )
            tp = build_model(graph, processor, n, d_max, options=options)
            solution = tp.model.solve(backend="highs", time_limit=30.0)
            assert solution.status.has_solution
            design = tp.design_from(solution)
            assert design.audit(processor) == []
            values[flag] = design.total_latency(processor)
        assert values[True] == pytest.approx(values[False])

    def test_dct_model_shrinks_symmetric_space(self):
        graph = dct_4x4()
        processor = ReconfigurableProcessor(1024, 2048, 30)
        plain = build_model(
            graph, processor, 5,
            bounds.max_latency(graph, 5, 30),
        ).model
        broken = build_model(
            graph, processor, 5,
            bounds.max_latency(graph, 5, 30),
            options=FormulationOptions(symmetry_breaking=True),
        ).model
        # 8 groups x 3 ordering rows each = 24 extra constraints.
        assert broken.num_constraints == plain.num_constraints + 24
