"""The unsharded search trajectory is untouched by this refactor.

``refine_partitions_bound`` now routes every partition bound through the
extracted :func:`repro.core.refine_partitions.evaluate_partition_bound`
(the same function the sharded service calls), and ``reduce_latency``
grew an optional ``should_stop`` hook.  Both must be invisible to the
serial path: identical iteration records, identical verdicts, identical
designs — bit for bit, not approximately.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    RefinementConfig,
    SolverSettings,
    reduce_latency,
    refine_partitions_bound,
)
from repro.core.refine_partitions import (
    evaluate_partition_bound,
    partition_bound_window,
)


def record_tuples(trace):
    """Every decision-relevant field of every iteration record.

    ``wall_time`` (and backend-reported iteration counts, which depend
    on it via per-solve budgets) are physical measurements, not search
    decisions — everything else must match bit for bit.
    """
    return [
        tuple(
            getattr(r, f.name)
            for f in dataclasses.fields(r)
            if f.name not in ("wall_time", "solver_iterations")
        )
        for r in trace.records
    ]


SETTINGS_VARIANTS = [
    SolverSettings(backend="highs", time_limit=10.0),
    SolverSettings.paper_exact(time_limit=10.0),
    SolverSettings.fast(time_limit=10.0),
]
VARIANT_IDS = ["default", "paper_exact", "fast"]


@pytest.mark.parametrize("settings", SETTINGS_VARIANTS, ids=VARIANT_IDS)
@pytest.mark.parametrize("fixture", ["diamond_graph", "ar_graph"])
def test_refine_partitions_is_run_to_run_deterministic(
    request, fixture, settings, ar_device
):
    graph = request.getfixturevalue(fixture)
    config = RefinementConfig(time_budget=60.0)

    first = refine_partitions_bound(
        graph, ar_device, config=config, settings=settings
    )
    second = refine_partitions_bound(
        graph, ar_device, config=config, settings=settings
    )
    assert record_tuples(first.trace) == record_tuples(second.trace)
    assert first.achieved == second.achieved
    assert first.explored_partitions == second.explored_partitions
    if first.feasible:
        assert (
            first.design.as_assignment() == second.design.as_assignment()
        )


def test_should_stop_none_leaves_reduce_latency_untouched(
    diamond_graph, ar_device, fast_settings
):
    """The cancellation hook's default is literally no code on the path."""
    d_max, d_min = partition_bound_window(diamond_graph, ar_device, 2)
    kwargs = dict(
        graph=diamond_graph,
        processor=ar_device,
        num_partitions=2,
        d_max=d_max,
        d_min=d_min,
        delta=25.0,
        settings=fast_settings,
    )
    plain = reduce_latency(**kwargs)
    explicit_none = reduce_latency(**kwargs, should_stop=None)
    assert record_tuples(plain.trace) == record_tuples(explicit_none.trace)
    assert plain.achieved == explicit_none.achieved


def test_evaluate_partition_bound_matches_direct_reduce_latency(
    diamond_graph, ar_device, fast_settings
):
    """The shard-shaped wrapper is the serial iteration, verbatim."""
    d_max, d_min = partition_bound_window(diamond_graph, ar_device, 2)
    direct = reduce_latency(
        graph=diamond_graph,
        processor=ar_device,
        num_partitions=2,
        d_max=d_max,
        d_min=d_min,
        delta=25.0,
        settings=fast_settings,
    )
    wrapped = evaluate_partition_bound(
        diamond_graph,
        ar_device,
        2,
        d_max,
        d_min,
        25.0,
        settings=fast_settings,
    )
    assert record_tuples(direct.trace) == record_tuples(wrapped.trace)
    assert direct.achieved == wrapped.achieved
    assert direct.feasible == wrapped.feasible


def test_cancelled_immediately_still_returns_a_valid_result(
    diamond_graph, ar_device, fast_settings
):
    d_max, d_min = partition_bound_window(diamond_graph, ar_device, 2)
    result = reduce_latency(
        graph=diamond_graph,
        processor=ar_device,
        num_partitions=2,
        d_max=d_max,
        d_min=d_min,
        delta=25.0,
        settings=fast_settings,
        should_stop=lambda: True,
    )
    # The opening full-window solve always runs (cancellation is polled
    # where the deadline is: before each bisection trial), so a cancel
    # raised from the start still returns that first incumbent.
    assert len(result.trace.records) == 1
    assert result.design is not None
    assert result.achieved == result.trace.records[0].achieved


def test_cancellation_mid_search_keeps_the_incumbent(
    diamond_graph, ar_device, fast_settings
):
    calls = {"n": 0}

    def stop_after_one_window() -> bool:
        calls["n"] += 1
        return calls["n"] > 1

    d_max, d_min = partition_bound_window(diamond_graph, ar_device, 2)
    full = reduce_latency(
        graph=diamond_graph,
        processor=ar_device,
        num_partitions=2,
        d_max=d_max,
        d_min=d_min,
        delta=25.0,
        settings=fast_settings,
    )
    cancelled = reduce_latency(
        graph=diamond_graph,
        processor=ar_device,
        num_partitions=2,
        d_max=d_max,
        d_min=d_min,
        delta=25.0,
        settings=fast_settings,
        should_stop=stop_after_one_window,
    )
    assert len(cancelled.trace.records) <= len(full.trace.records)
    if cancelled.trace.records:
        # The windows it did run are the full run's prefix, bit for bit.
        prefix = record_tuples(full.trace)[: len(cancelled.trace.records)]
        assert record_tuples(cancelled.trace) == prefix
