"""Outcome serialization: schema versioning and golden-file compatibility.

``tests/golden/outcome_v1.json`` is a payload in the pre-redesign
format — no ``schema_version`` key, no ``partition_bounds`` block, no
service-era telemetry counters.  ``outcome_v2.json`` adds explicit
versioning and round-trippable design labels; ``outcome_v3.json`` is
the current format with the ``scenario`` id.  All must keep parsing;
new schema bumps add a fixture here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import OUTCOME_SCHEMA_VERSION
from repro.core.partitioner import PartitioningOutcome

GOLDEN = Path(__file__).resolve().parent.parent / "golden"


def load(name: str) -> dict:
    return json.loads((GOLDEN / name).read_text())


ALL_VERSIONS = ["outcome_v1.json", "outcome_v2.json", "outcome_v3.json"]


class TestGoldenCompatibility:
    @pytest.mark.parametrize("name", ALL_VERSIONS)
    def test_golden_parses_without_graph(self, name):
        outcome = PartitioningOutcome.from_dict(load(name))
        assert outcome.total_latency == 80.0
        assert outcome.partition_range.start == 1
        assert outcome.design is None  # no graph, no placements
        assert outcome.telemetry is not None
        assert len(outcome.trace.records) == 1
        assert outcome.trace.records[0].backend == "highs"

    @pytest.mark.parametrize("name", ALL_VERSIONS)
    def test_golden_parses_with_graph(self, name, chain_graph):
        outcome = PartitioningOutcome.from_dict(load(name), graph=chain_graph)
        assert outcome.feasible
        assert outcome.design.as_assignment() == {
            "t0": (1, "dp1"),
            "t1": (1, "dp1"),
            "t2": (1, "dp1"),
        }

    def test_v1_bounds_fall_back_to_partition_range(self):
        outcome = PartitioningOutcome.from_dict(load("outcome_v1.json"))
        assert outcome.partition_range.lower_bound == 1
        assert outcome.partition_range.stop == 1

    @pytest.mark.parametrize("name", ["outcome_v1.json", "outcome_v2.json"])
    def test_pre_v3_payloads_default_to_paper_oneshot(self, name):
        outcome = PartitioningOutcome.from_dict(load(name))
        assert outcome.scenario == "paper_oneshot"

    def test_current_format_matches_the_v3_golden_shape(
        self, chain_graph, ar_device, fast_settings
    ):
        from repro.core import (
            PartitionerConfig,
            PartitionRequest,
            TemporalPartitioner,
        )

        outcome = TemporalPartitioner(
            ar_device, PartitionerConfig(solver=fast_settings)
        ).solve(PartitionRequest(graph=chain_graph))
        payload = outcome.to_dict(include_trace=True)
        golden = load("outcome_v3.json")
        assert set(payload) == set(golden)
        assert set(payload["partition_bounds"]) == set(
            golden["partition_bounds"]
        )
        assert set(payload["trace"]["records"][0]) == set(
            golden["trace"]["records"][0]
        )
        assert payload["schema_version"] == OUTCOME_SCHEMA_VERSION


class TestVersionGate:
    def test_future_schema_version_is_rejected(self):
        payload = load("outcome_v3.json")
        payload["schema_version"] = OUTCOME_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            PartitioningOutcome.from_dict(payload)

    def test_round_trip_preserves_everything(self, chain_graph):
        payload = load("outcome_v3.json")
        outcome = PartitioningOutcome.from_dict(payload, graph=chain_graph)
        again = outcome.to_dict(include_trace=True)
        # Telemetry percentiles are recomputed from per-solve records
        # (absent in the golden), so compare the stable summary fields.
        for key in (
            "schema_version",
            "scenario",
            "feasible",
            "degraded",
            "total_latency",
            "execution_latency",
            "num_partitions",
            "partition_range",
            "partition_bounds",
            "delta",
            "stopped_by_min_latency_cut",
            "stopped_by_time",
            "iterations",
            "design",
        ):
            assert again[key] == payload[key], key
        assert again["trace"] == payload["trace"]
