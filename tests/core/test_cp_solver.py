"""Unit tests for the backtracking (CP) solver."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import CpStats, bounds, cp_solve
from repro.taskgraph import DesignPoint, TaskGraph


def proc(r=400, m=128, c_t=20.0):
    return ReconfigurableProcessor(r, m, c_t)


class TestFeasibility:
    def test_finds_valid_design(self, ar_graph):
        processor = proc()
        d_max = bounds.max_latency(ar_graph, 3, 20.0)
        design = cp_solve(ar_graph, processor, 3, d_max)
        assert design is not None
        assert design.is_valid(processor)
        assert design.total_latency(processor) <= d_max + 1e-6

    def test_respects_d_max(self, ar_graph):
        processor = proc()
        design = cp_solve(ar_graph, processor, 4, 520.0)
        if design is not None:
            assert design.total_latency(processor) <= 520.0 + 1e-6

    def test_infeasible_when_area_too_small(self, ar_graph):
        processor = proc()
        assert cp_solve(ar_graph, processor, 1, 1e9) is None

    def test_infeasible_when_latency_too_tight(self, ar_graph):
        processor = proc()
        # Below MinLatency(3): provably impossible.
        d_min = bounds.min_latency(ar_graph, 3, 20.0)
        assert cp_solve(ar_graph, processor, 3, d_min * 0.5) is None

    def test_memory_constraint_respected(self):
        graph = TaskGraph("mem")
        graph.add_task("p", (DesignPoint(300, 10, name="dp1"),))
        graph.add_task("q", (DesignPoint(300, 10, name="dp1"),))
        graph.add_edge("p", "q", 50)
        tight = ReconfigurableProcessor(400, 10, 10)
        # Splitting is forced by area but forbidden by memory.
        assert cp_solve(graph, tight, 2, 1e9) is None

    def test_env_memory_can_be_excluded(self):
        graph = TaskGraph("env")
        graph.add_task("a", (DesignPoint(300, 10, name="dp1"),))
        graph.add_task("b", (DesignPoint(300, 10, name="dp1"),))
        graph.add_edge("a", "b", 1)
        graph.set_env_input("a", 100)
        processor = ReconfigurableProcessor(400, 5, 10)
        assert cp_solve(graph, processor, 2, 1e9) is None
        relaxed = cp_solve(
            graph, processor, 2, 1e9, include_env_memory=False
        )
        assert relaxed is not None

    def test_invalid_partition_count(self, ar_graph):
        with pytest.raises(ValueError):
            cp_solve(ar_graph, proc(), 0, 1e9)


class TestBudgets:
    def test_stats_populated(self, ar_graph):
        stats = CpStats()
        cp_solve(ar_graph, proc(), 3, 1e9, stats=stats)
        assert stats.nodes > 0
        assert stats.wall_time > 0

    def test_node_limit(self, dct_graph):
        processor = ReconfigurableProcessor(576, 4096, 30)
        stats = CpStats()
        # Tight latency makes the search big; the limit must stop it.
        cp_solve(
            dct_graph, processor, 10, 4000.0, node_limit=500, stats=stats
        )
        assert stats.nodes <= 600

    def test_time_limit(self, dct_graph):
        processor = ReconfigurableProcessor(576, 4096, 30)
        stats = CpStats()
        cp_solve(
            dct_graph, processor, 10, 4000.0, time_limit=0.2, stats=stats
        )
        assert stats.timed_out
        assert stats.wall_time < 5.0


class TestAgreementWithIlp:
    def test_cp_and_ilp_agree_on_feasibility(self, diamond_graph):
        from repro.core import build_model

        processor = ReconfigurableProcessor(250, 1000, 10)
        for d_max in (80.0, 120.0, 1000.0):
            cp_design = cp_solve(diamond_graph, processor, 3, d_max)
            tp = build_model(diamond_graph, processor, 3, d_max)
            ilp = tp.solve(backend="highs", first_feasible=True)
            assert (cp_design is not None) == ilp.status.has_solution
