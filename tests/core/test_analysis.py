"""Unit tests for the utilization analysis module."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    PartitionedDesign,
    design_point_histogram,
    utilization_report,
)
from repro.taskgraph import DesignPoint, TaskGraph


def build_design():
    graph = TaskGraph("g")
    graph.add_task(
        "a",
        (
            DesignPoint(100, 50, name="dp1"),
            DesignPoint(200, 25, name="dp2"),
        ),
    )
    graph.add_task("b", (DesignPoint(150, 75, name="dp1"),))
    graph.add_task("c", (DesignPoint(120, 30, name="dp1"),))
    graph.add_edge("a", "b", 10)
    graph.add_edge("b", "c", 4)
    return PartitionedDesign.from_labels(
        graph, {"a": (1, "dp2"), "b": (1, "dp1"), "c": (2, "dp1")}
    )


@pytest.fixture
def processor():
    return ReconfigurableProcessor(400, 64, 10.0)


class TestUtilizationReport:
    def test_partition_rows(self, processor):
        report = utilization_report(build_design(), processor)
        assert len(report.partitions) == 2
        first = report.partitions[0]
        assert first.tasks == 2
        assert first.area_used == pytest.approx(350.0)
        assert first.area_fraction == pytest.approx(350 / 400)
        assert first.latency == pytest.approx(100.0)  # a(25) -> b(75)

    def test_totals(self, processor):
        report = utilization_report(build_design(), processor)
        assert report.execution_latency == pytest.approx(130.0)
        assert report.total_latency == pytest.approx(150.0)
        assert report.reconfiguration_overhead == pytest.approx(20.0)
        assert report.overhead_fraction == pytest.approx(20 / 150)

    def test_bottleneck(self, processor):
        report = utilization_report(build_design(), processor)
        assert report.bottleneck.partition == 1

    def test_memory_fractions(self, processor):
        report = utilization_report(build_design(), processor)
        second = report.partitions[1]
        # Boundary of partition 2 carries the b->c edge (4 units).
        assert second.memory_at_boundary == pytest.approx(4.0)
        assert second.memory_fraction == pytest.approx(4 / 64)

    def test_zero_memory_capacity_handled(self):
        processor = ReconfigurableProcessor(400, 0, 10.0)
        graph = TaskGraph("solo")
        graph.add_task("t", (DesignPoint(10, 5, name="dp1"),))
        design = PartitionedDesign.from_labels(graph, {"t": (1, "dp1")})
        report = utilization_report(design, processor)
        assert report.partitions[0].memory_fraction == 0.0

    def test_table_renders(self, processor):
        text = utilization_report(build_design(), processor).table().render()
        assert "Partition utilization" in text
        assert "reconfiguration" in text

    def test_saturation_flag(self, processor):
        report = utilization_report(build_design(), processor)
        assert not report.partitions[0].is_area_saturated
        assert report.peak_area_fraction == pytest.approx(350 / 400)


class TestHistogram:
    def test_counts_by_label(self):
        histogram = design_point_histogram(build_design())
        assert histogram == {"dp1": 2, "dp2": 1}

    def test_full_pipeline_histogram(self, ar_graph, ar_device,
                                     fast_settings):
        from repro.core import (
            RefinementConfig,
            refine_partitions_bound,
        )

        result = refine_partitions_bound(
            ar_graph, ar_device,
            config=RefinementConfig(delta=10.0, gamma=1),
            settings=fast_settings,
        )
        histogram = design_point_histogram(result.design)
        assert sum(histogram.values()) == 6
