"""Unit tests for the TemporalPartitioner facade."""

import pytest

from repro import (
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import ReconfigurableProcessor, simulate
from repro.taskgraph import DesignPoint, GraphValidationError, TaskGraph


def quick_config(**search_kwargs):
    search_kwargs.setdefault("delta", 10.0)
    return PartitionerConfig(
        search=RefinementConfig(**search_kwargs),
        solver=SolverSettings(time_limit=15.0),
    )


class TestFacade:
    def test_end_to_end_on_ar(self, ar_graph, ar_device):
        partitioner = TemporalPartitioner(ar_device, quick_config(gamma=1))
        outcome = partitioner.partition(ar_graph)
        assert outcome.feasible
        assert outcome.num_partitions == outcome.design.num_partitions_used
        assert outcome.execution_latency == pytest.approx(
            outcome.design.execution_latency()
        )
        # The simulator agrees with the reported latency.
        report = simulate(outcome.design, ar_device)
        assert report.makespan == pytest.approx(outcome.total_latency)

    def test_validation_rejects_cyclic_graph(self, ar_device):
        graph = TaskGraph("cyclic")
        graph.add_task("a", (DesignPoint(10, 10),))
        graph.add_task("b", (DesignPoint(10, 10),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        partitioner = TemporalPartitioner(ar_device, quick_config())
        with pytest.raises(GraphValidationError):
            partitioner.partition(graph)

    def test_validation_rejects_oversized_task(self, ar_device):
        graph = TaskGraph("big")
        graph.add_task("huge", (DesignPoint(10_000, 10),))
        partitioner = TemporalPartitioner(ar_device, quick_config())
        with pytest.raises(GraphValidationError):
            partitioner.partition(graph)

    def test_validation_can_be_disabled(self, ar_device):
        graph = TaskGraph("big")
        graph.add_task("huge", (DesignPoint(10_000, 10),))
        config = PartitionerConfig(
            search=RefinementConfig(
                delta=10.0, infeasible_escalation_limit=2
            ),
            solver=SolverSettings(time_limit=5.0),
            validate=False,
        )
        partitioner = TemporalPartitioner(ar_device, config)
        outcome = partitioner.partition(graph)   # no exception
        assert not outcome.feasible

    def test_default_config(self, ar_graph, ar_device):
        partitioner = TemporalPartitioner(ar_device)
        outcome = partitioner.partition(ar_graph)
        assert outcome.feasible

    def test_bounds_for(self, ar_graph, ar_device):
        partitioner = TemporalPartitioner(ar_device)
        d_max, d_min = partitioner.bounds_for(ar_graph, 3)
        assert d_max > d_min > 0

    def test_outcome_carries_partition_range(self, ar_graph, ar_device):
        partitioner = TemporalPartitioner(ar_device, quick_config(gamma=1))
        outcome = partitioner.partition(ar_graph)
        assert outcome.partition_range.lower_bound == 3
        assert outcome.partition_range.upper_seed == 4

    def test_infeasible_outcome_accessors(self, ar_device):
        graph = TaskGraph("stuck")
        graph.add_task("a", (DesignPoint(300, 10),))
        graph.add_task("b", (DesignPoint(300, 10),))
        graph.add_edge("a", "b", 9999)   # cannot cross: memory is 128
        config = quick_config(infeasible_escalation_limit=2)
        partitioner = TemporalPartitioner(
            ReconfigurableProcessor(400, 128, 20), config
        )
        outcome = partitioner.partition(graph)
        assert not outcome.feasible
        assert outcome.num_partitions is None
        assert outcome.execution_latency is None
