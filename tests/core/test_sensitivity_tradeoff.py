"""Tests for LP shadow prices and the partition/latency trade-off curve."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    SolverSettings,
    bounds,
    build_model,
    capacity_shadow_prices,
    partition_latency_curve,
)
from repro.taskgraph import DesignPoint, TaskGraph, ar_filter


def tight_graph():
    """Two parallel tasks whose fast points need more area than R_max."""
    graph = TaskGraph("tight")
    for name in ("a", "b"):
        graph.add_task(
            name,
            (
                DesignPoint(100, 200, name="slow"),
                DesignPoint(260, 80, name="fast"),
            ),
        )
    return graph


class TestShadowPrices:
    def test_binding_resource_row_has_negative_price(self):
        graph = tight_graph()
        processor = ReconfigurableProcessor(300, 256, 10)
        tp = build_model(
            graph, processor, 1,
            bounds.max_latency(graph, 1, 10),
            options=FormulationOptions(minimize_latency=True),
        )
        report = capacity_shadow_prices(tp)
        assert report is not None
        # One partition, 300 units: fast+fast needs 520; the resource row
        # binds and extra capacity would lower the LP latency bound.
        assert report.resource_prices[1] < -1e-9
        assert 1 in report.binding_resource_partitions

    def test_slack_rows_have_zero_price(self):
        graph = tight_graph()
        processor = ReconfigurableProcessor(2000, 4096, 10)
        tp = build_model(
            graph, processor, 1,
            bounds.max_latency(graph, 1, 10),
            options=FormulationOptions(minimize_latency=True),
        )
        report = capacity_shadow_prices(tp)
        assert report.resource_prices[1] == pytest.approx(0.0, abs=1e-9)

    def test_infeasible_returns_none(self):
        graph = tight_graph()
        processor = ReconfigurableProcessor(150, 256, 10)  # nothing fits
        tp = build_model(graph, processor, 1, d_max=1e9)
        assert capacity_shadow_prices(tp) is None

    def test_table_renders(self):
        graph = tight_graph()
        processor = ReconfigurableProcessor(300, 256, 10)
        tp = build_model(
            graph, processor, 1,
            bounds.max_latency(graph, 1, 10),
            options=FormulationOptions(minimize_latency=True),
        )
        text = capacity_shadow_prices(tp).table().render()
        assert "shadow prices" in text
        assert "LP latency bound" in text


class TestTradeoffCurve:
    @pytest.fixture(scope="class")
    def ar_curve(self):
        return partition_latency_curve(
            ar_filter(),
            ReconfigurableProcessor(400, 128, 20),
            partition_counts=[2, 3, 4, 5],
            delta=10.0,
            settings=SolverSettings(time_limit=15.0),
        )

    def test_infeasible_bounds_marked(self, ar_curve):
        by_n = {p.num_partitions: p for p in ar_curve.points}
        assert not by_n[2].feasible     # 970 area cannot fit 2 x 400
        assert by_n[3].feasible

    def test_best_matches_known_optimum(self, ar_curve):
        assert ar_curve.best().total_latency == pytest.approx(510.0)

    def test_designs_kept_per_bound(self, ar_curve):
        for point in ar_curve.points:
            if point.feasible:
                design = ar_curve.designs[point.num_partitions]
                assert design.num_partitions_used <= point.num_partitions

    def test_large_ct_curve_increases(self):
        curve = partition_latency_curve(
            ar_filter(),
            ReconfigurableProcessor(400, 128, 1e6),
            partition_counts=[3, 4, 5],
            delta=10.0,
            settings=SolverSettings(time_limit=15.0),
        )
        latencies = [p.total_latency for p in curve.points if p.feasible]
        assert latencies == sorted(latencies)
        assert curve.best().num_partitions == 3

    def test_table_renders(self, ar_curve):
        text = ar_curve.table().render()
        assert "trade-off" in text
        assert "best:" in text
