"""Tests for the two latency encodings (paths vs levels big-M).

The paper's per-path rows require path enumeration, which explodes on
deep diamond graphs; the ``levels`` start-time encoding is polynomial.
Both must agree exactly on integer optima.
"""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, bounds, build_model
from repro.taskgraph import DesignPoint, TaskGraph, count_paths, layered_graph


def proc(r=400, c_t=10.0):
    return ReconfigurableProcessor(r, 1000, c_t)


def optimum(graph, processor, n, mode, path_limit=100_000):
    options = FormulationOptions(
        latency_mode=mode, minimize_latency=True, path_limit=path_limit
    )
    tp = build_model(
        graph,
        processor,
        n,
        bounds.max_latency(graph, n, processor.reconfiguration_time),
        options=options,
    )
    solution = tp.model.solve(backend="highs", time_limit=60.0)
    assert solution.status.has_solution
    design = tp.design_from(solution)
    assert design.audit(processor) == []
    return design.total_latency(processor)


def deep_diamond(stages: int) -> TaskGraph:
    """2**stages source-sink paths with tiny task count."""
    graph = TaskGraph(f"diamonds{stages}")
    graph.add_task("n0", (DesignPoint(60, 20, name="dp1"),))
    for stage in range(stages):
        top, bottom, joint = f"t{stage}", f"b{stage}", f"n{stage + 1}"
        graph.add_task(top, (
            DesignPoint(60, 30, name="dp1"),
            DesignPoint(100, 15, name="dp2"),
        ))
        graph.add_task(bottom, (DesignPoint(60, 25, name="dp1"),))
        graph.add_task(joint, (DesignPoint(60, 20, name="dp1"),))
        graph.add_edge(f"n{stage}", top, 2)
        graph.add_edge(f"n{stage}", bottom, 2)
        graph.add_edge(top, joint, 2)
        graph.add_edge(bottom, joint, 2)
    return graph


class TestEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_modes_agree_on_layered_graphs(self, seed):
        graph = layered_graph(3, 2, seed=seed)
        processor = ReconfigurableProcessor(700, 512, 40)
        n = bounds.min_area_partitions(graph, 700) + 1
        paths_opt = optimum(graph, processor, n, "paths")
        levels_opt = optimum(graph, processor, n, "levels")
        assert paths_opt == pytest.approx(levels_opt, abs=1e-6)

    def test_modes_agree_on_diamond(self, diamond_graph):
        processor = proc(r=250)
        for n in (2, 3):
            assert optimum(diamond_graph, processor, n, "paths") == (
                pytest.approx(
                    optimum(diamond_graph, processor, n, "levels"),
                    abs=1e-6,
                )
            )


class TestAutoFallback:
    def test_auto_uses_levels_beyond_path_limit(self):
        graph = deep_diamond(9)   # 2^9 = 512 paths
        assert count_paths(graph) == 512
        processor = proc(r=200, c_t=5.0)
        # N_min^l = 9 is fragmentation-infeasible (3 x 60 per device max,
        # 28 tasks need 10 bins); give the search the honest count.
        n = bounds.min_area_partitions(graph, 200) + 1
        options = FormulationOptions(
            latency_mode="auto", path_limit=100, minimize_latency=True
        )
        tp = build_model(
            graph,
            processor,
            n,
            bounds.max_latency(graph, n, 5.0),
            options=options,
        )
        # Levels mode introduces start-time variables.
        names = {v.name for v in tp.model.variables}
        assert any(name.startswith("s[") for name in names)
        solution = tp.model.solve(backend="highs", time_limit=60.0)
        assert solution.status.has_solution
        design = tp.design_from(solution)
        assert design.audit(processor) == []

    def test_explicit_paths_mode_still_raises(self):
        from repro.taskgraph.paths import PathLimitExceeded

        graph = deep_diamond(9)
        options = FormulationOptions(latency_mode="paths", path_limit=100)
        with pytest.raises(PathLimitExceeded):
            build_model(graph, proc(r=200), 3, d_max=1e9, options=options)

    def test_levels_latency_matches_design_semantics(self):
        # On a small instance the levels optimum equals the paths optimum
        # AND the decoded design's own latency computation.
        graph = deep_diamond(2)   # 4 paths: cheap for both modes
        processor = proc(r=200, c_t=5.0)
        n = 3
        paths_opt = optimum(graph, processor, n, "paths")
        levels_opt = optimum(graph, processor, n, "levels")
        assert paths_opt == pytest.approx(levels_opt, abs=1e-6)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FormulationOptions(latency_mode="psychic")
