"""Tests for the top-level repro.report module and its shim."""

from repro.experiments import report as shim
from repro import report


class TestShim:
    def test_shim_reexports_same_objects(self):
        assert shim.TextTable is report.TextTable
        assert shim.format_value is report.format_value

    def test_import_core_analysis_does_not_pull_experiments(self):
        # Regression for the circular import: importing core.analysis in
        # a fresh interpreter must not require repro.experiments.
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.core import analysis\n"
            "assert 'repro.experiments' not in sys.modules, 'cycle back'\n"
            "print('clean')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
