"""Unit tests for the processor model."""

import pytest

from repro.arch import ReconfigurableProcessor, time_multiplexed, wildforce


class TestValidation:
    def test_positive_resources_required(self):
        with pytest.raises(ValueError):
            ReconfigurableProcessor(0, 10, 10)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            ReconfigurableProcessor(10, -1, 10)

    def test_negative_reconfiguration_rejected(self):
        with pytest.raises(ValueError):
            ReconfigurableProcessor(10, 10, -1)

    def test_zero_reconfiguration_allowed(self):
        proc = ReconfigurableProcessor(10, 10, 0)
        assert proc.reconfiguration_overhead(5) == 0


class TestBehaviour:
    def test_overhead(self):
        proc = ReconfigurableProcessor(10, 10, 7)
        assert proc.reconfiguration_overhead(3) == 21

    def test_overhead_negative_partitions(self):
        proc = ReconfigurableProcessor(10, 10, 7)
        with pytest.raises(ValueError):
            proc.reconfiguration_overhead(-1)

    def test_with_resources_copy(self):
        proc = wildforce()
        bigger = proc.with_resources(1024)
        assert bigger.resource_capacity == 1024
        assert bigger.reconfiguration_time == proc.reconfiguration_time
        assert proc.resource_capacity == 576  # original untouched

    def test_with_reconfiguration_time(self):
        proc = wildforce().with_reconfiguration_time(5.0)
        assert proc.reconfiguration_time == 5.0

    def test_frozen(self):
        proc = wildforce()
        with pytest.raises(AttributeError):
            proc.resource_capacity = 1


class TestPresets:
    def test_wildforce_regime(self):
        # Milliseconds in nanosecond units.
        assert wildforce().reconfiguration_time == pytest.approx(10e6)

    def test_time_multiplexed_regime(self):
        assert time_multiplexed().reconfiguration_time == pytest.approx(30.0)

    def test_presets_accept_overrides(self):
        proc = time_multiplexed(resource_capacity=1024, memory_capacity=64)
        assert proc.resource_capacity == 1024
        assert proc.memory_capacity == 64
