"""Executor behaviour around environment memory and edge cases."""

import pytest

from repro.arch import ReconfigurableProcessor, simulate
from repro.core import PartitionedDesign
from repro.taskgraph import DesignPoint, TaskGraph


def env_graph():
    graph = TaskGraph("env")
    graph.add_task("a", (DesignPoint(100, 10, name="dp1"),))
    graph.add_task("b", (DesignPoint(100, 10, name="dp1"),))
    graph.add_edge("a", "b", 2)
    graph.set_env_input("a", 30)
    graph.set_env_output("b", 7)
    return graph


def split_design():
    return PartitionedDesign.from_labels(
        env_graph(), {"a": (1, "dp1"), "b": (2, "dp1")}
    )


class TestEnvMemoryFlag:
    def test_env_included_by_default(self):
        report = simulate(split_design(), ReconfigurableProcessor(200, 64, 5))
        boundary2 = next(
            t for t in report.partitions if t.partition == 2
        )
        # a->b edge (2) + nothing else: env input consumed in partition 1,
        # env output produced in partition 2 (counted after).
        assert boundary2.memory_live == pytest.approx(2.0)

    def test_env_excluded(self):
        report = simulate(
            split_design(),
            ReconfigurableProcessor(200, 64, 5),
            include_env_memory=False,
        )
        boundary1 = next(
            t for t in report.partitions if t.partition == 1
        )
        assert boundary1.memory_live == pytest.approx(0.0)

    def test_env_input_live_at_first_boundary(self):
        report = simulate(split_design(), ReconfigurableProcessor(200, 64, 5))
        boundary1 = next(
            t for t in report.partitions if t.partition == 1
        )
        # 30 units of host input wait for task a.
        assert boundary1.memory_live == pytest.approx(30.0)


class TestDegenerateDesigns:
    def test_single_task_timeline(self):
        graph = TaskGraph("one")
        graph.add_task("t", (DesignPoint(10, 42, name="dp1"),))
        design = PartitionedDesign.from_labels(graph, {"t": (1, "dp1")})
        report = simulate(design, ReconfigurableProcessor(100, 10, 8))
        assert report.makespan == pytest.approx(50.0)
        assert len(report.events()) == 2      # reconfigure + task

    def test_zero_reconfiguration_time(self):
        design = split_design()
        report = simulate(design, ReconfigurableProcessor(200, 64, 0))
        assert report.makespan == pytest.approx(20.0)

    def test_high_partition_indices(self):
        graph = env_graph()
        design = PartitionedDesign.from_labels(
            graph, {"a": (3, "dp1"), "b": (9, "dp1")}
        )
        report = simulate(design, ReconfigurableProcessor(200, 64, 5))
        # eta = 9: all nine reconfigurations are paid.
        assert report.reconfigurations == 9
        assert report.makespan == pytest.approx(9 * 5 + 20)
