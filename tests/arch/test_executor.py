"""Unit tests for the execution-timeline simulator."""

import pytest

from repro.arch import ReconfigurableProcessor, simulate
from repro.core import PartitionedDesign
from repro.taskgraph import DesignPoint, TaskGraph


def proc(c_t=10.0):
    return ReconfigurableProcessor(1000, 1000, c_t)


def design_from(graph, assignment):
    return PartitionedDesign.from_labels(
        graph, {t: (p, "dp1") for t, p in assignment.items()}
    )


def chain():
    graph = TaskGraph("chain")
    for name, latency in (("a", 10), ("b", 20), ("c", 30)):
        graph.add_task(name, (DesignPoint(100, latency, name="dp1"),))
    graph.add_edge("a", "b", 2)
    graph.add_edge("b", "c", 2)
    return graph


class TestMakespan:
    def test_single_partition(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 1, "c": 1})
        report = simulate(design, proc())
        assert report.makespan == pytest.approx(10 + 60)
        assert report.reconfigurations == 1

    def test_three_partitions(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 2, "c": 3})
        report = simulate(design, proc())
        assert report.makespan == pytest.approx(3 * 10 + 60)
        assert report.reconfigurations == 3

    def test_parallel_tasks_overlap(self):
        graph = TaskGraph("par")
        graph.add_task("x", (DesignPoint(10, 40, name="dp1"),))
        graph.add_task("y", (DesignPoint(10, 25, name="dp1"),))
        design = design_from(graph, {"x": 1, "y": 1})
        report = simulate(design, proc())
        assert report.makespan == pytest.approx(10 + 40)

    def test_matches_design_total_latency(self, diamond_graph):
        design = PartitionedDesign.from_labels(
            diamond_graph,
            {
                "a": (1, "small"),
                "b": (1, "big"),
                "c": (2, "small"),
                "d": (2, "big"),
            },
        )
        processor = proc(c_t=7.0)
        report = simulate(design, processor)
        assert report.makespan == pytest.approx(
            design.total_latency(processor)
        )

    def test_gap_partition_still_costs_reconfiguration(self):
        graph = chain()
        # Partition 2 is empty; eta = 3 so 3 reconfigurations are paid.
        design = design_from(graph, {"a": 1, "b": 1, "c": 3})
        report = simulate(design, proc())
        assert report.reconfigurations == 3
        assert report.makespan == pytest.approx(3 * 10 + 30 + 30)


class TestTimelineStructure:
    def test_tasks_start_after_configuration(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 1, "c": 2})
        report = simulate(design, proc())
        for trace in report.partitions:
            for event in trace.tasks:
                assert event.start >= trace.configure_end - 1e-9

    def test_dependencies_within_partition_respected(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 1, "c": 1})
        report = simulate(design, proc())
        events = {e.label: e for e in report.partitions[0].tasks}
        assert events["b"].start >= events["a"].end - 1e-9
        assert events["c"].start >= events["b"].end - 1e-9

    def test_compute_latency_matches_partition_latency(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 1, "c": 2})
        report = simulate(design, proc())
        for trace in report.partitions:
            assert trace.compute_latency == pytest.approx(
                design.partition_latency(trace.partition)
            )

    def test_memory_trace_populated(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 2, "c": 2})
        report = simulate(design, proc())
        by_partition = {t.partition: t for t in report.partitions}
        assert by_partition[2].memory_live >= 2  # a->b crosses

    def test_events_time_ordered(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 2, "c": 3})
        events = simulate(design, proc()).events()
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_gantt_renders(self):
        graph = chain()
        design = design_from(graph, {"a": 1, "b": 2, "c": 2})
        text = simulate(design, proc()).gantt(width=40)
        assert "#" in text and "=" in text
        assert "a" in text
