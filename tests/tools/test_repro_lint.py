"""The repo-specific AST lint (tools/repro_lint.py): rules RL001-RL005.

``tools`` is not a package, so the module is loaded straight from its
file path.  Each rule is exercised on seeded sources (violations must be
flagged with the right rule and line) and on the real tree (the clean
repo must pass — the acceptance gate CI enforces).
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL_PATH = REPO_ROOT / "tools" / "repro_lint.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("repro_lint", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclass processing resolves the defining module via sys.modules,
    # so the module must be registered before exec.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


repro_lint = _load_tool()


def lint_snippet(tmp_path, source: str, in_library: bool = False):
    """Lint one snippet, optionally as if it lived under src/repro/."""
    if in_library:
        target = tmp_path / "src" / "repro" / "solve" / "snippet.py"
        target.parent.mkdir(parents=True, exist_ok=True)
    else:
        target = tmp_path / "snippet.py"
    target.write_text(source)
    return repro_lint.lint_paths([target])


class TestRL001CompiledMutation:
    def test_subscript_write_flagged(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def patch(compiled, row):\n"
            "    compiled.b_ub[row] = 5.0\n",
        )
        assert [v.rule for v in violations] == ["RL001"]
        assert violations[0].lineno == 2

    def test_all_protected_structure_arrays_flagged(self, tmp_path):
        arrays = (
            "b_ub", "b_eq", "ub_data", "ub_indices", "ub_indptr",
            "eq_data", "eq_indices", "eq_indptr", "is_integral",
        )
        body = "".join(f"    anything.{a}[0] = 1\n" for a in arrays)
        violations = lint_snippet(tmp_path, f"def f(anything):\n{body}")
        assert len(violations) == len(arrays)
        assert {v.rule for v in violations} == {"RL001"}

    def test_inplace_numpy_methods_flagged(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def f(compiled):\n"
            "    compiled.b_eq.fill(0.0)\n"
            "    compiled.ub_data.sort()\n",
        )
        assert [v.rule for v in violations] == ["RL001", "RL001"]

    def test_augmented_attribute_assignment_flagged(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def f(compiled):\n"
            "    compiled.b_ub += 1.0\n",
        )
        assert [v.rule for v in violations] == ["RL001"]

    def test_context_arrays_need_compiled_base(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def f(compiled, model, self):\n"
            "    compiled.lb[0] = 1.0\n"      # flagged: compiled base
            "    self._compiled.c[0] = 1.0\n"  # flagged: _compiled chain
            "    model.lb[0] = 1.0\n",         # not flagged: other object
        )
        assert len(violations) == 2
        assert all(v.rule == "RL001" for v in violations)

    def test_rebinding_is_not_mutation(self, tmp_path):
        assert lint_snippet(
            tmp_path,
            "def f(compiled, x):\n"
            "    compiled.b_ub = x\n",  # dataclass construction / replace
        ) == []

    def test_suppression_comment(self, tmp_path):
        source = (
            "def f(compiled):\n"
            "    compiled.b_ub[0] = 1.0  # repro-lint: ignore[RL001]\n"
            "    compiled.b_ub[1] = 1.0  # repro-lint: ignore\n"
            "    compiled.b_ub[2] = 1.0  # repro-lint: ignore[RL002]\n"
        )
        violations = lint_snippet(tmp_path, source)
        # Only the mismatched-code suppression keeps its violation.
        assert [v.lineno for v in violations] == [4]


class TestRL002WorkerSharedState:
    def test_self_write_in_cancel_function_flagged(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "class W:\n"
            "    def run(self, cancel):\n"
            "        self.result = 1\n",
        )
        assert [v.rule for v in violations] == ["RL002"]

    def test_global_and_nonlocal_flagged(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def outer():\n"
            "    hits = 0\n"
            "    def run(cancel):\n"
            "        nonlocal hits\n"
            "        global other\n"
            "        hits = 1\n"
            "    return run\n",
        )
        assert sorted(v.rule for v in violations) == ["RL002", "RL002"]

    def test_functions_without_cancel_are_free(self, tmp_path):
        assert lint_snippet(
            tmp_path,
            "class W:\n"
            "    def run(self):\n"
            "        self.result = 1\n"
            "def g():\n"
            "    global other\n",
        ) == []

    def test_local_writes_are_fine(self, tmp_path):
        assert lint_snippet(
            tmp_path,
            "def run(cancel):\n"
            "    local = 1\n"
            "    return local\n",
        ) == []


class TestRL003StrayTracer:
    SOURCE = (
        "from repro.obs import Tracer\n"
        "def f():\n"
        "    return Tracer()\n"
    )

    def test_flagged_inside_library(self, tmp_path):
        violations = lint_snippet(tmp_path, self.SOURCE, in_library=True)
        assert [v.rule for v in violations] == ["RL003"]

    def test_not_flagged_outside_library(self, tmp_path):
        assert lint_snippet(tmp_path, self.SOURCE, in_library=False) == []

    def test_obs_and_cli_are_composition_roots(self, tmp_path):
        for rel in ("src/repro/obs/tracer.py", "src/repro/cli.py"):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(self.SOURCE)
            assert repro_lint.lint_paths([target]) == [], rel


class TestDriver:
    def test_clean_repo_passes(self, capsys):
        exit_code = repro_lint.main(
            [str(REPO_ROOT / p) for p in ("src", "tests", "benchmarks",
                                          "tools")]
        )
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out + captured.err

    def test_violations_exit_1_and_print_locations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(compiled):\n    compiled.b_ub[0] = 1\n")
        exit_code = repro_lint.main([str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert f"{bad}:2: RL001" in captured.out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        exit_code = repro_lint.main([str(tmp_path / "nope.py")])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        violations = repro_lint.lint_paths([bad])
        assert [v.rule for v in violations] == ["RL000"]


def lint_at(tmp_path, relpath: str, source: str):
    """Lint one snippet placed at an exact repo-relative path."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return repro_lint.lint_paths([target])


class TestRL004DirectBackendCall:
    SNIPPET = (
        "from repro.ilp.highs_backend import solve_with_highs\n"
        "def run(tp):\n"
        "    return solve_with_highs(tp)\n"
    )

    def test_flagged_in_library_client_code(self, tmp_path):
        violations = lint_at(
            tmp_path, "src/repro/core/snippet.py", self.SNIPPET
        )
        assert [v.rule for v in violations] == ["RL004"]
        assert violations[0].lineno == 3
        assert "SolveExecutor" in violations[0].message

    def test_all_entry_points_flagged(self, tmp_path):
        names = (
            "solve_with_highs", "solve_with_bnb", "solve_with_simplex",
            "branch_and_bound", "solve_compiled",
        )
        body = "".join(f"    {n}(tp)\n" for n in names)
        violations = lint_at(
            tmp_path, "src/repro/core/snippet.py", f"def f(tp):\n{body}"
        )
        assert len(violations) == len(names)
        assert {v.rule for v in violations} == {"RL004"}

    def test_backend_and_executor_layers_exempt(self, tmp_path):
        # The solver stack itself must call its own entry points.
        for rel in (
            "src/repro/ilp/snippet.py",
            "src/repro/solve/snippet.py",
            "src/repro/core/formulation.py",
        ):
            assert lint_at(tmp_path, rel, self.SNIPPET) == []

    def test_not_flagged_outside_library(self, tmp_path):
        assert lint_at(tmp_path, "scripts/snippet.py", self.SNIPPET) == []

    def test_method_calls_not_flagged(self, tmp_path):
        # Only bare entry-point calls are the smell; attribute calls like
        # tp_model.solve() dispatch through the sanctioned shim.
        source = (
            "def f(tp_model):\n"
            "    return tp_model.solve(backend='highs')\n"
        )
        assert lint_at(tmp_path, "src/repro/core/snippet.py", source) == []

    def test_suppression_comment(self, tmp_path):
        source = (
            "def f(tp):\n"
            "    return solve_with_highs(tp)  # repro-lint: ignore[RL004]\n"
        )
        assert lint_at(tmp_path, "src/repro/core/snippet.py", source) == []


class TestRL005PrivateBuilderImports:
    def test_private_import_from_families_flagged(self, tmp_path):
        violations = lint_at(
            tmp_path,
            "src/repro/solve/snippet.py",
            "from repro.core.families import _build_assignment\n",
        )
        assert [v.rule for v in violations] == ["RL005"]
        assert "_build_assignment" in violations[0].message

    def test_private_import_from_formulation_flagged(self, tmp_path):
        violations = lint_at(
            tmp_path,
            "tests/snippet.py",
            "from repro.core.formulation import _populate_ilp\n",
        )
        assert [v.rule for v in violations] == ["RL005"]

    def test_each_private_alias_flagged_once(self, tmp_path):
        violations = lint_at(
            tmp_path,
            "src/repro/analysis/snippet.py",
            "from repro.core.families import _w_name, _y_name, get_scenario\n",
        )
        assert [v.rule for v in violations] == ["RL005", "RL005"]

    def test_public_imports_are_fine(self, tmp_path):
        assert lint_at(
            tmp_path,
            "src/repro/analysis/snippet.py",
            "from repro.core.families import get_scenario, ScenarioSpec\n"
            "from repro.core.formulation import build_model\n",
        ) == []

    def test_formulation_stack_is_exempt(self, tmp_path):
        # formulation.py consumes the builders' private helpers; the two
        # modules are one stack.
        for rel in (
            "src/repro/core/formulation.py",
            "src/repro/core/families.py",
        ):
            assert lint_at(
                tmp_path, rel,
                "from repro.core.families import _w_name, _y_name\n",
            ) == [], rel

    def test_other_modules_private_names_are_not_this_rules_business(
        self, tmp_path
    ):
        assert lint_at(
            tmp_path,
            "src/repro/core/snippet.py",
            "from repro.solve.cache import _digest\n",
        ) == []

    def test_suppression_comment(self, tmp_path):
        source = (
            "from repro.core.families import _w_name"
            "  # repro-lint: ignore[RL005]\n"
        )
        assert lint_at(tmp_path, "src/repro/core/snippet.py", source) == []
