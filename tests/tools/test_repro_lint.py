"""tools/repro_lint.py is a deprecation shim over repro.staticcheck.

The real rule coverage lives in ``tests/staticcheck/``; here we only
pin the shim's contract: it delegates to the same engine, keeps the
legacy invocation and exit codes working, and announces the migration.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL_PATH = REPO_ROOT / "tools" / "repro_lint.py"


def run_shim(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(TOOL_PATH), *argv],
        capture_output=True, text=True, cwd=cwd,
    )


class TestShimDelegation:
    def test_clean_repo_exits_zero(self):
        proc = run_shim()
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_deprecation_notice_on_stderr(self):
        proc = run_shim()
        assert "deprecated" in proc.stderr
        assert "repro-tp lint" in proc.stderr

    def test_violation_still_flagged_with_legacy_invocation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def patch(compiled, row):\n"
            "    compiled.b_ub[row] = 5.0\n"
        )
        proc = run_shim(str(bad), "--no-baseline")
        assert proc.returncode == 1
        assert "RL001" in proc.stdout

    def test_new_rule_packs_are_live_through_the_shim(self):
        proc = run_shim("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RL001", "RL006", "RL007", "RL008", "RL009"):
            assert rule_id in proc.stdout

    def test_usage_error_exits_two(self, tmp_path):
        proc = run_shim(str(tmp_path / "missing"))
        assert proc.returncode == 2

    def test_importable_without_side_effects(self):
        # Loading the shim as a module (not __main__) must not lint or
        # print — it only re-exports main() with the src bootstrap.
        proc = subprocess.run(
            [sys.executable, "-c",
             "import importlib.util, sys; "
             f"spec = importlib.util.spec_from_file_location"
             f"('repro_lint', {str(TOOL_PATH)!r}); "
             "m = importlib.util.module_from_spec(spec); "
             "sys.modules['repro_lint'] = m; "
             "spec.loader.exec_module(m); "
             "assert callable(m.main)"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == ""
        assert "deprecated" not in proc.stderr
