"""The promtext checker CLI (tools/check_promtext.py).

``tools`` is not a package, so the module is loaded straight from its
file path.  The checker wraps ``repro.obs.validate_promtext``; these
tests pin the CLI contract CI relies on — exit codes, ``--require`` and
per-file problem listings.
"""

import importlib.util
import sys
from pathlib import Path

from repro.obs import MetricsRegistry, render_promtext

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL_PATH = REPO_ROOT / "tools" / "check_promtext.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_promtext", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


check_promtext = _load_tool()


def valid_exposition() -> str:
    registry = MetricsRegistry()
    registry.counter(
        "repro_window_solves_total", "Window solves.", ("backend",)
    ).labels("highs").inc(2)
    registry.histogram(
        "repro_window_solve_seconds", "Wall time.", buckets=(0.1, 1.0)
    ).observe(0.2)
    return render_promtext(registry.snapshot())


class TestCheckPromtext:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(valid_exposition())
        assert check_promtext.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_require_present_metric_passes(self, tmp_path):
        path = tmp_path / "metrics.prom"
        path.write_text(valid_exposition())
        code = check_promtext.main(
            [str(path), "--require", "repro_window_solves_total"]
        )
        assert code == 0

    def test_require_missing_metric_fails(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(valid_exposition())
        code = check_promtext.main(
            [str(path), "--require", "repro_absent_total"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "INVALID" in err
        assert "repro_absent_total" in err

    def test_structurally_broken_file_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.prom"
        path.write_text(
            "# HELP h_seconds h\n# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 1\n'
            "h_seconds_sum 0.5\nh_seconds_count 1\n"
        )
        assert check_promtext.main([str(path)]) == 1
        assert "+Inf" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert check_promtext.main([str(tmp_path / "absent.prom")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_one_bad_file_fails_the_batch(self, tmp_path):
        good = tmp_path / "good.prom"
        good.write_text(valid_exposition())
        bad = tmp_path / "bad.prom"
        bad.write_text("!!! nope\n")
        assert check_promtext.main([str(good), str(bad)]) == 1
