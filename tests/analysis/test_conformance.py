"""Paper-conformance analyzer checks: complete constraint families.

Includes the acceptance scenario of the analyzer: a deliberately
corrupted AR-filter model (dropped uniqueness row, duplicated resource
row, dangling crossing column) must be reported defect by defect, each
with the paper-equation tag it violates.
"""

import pytest

from repro.analysis import (
    Severity,
    analyze_model,
    check_conformance,
    paper_equation_for,
)
from repro.arch import ReconfigurableProcessor
from repro.core import build_model
from repro.core.formulation import FormulationOptions
from repro.taskgraph.library import ar_filter


@pytest.fixture(scope="module")
def processor():
    return ReconfigurableProcessor(
        resource_capacity=400.0,
        memory_capacity=128.0,
        reconfiguration_time=20.0,
        name="xc6264",
    )


def ar_model(processor, d_max=640.0, d_min=0.0, options=None):
    return build_model(ar_filter(), processor, 3, d_max, d_min, options)


def conformance(tp):
    return check_conformance(
        tp.model.compile(),
        tp.graph,
        tp.num_partitions,
        options=tp.options,
        d_min=tp.d_min,
    )


class TestEquationPrefixMap:
    @pytest.mark.parametrize(
        "name,tag",
        [
            ("uniq[T3]", "(1)"),
            ("order[T1,T2,2]", "(2)"),
            ("memory[1]", "(3)"),
            ("w[2,T1,T4]_ge", "(4)-(5)"),
            ("resource[3]", "(6)"),
            ("resource_mult[3]", "(6)"),
            ("pathlat[0,2]", "(7)"),
            ("eta_area_cut", "(8)"),
            ("eta[T6]", "(8)"),
            ("latency_ub", "(9)"),
            ("latency_lb", "(10)"),
            ("Y[T1,2,0]", "(1)-(2)"),
            ("sym[1]", None),
            (None, None),
        ],
    )
    def test_prefixes(self, name, tag):
        assert paper_equation_for(name) == tag


class TestCleanConformance:
    def test_ar_filter_model_is_conformant(self, processor):
        assert conformance(ar_model(processor)) == []

    def test_two_sided_window_checked_when_d_min_positive(self, processor):
        tp = ar_model(processor, d_min=100.0)
        assert conformance(tp) == []

    def test_two_sided_w_rows_checked(self, processor):
        tp = ar_model(
            processor, options=FormulationOptions(two_sided_w=True)
        )
        assert conformance(tp) == []


class TestMissingFamilies:
    def test_dropped_uniqueness_row(self, processor):
        tp = ar_model(processor)
        tp.model.remove_constr("uniq[T3]")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-uniqueness"]
        assert diags[0].paper_eq == "(1)"
        assert "T3" in diags[0].message

    def test_dropped_resource_row(self, processor):
        tp = ar_model(processor)
        tp.model.remove_constr("resource[2]")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-resource-row"]
        assert diags[0].paper_eq == "(6)"

    def test_dropped_crossing_row(self, processor):
        tp = ar_model(processor)
        w_name = next(
            v.name for v in tp.model.variables if v.name.startswith("w[")
        )
        tp.model.remove_constr(f"{w_name}_ge")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-crossing-row"]
        assert diags[0].paper_eq == "(4)-(5)"
        assert diags[0].variables == (w_name,)

    def test_dropped_latency_window(self, processor):
        tp = ar_model(processor)
        tp.model.remove_constr("latency_ub")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-latency-window"]
        assert diags[0].paper_eq == "(9)"

    def test_dropped_eta_sink_row(self, processor):
        tp = ar_model(processor)
        sink = next(iter(tp.graph.sinks()))
        tp.model.remove_constr(f"eta[{sink}]")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-eta-bound"]
        assert diags[0].paper_eq == "(8)"

    def test_duplicated_uniqueness_row(self, processor):
        tp = ar_model(processor)
        uniq = next(
            c for c in tp.model.constraints if c.name == "uniq[T2]"
        )
        tp.model.add_constr((uniq.expr == uniq.rhs).named("uniq[T2]"))
        diags = conformance(tp)
        assert [d.code for d in diags] == ["duplicate-uniqueness"]
        assert diags[0].paper_eq == "(1)"


class TestAcceptanceScenario:
    """ISSUE acceptance: corrupted AR model, three seeded defects."""

    def test_each_defect_reported_with_its_equation(self, processor):
        tp = ar_model(processor)
        # Defect 1: drop the uniqueness row of T3 (equation (1)).
        tp.model.remove_constr("uniq[T3]")
        # Defect 2: duplicate the resource row of partition 2 (eq (6)).
        resource = next(
            c for c in tp.model.constraints if c.name == "resource[2]"
        )
        tp.model.add_constr(
            (resource.expr <= resource.rhs).named("resource[2]_dup")
        )
        # Defect 3: a dangling crossing column (eqs (4)-(5)) — the
        # variable exists but no linearization row constrains it.
        tp.model.add_binary("w[9,T1,T2]")

        report = analyze_model(tp)
        assert not report.ok

        missing_uniq = report.by_code("missing-uniqueness")
        assert len(missing_uniq) == 1
        assert missing_uniq[0].paper_eq == "(1)"
        assert missing_uniq[0].severity is Severity.ERROR

        duplicates = report.by_code("duplicate-row")
        assert any(
            set(d.rows) == {"resource[2]", "resource[2]_dup"}
            and d.paper_eq == "(6)"
            for d in duplicates
        )

        dangling = report.by_code("dangling-column")
        assert any(
            d.variables == ("w[9,T1,T2]",)
            and d.paper_eq == "(4)-(5)"
            and d.severity is Severity.ERROR
            for d in dangling
        )

        crossing = report.by_code("missing-crossing-row")
        assert any(
            d.variables == ("w[9,T1,T2]",) and d.paper_eq == "(4)-(5)"
            for d in crossing
        )


class TestSymmetryFamily:
    """``sym[a,b]`` ordering rows (extension, checked only when enabled)."""

    def _symmetric(self, processor):
        return ar_model(
            processor, options=FormulationOptions(symmetry_breaking=True)
        )

    def test_clean_symmetric_model_is_conformant(self, processor):
        assert conformance(self._symmetric(processor)) == []

    def test_dropped_symmetry_row(self, processor):
        tp = self._symmetric(processor)
        tp.model.remove_constr("sym[T3,T4]")
        diags = conformance(tp)
        assert [d.code for d in diags] == ["missing-symmetry-row"]
        assert diags[0].paper_eq == "ext"
        assert "T3" in diags[0].message and "T4" in diags[0].message

    def test_family_not_required_when_option_off(self, processor):
        # A plain model has no sym rows; without the option the checker
        # must not demand them.
        tp = ar_model(processor)
        assert all(
            not c.name.startswith("sym[") for c in tp.model.constraints
        )
        assert conformance(tp) == []
