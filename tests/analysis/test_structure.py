"""Structural analyzer checks on hand-built ILP models."""

import numpy as np

from repro.analysis import Severity, analyze_compiled, analyze_structure
from repro.ilp import Model, VarType


def clean_model() -> Model:
    m = Model("clean")
    x = m.add_var("x", ub=4, vtype=VarType.INTEGER)
    y = m.add_binary("y")
    m.add_constr(x + y <= 5, name="cap")
    m.add_constr(x - y >= 0, name="floor")
    m.set_objective(x + y, sense="maximize")
    return m


def codes(diags):
    return sorted(d.code for d in diags)


class TestCleanModels:
    def test_clean_model_has_no_findings(self):
        assert analyze_structure(clean_model().compile()) == []

    def test_report_facade(self):
        report = analyze_compiled(clean_model().compile())
        assert report.ok
        assert report.clean
        assert "clean" in report.summary()


class TestVariableChecks:
    def test_contradictory_bounds(self):
        m = clean_model()
        z = m.add_var("z", lb=0.0, ub=5.0)
        m.add_constr(z <= 5, name="zcap")
        z.lb, z.ub = 10.0, 5.0  # simulate post-construction corruption
        diags = analyze_structure(m.compile())
        assert "bounds-contradictory" in codes(diags)
        bad = next(d for d in diags if d.code == "bounds-contradictory")
        assert bad.severity is Severity.ERROR
        assert bad.variables == ("z",)

    def test_binary_domain_violation(self):
        m = clean_model()
        b = m.add_binary("b")
        m.add_constr(b <= 1, name="bcap")
        b.ub = 2.0
        diags = analyze_structure(m.compile())
        assert "binary-domain" in codes(diags)

    def test_dangling_integer_column_is_error(self):
        m = clean_model()
        m.add_binary("unused")
        diags = analyze_structure(m.compile())
        dangling = [d for d in diags if d.code == "dangling-column"]
        assert len(dangling) == 1
        assert dangling[0].severity is Severity.ERROR
        assert dangling[0].variables == ("unused",)

    def test_dangling_objective_column_is_warning(self):
        m = clean_model()
        extra = m.add_var("extra", ub=3.0)
        m.set_objective(extra, sense="maximize")
        diags = analyze_structure(m.compile())
        dangling = [d for d in diags if d.code == "dangling-column"]
        assert len(dangling) == 1
        assert dangling[0].severity is Severity.WARNING


class TestRowChecks:
    def test_trivially_infeasible_le_row(self):
        m = clean_model()
        x = next(v for v in m.variables if v.name == "x")
        m.add_constr(x >= 100, name="impossible")  # x <= 4
        diags = analyze_structure(m.compile())
        assert "row-infeasible" in codes(diags)

    def test_trivially_infeasible_eq_row(self):
        m = clean_model()
        y = next(v for v in m.variables if v.name == "y")
        m.add_constr(y == 7, name="impossible_eq")  # y binary
        diags = analyze_structure(m.compile())
        infeasible = [d for d in diags if d.code == "row-infeasible"]
        assert infeasible and infeasible[0].severity is Severity.ERROR

    def test_duplicate_row(self):
        m = clean_model()
        x = next(v for v in m.variables if v.name == "x")
        y = next(v for v in m.variables if v.name == "y")
        m.add_constr(x + y <= 5, name="cap_dup")
        diags = analyze_structure(m.compile())
        dup = [d for d in diags if d.code == "duplicate-row"]
        assert len(dup) == 1
        assert set(dup[0].rows) == {"cap", "cap_dup"}

    def test_dominated_row(self):
        m = clean_model()
        x = next(v for v in m.variables if v.name == "x")
        y = next(v for v in m.variables if v.name == "y")
        m.add_constr(x + y <= 9, name="cap_loose")
        diags = analyze_structure(m.compile())
        dom = [d for d in diags if d.code == "dominated-row"]
        assert len(dom) == 1
        assert dom[0].rows[0] == "cap_loose"  # the loose one is redundant

    def test_nonunit_logical_coefficient(self):
        m = Model("logical")
        a = m.add_binary("Y[a,1,1]")
        b = m.add_binary("Y[a,2,1]")
        m.add_constr(2 * a + b == 1, name="uniq[a]")
        diags = analyze_structure(m.compile())
        bad = [d for d in diags if d.code == "nonunit-logical-coefficient"]
        assert len(bad) == 1
        assert bad[0].paper_eq == "(1)"

    def test_fractional_rhs_on_integer_row(self):
        m = Model("frac")
        x = m.add_integer("x", ub=10)
        m.add_constr(x <= 4.5, name="frac_cap")
        diags = analyze_structure(m.compile())
        frac = [d for d in diags if d.code == "fractional-rhs"]
        assert len(frac) == 1
        assert frac[0].severity is Severity.WARNING
        assert "floored to 4" in frac[0].message

    def test_fractional_rhs_on_integer_equality_is_infeasible(self):
        m = Model("frac_eq")
        x = m.add_integer("x", ub=10)
        m.add_constr(x == 4.5, name="frac_link")
        diags = analyze_structure(m.compile())
        assert "row-infeasible" in codes(diags)

    def test_fractional_rhs_skipped_with_continuous_support(self):
        m = Model("frac_cont")
        x = m.add_integer("x", ub=10)
        z = m.add_var("z", ub=10.0)
        m.add_constr(x + z <= 4.5, name="mixed_cap")
        assert analyze_structure(m.compile()) == []

    def test_coefficient_spread_warning(self):
        m = Model("spread")
        x = m.add_var("x", ub=1.0)
        y = m.add_var("y", ub=1.0)
        m.add_constr(1e-6 * x + 1e6 * y <= 1, name="wide")
        diags = analyze_structure(m.compile())
        spread = [d for d in diags if d.code == "coefficient-spread"]
        assert len(spread) == 1
        assert spread[0].severity is Severity.WARNING


class TestReportOrderingAndSerialization:
    def test_errors_sort_before_warnings(self):
        m = clean_model()
        x = next(v for v in m.variables if v.name == "x")
        y = next(v for v in m.variables if v.name == "y")
        m.add_constr(x + y <= 9, name="cap_loose")   # warning
        m.add_constr(x >= 100, name="impossible")     # error
        report = analyze_compiled(m.compile())
        severities = [d.severity for d in report.diagnostics]
        assert severities == sorted(severities, key=lambda s: s.rank)
        assert not report.ok
        assert not report.clean

    def test_to_dict_round_trips_counts(self):
        m = clean_model()
        m.add_binary("unused")
        report = analyze_compiled(m.compile())
        payload = report.to_dict()
        assert payload["errors"] == len(report.errors)
        assert payload["diagnostics"][0]["code"] == "dangling-column"

    def test_render_mentions_paper_eq(self):
        m = Model("tagged")
        a = m.add_binary("Y[a,1,1]")
        m.add_constr(2 * a == 1, name="uniq[a]")
        report = analyze_compiled(m.compile())
        assert "(1)" in report.render()


class TestFrozenInputTolerated:
    def test_analyzer_never_writes_its_input(self):
        compiled = clean_model().compile()
        before = {
            name: np.array(getattr(compiled, name))
            for name in ("b_ub", "ub_data", "lb", "ub")
        }
        analyze_structure(compiled)
        for name, snapshot in before.items():
            assert np.array_equal(getattr(compiled, name), snapshot)
