"""Registry-driven conformance: checks derive from the scenario spec.

:func:`repro.analysis.conformance.check_conformance` no longer carries
a hand-maintained list of checks — it walks the registered scenario's
families and dispatches each family's named checker with the family's
own paper-equation tags.  These tests close the loop for **every**
registered scenario: each family that names a checker is corrupted
(a row dropped from its span) and the emitted diagnostic must carry a
tag from that family's ``paper_eq``; the untouched model must be
conformant.
"""

from __future__ import annotations

import pytest

from repro.analysis.conformance import CHECKERS, check_conformance
from repro.arch import ReconfigurableProcessor
from repro.core import FormulationOptions, bounds, build_model, get_scenario, scenario_ids
from repro.taskgraph.library import ar_filter

#: One representative row name per checker id, as a function of the
#: model — used to corrupt exactly the family under test.
ROW_PICKERS = {
    "uniqueness": lambda tp: "uniq[T3]",
    "crossing": lambda tp: next(
        c.name
        for c in tp.model.constraints
        if c.name and c.name.startswith("w[") and c.name.endswith("_ge")
    ),
    "resource": lambda tp: next(
        c.name
        for c in tp.model.constraints
        if c.name and c.name.startswith("resource[")
    ),
    "eta": lambda tp: next(
        c.name
        for c in tp.model.constraints
        if c.name and c.name.startswith("eta[")
    ),
    "latency_window": lambda tp: "latency_ub",
    "symmetry": lambda tp: next(
        c.name
        for c in tp.model.constraints
        if c.name and c.name.startswith("sym[")
    ),
}


def build(scenario_id: str) -> object:
    graph = ar_filter()
    processor = ReconfigurableProcessor(
        resource_capacity=800.0,
        memory_capacity=256.0,
        reconfiguration_time=20.0,
        name="conformance-device",
    )
    n = 3
    options = FormulationOptions(
        scenario=scenario_id, symmetry_breaking=True
    )
    d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
    return build_model(graph, processor, n, d_max, 0.0, options)


def conformance(tp):
    return check_conformance(
        tp.model.compile(),
        tp.graph,
        tp.num_partitions,
        options=tp.options,
        d_min=tp.d_min,
    )


def checkable_families():
    for scenario_id in scenario_ids():
        for family in get_scenario(scenario_id).families:
            if family.conformance is not None:
                yield pytest.param(
                    scenario_id, family.id,
                    id=f"{scenario_id}/{family.id}",
                )


class TestRegistryCoverage:
    def test_every_named_checker_exists(self):
        for scenario_id in scenario_ids():
            for family in get_scenario(scenario_id).families:
                if family.conformance is not None:
                    assert family.conformance in CHECKERS, (
                        scenario_id, family.id, family.conformance,
                    )

    def test_every_checked_family_declares_equation_tags(self):
        for scenario_id in scenario_ids():
            for family in get_scenario(scenario_id).families:
                if family.conformance is not None:
                    assert family.paper_eq, (scenario_id, family.id)

    @pytest.mark.parametrize("scenario_id", sorted(scenario_ids()))
    def test_clean_model_is_conformant(self, scenario_id):
        tp = build(scenario_id)
        assert conformance(tp) == []


class TestCorruptionPerFamily:
    @pytest.mark.parametrize("scenario_id,family_id", checkable_families())
    def test_dropped_row_reports_the_familys_equation(
        self, scenario_id, family_id
    ):
        scenario = get_scenario(scenario_id)
        family = scenario.family(family_id)
        tp = build(scenario_id)
        tp.model.remove_constr(ROW_PICKERS[family.conformance](tp))
        diags = conformance(tp)
        assert diags, f"{scenario_id}/{family_id}: corruption not detected"
        assert all(d.paper_eq in family.paper_eq for d in diags), [
            (d.code, d.paper_eq) for d in diags
        ]
