"""Packaging sanity: every name each package exports must resolve.

Guards against stale ``__all__`` entries and accidental removal of
public API — the kind of breakage editable installs hide until release.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.ilp",
    "repro.taskgraph",
    "repro.hls",
    "repro.arch",
    "repro.core",
    "repro.experiments",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name!r} but the attribute "
            "is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    entries = list(package.__all__)
    assert len(entries) == len(set(entries)), f"{package_name}: duplicates"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_cli_module_importable_without_side_effects():
    import repro.cli

    parser = repro.cli.build_parser()
    assert parser.prog == "repro-tp"


def test_quickstart_snippet_from_readme():
    """The README quickstart must stay runnable (tiny budget variant)."""
    from repro import (
        PartitionerConfig,
        RefinementConfig,
        SolverSettings,
        TemporalPartitioner,
    )
    from repro.arch import time_multiplexed
    from repro.taskgraph import ar_filter

    partitioner = TemporalPartitioner(
        time_multiplexed(resource_capacity=400, memory_capacity=128),
        PartitionerConfig(
            search=RefinementConfig(delta=25.0, time_budget=30.0),
            solver=SolverSettings(time_limit=10.0),
        ),
    )
    outcome = partitioner.partition(ar_filter())
    assert outcome.feasible
