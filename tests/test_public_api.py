"""Packaging sanity: every name each package exports must resolve.

Guards against stale ``__all__`` entries and accidental removal of
public API — the kind of breakage editable installs hide until release.
Also pins the redesigned entry points: ``solve(PartitionRequest(...))``
is the one documented path, ``partition()`` warns, the
:class:`SolverSettings` presets match hand-built settings, and a request
round-trips through the service to a versioned outcome dict.
"""

import dataclasses
import importlib
import warnings

import pytest

PACKAGES = [
    "repro",
    "repro.ilp",
    "repro.taskgraph",
    "repro.hls",
    "repro.arch",
    "repro.core",
    "repro.solve",
    "repro.service",
    "repro.obs",
    "repro.experiments",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name!r} but the attribute "
            "is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    entries = list(package.__all__)
    assert len(entries) == len(set(entries)), f"{package_name}: duplicates"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_service_entry_points_are_top_level():
    import repro

    for name in (
        "PartitionService",
        "PartitionRequest",
        "DiskSolveCache",
        "OUTCOME_SCHEMA_VERSION",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_cli_module_importable_without_side_effects():
    import repro.cli

    parser = repro.cli.build_parser()
    assert parser.prog == "repro-tp"


def test_cli_has_service_subcommands():
    import repro.cli

    parser = repro.cli.build_parser()
    text = parser.format_help()
    assert "batch" in text
    assert "serve" in text


def test_quickstart_snippet_from_readme():
    """The README quickstart must stay runnable (tiny budget variant)."""
    from repro import (
        PartitionerConfig,
        PartitionRequest,
        RefinementConfig,
        SolverSettings,
        TemporalPartitioner,
    )
    from repro.arch import time_multiplexed
    from repro.taskgraph import ar_filter

    partitioner = TemporalPartitioner(
        time_multiplexed(resource_capacity=400, memory_capacity=128),
        PartitionerConfig(
            search=RefinementConfig(delta=25.0, time_budget=30.0),
            solver=SolverSettings(time_limit=10.0),
        ),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        outcome = partitioner.solve(PartitionRequest(graph=ar_filter()))
    assert outcome.feasible


class TestDeprecatedPartitionMethod:
    def test_partition_warns_and_forwards_to_solve(self, ar_device):
        from repro import (
            PartitionerConfig,
            RefinementConfig,
            SolverSettings,
            TemporalPartitioner,
        )
        from repro.taskgraph import ar_filter

        partitioner = TemporalPartitioner(
            ar_device,
            PartitionerConfig(
                search=RefinementConfig(delta=25.0, time_budget=30.0),
                solver=SolverSettings(time_limit=10.0),
            ),
        )
        with pytest.warns(DeprecationWarning, match="solve"):
            outcome = partitioner.partition(ar_filter())
        assert outcome.feasible


class TestPartitionRequest:
    def test_fields_are_keyword_only(self, chain_graph):
        from repro import PartitionRequest

        with pytest.raises(TypeError):
            PartitionRequest(chain_graph)  # positional graph rejected

    def test_replace_derives_variants(self, chain_graph, ar_device):
        from repro import PartitionRequest

        base = PartitionRequest(graph=chain_graph)
        derived = base.replace(processor=ar_device)
        assert derived.processor is ar_device
        assert derived.graph is base.graph
        assert base.processor is None  # original untouched

    def test_requests_are_frozen(self, chain_graph):
        from repro import PartitionRequest

        request = PartitionRequest(graph=chain_graph)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.graph = None


class TestSolverSettingsPresets:
    """Presets are field-identical to hand-built settings (the full
    property test lives in tests/solve/test_presets.py)."""

    def test_presets_exist_and_build_plain_settings(self):
        from repro import SolverSettings

        for preset in ("fast", "paper_exact", "debug"):
            settings = getattr(SolverSettings, preset)()
            assert isinstance(settings, SolverSettings)

    def test_fast_equals_hand_built(self):
        from repro import SolverSettings

        expected = SolverSettings(
            portfolio=("highs", "bnb"),
            incumbent_reuse=True,
            primal_first=True,
            reuse_basis=True,
            persistent_cuts=True,
            symmetry_breaking=True,
        )
        assert SolverSettings.fast() == expected


class TestOutcomeSchema:
    def test_outcome_dict_carries_schema_version(
        self, chain_graph, ar_device, fast_settings
    ):
        from repro import (
            OUTCOME_SCHEMA_VERSION,
            PartitionerConfig,
            PartitionRequest,
            TemporalPartitioner,
        )

        outcome = TemporalPartitioner(
            ar_device, PartitionerConfig(solver=fast_settings)
        ).solve(PartitionRequest(graph=chain_graph))
        payload = outcome.to_dict()
        assert payload["schema_version"] == OUTCOME_SCHEMA_VERSION


class TestRequestServiceOutcomeRoundTrip:
    def test_ar_filter_through_the_service(self, ar_device):
        """Request -> PartitionService -> outcome -> dict -> outcome."""
        from repro import (
            PartitionerConfig,
            PartitionRequest,
            PartitionService,
            RefinementConfig,
            SolverSettings,
        )
        from repro.core.partitioner import PartitioningOutcome
        from repro.taskgraph import ar_filter

        graph = ar_filter()
        request = PartitionRequest(
            graph=graph,
            config=PartitionerConfig(
                # Keep the explored bounds small: N <= 3.
                search=RefinementConfig(time_budget=60.0),
                solver=SolverSettings(time_limit=10.0),
            ),
        )
        with PartitionService(processor=ar_device, max_workers=0) as service:
            outcome = service.submit(request).result(timeout=120)
        assert outcome.feasible
        assert outcome.partition_range.start <= 3

        payload = outcome.to_dict(include_trace=True)
        restored = PartitioningOutcome.from_dict(payload, graph=graph)
        assert restored.feasible
        assert restored.total_latency == outcome.total_latency
        assert (
            restored.design.as_assignment() == outcome.design.as_assignment()
        )
        assert len(restored.trace.records) == len(outcome.trace.records)
