class Runner:
    def attempt(self, model, cancel):
        if cancel.is_set():
            return None
        return model
