def patch_window(compiled, row, value):
    compiled.b_ub[row] = value
    return compiled
