class Runner:
    def attempt(self, model, cancel):
        self.last_status = "running"
        return model
