from repro.obs import Tracer


def trace_solve(settings):
    return Tracer()
