from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}


def _shard(payload):
    _RESULTS[payload["n"]] = payload["latency"]
    return payload["n"]


def run(payloads):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_shard, p) for p in payloads]
    return [f.result() for f in futures]
