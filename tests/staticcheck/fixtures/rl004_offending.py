from repro.ilp import solve_with_highs


def solve_window(compiled):
    return solve_with_highs(compiled)
