import asyncio


class Facade:
    async def solve(self, request):
        await asyncio.sleep(0.1)
        return request
