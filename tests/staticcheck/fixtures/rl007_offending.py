import time


class Facade:
    async def solve(self, request):
        time.sleep(0.1)
        return request
