def patch_window(compiled, b_ub):
    return compiled.with_b_ub(b_ub)
