from repro.core.families import ConstraintFamily


def _build_latency(ctx):
    print("rows:", ctx.num_partitions)


FAMILY = ConstraintFamily(
    id="latency_window", build=_build_latency, window_dependent=True
)
