from repro.obs.tracer import as_tracer


def trace_solve(settings):
    return as_tracer(settings.tracer)
