from repro.solve.portfolio import race_backends

_LAST_WINNER = None


def _attempt_highs(stop_event):
    global _LAST_WINNER
    _LAST_WINNER = "highs"
    return None


def solve(model):
    return race_backends([("highs", _attempt_highs)])
