import time


def fingerprint(model):
    return (model.name, time.perf_counter())
