def fingerprint(model):
    names = {row.name for row in model.rows}
    return tuple(sorted(names))
