def solve_window(executor, template, d_max):
    return executor.solve_window(template, d_max)
