from repro.core.families import ConstraintFamily


def _build_latency(ctx):
    for p in ctx.partitions:
        ctx.model.add_constraint(ctx.d[p] <= ctx.d_max)


FAMILY = ConstraintFamily(
    id="latency_window", build=_build_latency, window_dependent=True
)
