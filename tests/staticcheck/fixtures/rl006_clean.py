from concurrent.futures import ProcessPoolExecutor


def _shard(payload):
    return {"n": payload["n"], "latency": payload["latency"]}


def run(payloads):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_shard, p) for p in payloads]
    return [f.result() for f in futures]
