from repro.core.families import ConstraintFamily, register_scenario

__all__ = ["ConstraintFamily", "register_scenario"]
