from repro.core.families import _w_name


def crossing_name(p, source, sink):
    return _w_name(p, source, sink)
