"""Unit tests for the symbol-table/scope engine."""

import ast

from repro.staticcheck.scopes import ModuleScopes


def scopes_for(source: str) -> ModuleScopes:
    return ModuleScopes(ast.parse(source))


def name_nodes(tree: ast.AST, ident: str) -> list[ast.Name]:
    return [
        node for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id == ident
    ]


class TestLexicalResolution:
    def test_local_shadows_module(self):
        scopes = scopes_for(
            "x = 1\n"
            "def f():\n"
            "    x = 2\n"
            "    return x\n"
        )
        ret = name_nodes(scopes.tree, "x")[-1]
        binding = scopes.resolve(ret)
        assert binding is not None and binding.scope.kind == "function"

    def test_global_declaration_reroutes_to_module(self):
        scopes = scopes_for(
            "x = 1\n"
            "def f():\n"
            "    global x\n"
            "    x = 2\n"
        )
        write = name_nodes(scopes.tree, "x")[-1]
        binding = scopes.resolve(write)
        assert binding is not None and binding.scope.kind == "module"

    def test_class_scope_is_skipped_by_nested_functions(self):
        scopes = scopes_for(
            "x = 'module'\n"
            "class C:\n"
            "    x = 'class'\n"
            "    def m(self):\n"
            "        return x\n"
        )
        ret = name_nodes(scopes.tree, "x")[-1]
        binding = scopes.resolve(ret)
        assert binding is not None and binding.scope.kind == "module"

    def test_comprehension_has_its_own_scope(self):
        scopes = scopes_for(
            "def f(rows):\n"
            "    return [row for row in rows]\n"
        )
        inner = name_nodes(scopes.tree, "row")[-1]
        binding = scopes.resolve(inner)
        assert binding is not None
        assert binding.scope.kind == "comprehension"

    def test_unbound_name_resolves_to_none(self):
        scopes = scopes_for("def f():\n    return undefined_thing\n")
        node = name_nodes(scopes.tree, "undefined_thing")[0]
        assert scopes.resolve(node) is None


class TestQualnameResolution:
    def test_import_alias(self):
        scopes = scopes_for(
            "import numpy as np\n"
            "def f(a):\n"
            "    return np.sort(a)\n"
        )
        call = next(
            n for n in ast.walk(scopes.tree) if isinstance(n, ast.Call)
        )
        assert scopes.qualname(call.func) == "numpy.sort"

    def test_from_import(self):
        scopes = scopes_for(
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()\n"
        )
        call = next(
            n for n in ast.walk(scopes.tree) if isinstance(n, ast.Call)
        )
        assert scopes.qualname(call.func) == "time.perf_counter"

    def test_builtin_name_is_itself(self):
        scopes = scopes_for("def f(path):\n    return open(path)\n")
        call = next(
            n for n in ast.walk(scopes.tree) if isinstance(n, ast.Call)
        )
        assert scopes.qualname(call.func) == "open"

    def test_locally_assigned_name_is_opaque(self):
        scopes = scopes_for(
            "def f():\n"
            "    open = lambda p: p\n"
            "    return open('x')\n"
        )
        call = next(
            n for n in ast.walk(scopes.tree)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        )
        assert scopes.qualname(call.func) is None
