"""Emitter formats, the baseline file, and the lint CLI exit codes."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import (
    Baseline,
    check_sources,
    render_json,
    render_sarif,
    render_text,
    rule_ids,
)
from repro.staticcheck.cli import main as lint_main

REPO = Path(__file__).resolve().parents[2]

OFFENDING = (
    "def patch(compiled, row):\n"
    "    compiled.b_ub[row] = 0.0\n"
)
SUPPRESSED = OFFENDING.replace("= 0.0", "= 0.0  # repro-lint: ignore[RL001]")


def lint(source: str, baseline=None):
    return check_sources(
        [("src/repro/solve/patch.py", source)], baseline=baseline
    )


class TestTextEmitter:
    def test_renders_path_line_rule(self):
        result = lint(OFFENDING)
        text = render_text(result.findings, result.files_checked)
        assert "src/repro/solve/patch.py:2" in text
        assert "RL001" in text
        assert "1 file(s) checked: 1 finding(s)" in text

    def test_suppressed_hidden_unless_verbose(self):
        result = lint(SUPPRESSED)
        quiet = render_text(result.findings, result.files_checked)
        loud = render_text(result.findings, result.files_checked,
                           verbose=True)
        assert "RL001" not in quiet.splitlines()[0]
        assert "1 suppressed" in quiet
        assert any("RL001" in line for line in loud.splitlines())


class TestJsonEmitter:
    def test_parses_and_carries_summary(self):
        result = lint(OFFENDING)
        payload = json.loads(render_json(result.findings,
                                         result.files_checked))
        assert payload["version"] == 1
        assert payload["summary"]["active"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL001"
        assert finding["line"] == 2
        assert finding["path"] == "src/repro/solve/patch.py"


class TestSarifEmitter:
    def test_valid_sarif_2_1_0(self):
        result = lint(OFFENDING)
        log = json.loads(render_sarif(result.findings,
                                      result.files_checked))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        catalog = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(rule_ids()) <= catalog
        (res,) = run["results"]
        assert res["ruleId"] == "RL001"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/solve/patch.py"
        assert loc["region"]["startLine"] == 2
        assert "suppressions" not in res

    def test_suppressed_findings_marked_in_source(self):
        result = lint(SUPPRESSED)
        log = json.loads(render_sarif(result.findings,
                                      result.files_checked))
        (res,) = log["runs"][0]["results"]
        assert res["suppressions"] == [{"kind": "inSource"}]

    def test_baselined_findings_marked_external(self):
        baseline = Baseline.from_findings(lint(OFFENDING).active)
        result = lint(OFFENDING, baseline=baseline)
        log = json.loads(render_sarif(result.findings,
                                      result.files_checked))
        (res,) = log["runs"][0]["results"]
        assert res["suppressions"][0]["kind"] == "external"


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(lint(OFFENDING).active)
        target = tmp_path / "baseline.json"
        baseline.write(target)
        loaded = Baseline.load(target)
        assert lint(OFFENDING, baseline=loaded).active == []

    def test_keys_are_line_number_free(self, tmp_path):
        baseline = Baseline.from_findings(lint(OFFENDING).active)
        shifted = "import os  # noqa\n\n\n" + OFFENDING
        result = check_sources(
            [("src/repro/solve/patch.py", shifted)], baseline=baseline
        )
        assert result.active == []
        assert len(result.baselined) == 1

    def test_rejects_unknown_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestCliExitCodes:
    def _write_tree(self, tmp_path, source):
        pkg = tmp_path / "src"
        pkg.mkdir()
        module = pkg / "patch.py"
        module.write_text(source)
        return module

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, "X = 1\n")
        assert lint_main([str(module), "--no-baseline"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, OFFENDING)
        assert lint_main([str(module), "--no-baseline"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert lint_main([str(missing)]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, "X = 1\n")
        assert lint_main([str(module), "--rules", "RL999"]) == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, OFFENDING)
        baseline = tmp_path / "baseline.json"
        assert lint_main([
            str(module), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.exists()
        assert lint_main([
            str(module), "--baseline", str(baseline),
        ]) == 0

    def test_list_rules_catalogs_all_nine(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_json_report_to_file(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, OFFENDING)
        out_file = tmp_path / "report.json"
        code = lint_main([
            str(module), "--no-baseline", "--format", "json",
            "-o", str(out_file),
        ])
        assert code == 1
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["active"] == 1

    def test_syntax_error_reported_as_rl000(self, tmp_path, capsys):
        module = self._write_tree(tmp_path, "def broken(:\n")
        assert lint_main([str(module), "--no-baseline"]) == 1
        assert "RL000" in capsys.readouterr().out


class TestReproTpIntegration:
    """``repro-tp lint`` is wired as a first-class subcommand."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *argv],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_repo_lints_clean_via_subcommand(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_sarif_output_is_valid_json(self):
        proc = self._run("--format", "sarif")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        log = json.loads(proc.stdout)
        assert log["version"] == "2.1.0"
