"""Self-tests over the real library sources.

The acceptance bar from the issue: the analyzer must catch the two
canonical regressions when they are introduced into the actual repo
modules —

* deleting the ``writeable = False`` freeze in ``ilp/compile.py``
  (RL008: fingerprint-affecting modules must freeze compiled arrays);
* adding a ``time.sleep`` to the async request path in
  ``service/facade.py`` (RL007: no blocking calls in async bodies).

Both run the *mutated* source under its real path via
:func:`check_sources`, so the path-scoped rules see the module exactly
as a repo-wide run would.
"""

from pathlib import Path

import pytest

from repro.staticcheck import check_sources

REPO = Path(__file__).resolve().parents[2]
COMPILE_PATH = "src/repro/ilp/compile.py"
FACADE_PATH = "src/repro/service/facade.py"

FREEZE_LINE = "    array.flags.writeable = False\n"
SLEEP_ANCHOR = '        """Await one request\'s outcome."""\n'


def read(path: str) -> str:
    return (REPO / path).read_text()


class TestFreezeDeletion:
    def test_pristine_compile_module_is_clean(self):
        result = check_sources([(COMPILE_PATH, read(COMPILE_PATH))])
        assert result.active == []

    def test_deleting_the_freeze_is_caught(self):
        source = read(COMPILE_PATH)
        assert FREEZE_LINE in source, "freeze site moved; update test"
        mutated = source.replace(FREEZE_LINE, "")
        result = check_sources([(COMPILE_PATH, mutated)])
        rules = {f.rule for f in result.active}
        assert "RL008" in rules
        finding = next(f for f in result.active if f.rule == "RL008")
        assert finding.symbol == "CompiledModel"
        assert "writeable" in finding.message or "freeze" in finding.message


class TestAsyncBlockingCall:
    def test_pristine_facade_has_no_active_findings(self):
        result = check_sources([(FACADE_PATH, read(FACADE_PATH))])
        assert result.active == []

    def test_time_sleep_in_async_solve_is_caught(self):
        source = read(FACADE_PATH)
        assert SLEEP_ANCHOR in source, "solve() docstring moved; update test"
        mutated = source.replace(
            SLEEP_ANCHOR, SLEEP_ANCHOR + "        time.sleep(0.1)\n"
        )
        result = check_sources([(FACADE_PATH, mutated)])
        findings = [f for f in result.active if f.rule == "RL007"]
        assert findings, "time.sleep in async def solve not caught"
        assert findings[0].symbol == "PartitionService.solve"
        assert "time.sleep" in findings[0].message


class TestRepoWideGate:
    """The committed tree must lint clean — the same gate CI enforces."""

    @pytest.fixture(scope="class")
    def result(self):
        import os

        cwd = os.getcwd()
        os.chdir(REPO)
        try:
            from repro.staticcheck import check_paths

            yield check_paths()
        finally:
            os.chdir(cwd)

    def test_no_active_findings(self, result):
        assert result.active == [], [f.render() for f in result.active]

    def test_known_suppressions_are_tracked_not_dropped(self, result):
        # The facade's composition-root Tracer is suppressed in source;
        # it must surface as suppressed, proving the sweep sees it.
        assert any(
            f.rule == "RL003" and f.path.endswith("service/facade.py")
            and f.suppressed
            for f in result.findings
        )

    def test_sweep_covers_the_whole_tree(self, result):
        assert result.files_checked > 50
