"""Suppression-span regressions (satellite 1).

``# repro-lint: ignore[RLxxx]`` must be honored anywhere in the
logical span of the construct it annotates:

* on a decorator line of a ``def``/``class`` (the span runs from the
  first decorator through the line before the first body statement);
* on any physical line of a multi-line simple statement.

The legacy tools/repro_lint.py only matched the comment on the exact
line of the finding, which silently dropped suppressions written on
decorators or on continuation lines.
"""

from repro.staticcheck import check_sources


def lint(source: str, path: str = "src/repro/solve/helper.py"):
    return check_sources([(path, source)])


def findings_by_state(result):
    return (
        [f for f in result.findings if f.active],
        [f for f in result.findings if f.suppressed],
    )


class TestDecoratorLineSuppression:
    # The finding sits on the ``def`` line (a default-argument Tracer),
    # the suppression on the decorator line above it: the header span
    # (decorators through signature) is one suppression unit.
    SOURCE = (
        "import functools\n"
        "from repro.obs import Tracer\n"
        "\n"
        "\n"
        "@functools.lru_cache(maxsize=1)  "
        "# repro-lint: ignore[RL003]\n"
        "def traced(tracer=Tracer()):\n"
        "    return tracer\n"
    )

    def test_comment_on_decorator_suppresses_header_finding(self):
        active, suppressed = findings_by_state(lint(self.SOURCE))
        assert active == []
        assert [f.rule for f in suppressed] == ["RL003"]

    def test_without_comment_the_finding_is_active(self):
        bare = self.SOURCE.replace("  # repro-lint: ignore[RL003]", "")
        active, _ = findings_by_state(lint(bare))
        assert [f.rule for f in active] == ["RL003"]

    def test_decorator_comment_does_not_silence_the_body(self):
        # The header span stops before the first body statement — a
        # decorator comment must not blanket the function body.
        source = (
            "import functools\n"
            "from repro.obs import Tracer\n"
            "\n"
            "\n"
            "@functools.lru_cache(maxsize=1)  "
            "# repro-lint: ignore[RL003]\n"
            "def shared_tracer():\n"
            "    return Tracer()\n"
        )
        active, _ = findings_by_state(lint(source))
        assert [f.rule for f in active] == ["RL003"]


class TestMultiLineStatementSuppression:
    def test_comment_on_any_continuation_line_suppresses(self):
        source = (
            "def patch(compiled, rows, values):\n"
            "    compiled.b_ub[\n"
            "        rows  # repro-lint: ignore[RL001]\n"
            "    ] = values\n"
        )
        active, suppressed = findings_by_state(lint(source))
        assert active == []
        assert [f.rule for f in suppressed] == ["RL001"]

    def test_comment_on_closing_line_suppresses(self):
        source = (
            "def patch(compiled, rows, values):\n"
            "    compiled.b_ub[\n"
            "        rows\n"
            "    ] = values  # repro-lint: ignore[RL001]\n"
        )
        active, suppressed = findings_by_state(lint(source))
        assert active == []
        assert [f.rule for f in suppressed] == ["RL001"]


class TestSuppressionSemantics:
    def test_bare_ignore_suppresses_every_rule(self):
        source = (
            "def patch(compiled, row):\n"
            "    compiled.b_ub[row] = 0.0  # repro-lint: ignore\n"
        )
        active, suppressed = findings_by_state(lint(source))
        assert active == []
        assert suppressed

    def test_wrong_code_does_not_suppress(self):
        source = (
            "def patch(compiled, row):\n"
            "    compiled.b_ub[row] = 0.0  # repro-lint: ignore[RL999]\n"
        )
        active, _ = findings_by_state(lint(source))
        assert [f.rule for f in active] == ["RL001"]

    def test_multiple_codes_in_one_comment(self):
        source = (
            "def patch(compiled, row):\n"
            "    compiled.b_ub[row] = 0.0  "
            "# repro-lint: ignore[RL001, RL002]\n"
        )
        active, suppressed = findings_by_state(lint(source))
        assert active == []
        assert [f.rule for f in suppressed] == ["RL001"]

    def test_comment_on_unrelated_line_does_not_leak(self):
        source = (
            "def patch(compiled, row):\n"
            "    x = 1  # repro-lint: ignore[RL001]\n"
            "    compiled.b_ub[row] = x\n"
        )
        active, _ = findings_by_state(lint(source))
        assert [f.rule for f in active] == ["RL001"]
