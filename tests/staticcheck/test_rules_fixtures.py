"""Fixture-driven rule coverage: one offending + one clean snippet per
rule (RL001–RL009), asserting exact rule id and line, and that inline
suppression and the baseline each silence the finding.

Fixtures live in ``tests/staticcheck/fixtures/`` and are linted under
*virtual* display paths (via :func:`repro.staticcheck.check_sources`)
so path-scoped rules see them as the library modules they imitate.
The fixtures directory itself is excluded from repo-wide runs —
the offending halves are test vectors, not code.
"""

from pathlib import Path

import pytest

from repro.staticcheck import Baseline, check_sources

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture stem, virtual display path, expected line of the
#: first finding in the offending half).
CASES = {
    "RL001": ("rl001", "src/repro/solve/patch.py", 2),
    "RL002": ("rl002", "src/repro/solve/attempts.py", 3),
    "RL003": ("rl003", "src/repro/solve/helper.py", 5),
    "RL004": ("rl004", "src/repro/core/helper.py", 5),
    "RL005": ("rl005", "src/repro/analysis/helper.py", 1),
    "RL006": ("rl006", "src/repro/service/shards.py", 7),
    "RL007": ("rl007", "src/repro/service/facade_helper.py", 6),
    "RL008": ("rl008", "src/repro/solve/fingerprint.py", 5),
    "RL009": ("rl009", "src/repro/core/slotted.py", 5),
}


def read_fixture(name: str) -> str:
    return (FIXTURES / name).read_text()


def lint(display_path: str, source: str, baseline=None):
    return check_sources([(display_path, source)], baseline=baseline)


@pytest.mark.parametrize("rule_id", sorted(CASES))
class TestFixturePairs:
    def test_offending_fires_with_exact_id_and_line(self, rule_id):
        stem, display, line = CASES[rule_id]
        result = lint(display, read_fixture(f"{stem}_offending.py"))
        active = result.active
        assert active, f"{rule_id} offending fixture produced no finding"
        assert {f.rule for f in active} == {rule_id}
        assert min(f.line for f in active) == line
        assert all(f.path == display for f in active)

    def test_clean_twin_is_silent(self, rule_id):
        stem, display, _ = CASES[rule_id]
        result = lint(display, read_fixture(f"{stem}_clean.py"))
        assert result.active == [], [f.render() for f in result.active]

    def test_inline_suppression_silences(self, rule_id):
        stem, display, line = CASES[rule_id]
        source = read_fixture(f"{stem}_offending.py")
        lines = source.splitlines()
        lines[line - 1] += f"  # repro-lint: ignore[{rule_id}]"
        result = lint(display, "\n".join(lines) + "\n")
        assert all(
            f.suppressed for f in result.findings if f.line == line
        ), [f.render() for f in result.findings]
        assert not any(
            f.active and f.line == line for f in result.findings
        )

    def test_baseline_silences(self, rule_id):
        stem, display, _ = CASES[rule_id]
        source = read_fixture(f"{stem}_offending.py")
        first = lint(display, source)
        baseline = Baseline.from_findings(first.active)
        second = lint(display, source, baseline=baseline)
        assert second.active == []
        assert len(second.baselined) == len(first.active)

    def test_offending_symbol_recorded(self, rule_id):
        if rule_id == "RL005":
            pytest.skip("RL005 fires on a module-level import")
        stem, display, _ = CASES[rule_id]
        result = lint(display, read_fixture(f"{stem}_offending.py"))
        # Every other fixture violation happens inside a named definition.
        assert all(f.symbol for f in result.active)


class TestTightenedWorkerDetection:
    """The RL002 satellite: the legacy heuristic (a parameter literally
    named ``cancel``) false-negatives on functions raced through
    ``race_backends``; the symbol-table detection catches them."""

    def test_old_heuristic_false_negative_is_caught(self):
        source = read_fixture("rl002_race_offending.py")
        result = lint("src/repro/solve/attempts.py", source)
        assert [f.rule for f in result.active] == ["RL002"]
        assert result.active[0].line == 7  # the ``global`` declaration
        assert "raced by the portfolio" in result.active[0].message

    def test_legacy_cancel_marker_still_works(self):
        result = lint(
            "src/repro/solve/attempts.py",
            read_fixture("rl002_offending.py"),
        )
        assert [f.rule for f in result.active] == ["RL002"]
        assert "parameter 'cancel'" in result.active[0].message

    def test_portfolio_threadpool_submission_is_recognized(self):
        source = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "\n"
            "def _attempt(model):\n"
            "    global _BEST\n"
            "    return model\n"
            "\n"
            "def race(models):\n"
            "    pool = ThreadPoolExecutor(\n"
            "        max_workers=2, thread_name_prefix='solve-portfolio')\n"
            "    return [pool.submit(_attempt, m) for m in models]\n"
        )
        result = lint("src/repro/solve/attempts.py", source)
        assert [f.rule for f in result.active] == ["RL002"]
        assert result.active[0].line == 4
