"""PartitionService: the async batch facade end to end."""

from __future__ import annotations

import asyncio
import warnings

import pytest

from repro.core import (
    PartitionerConfig,
    PartitioningOutcome,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
)
from repro.obs import MemorySink
from repro.service import PartitionService


def quick_config(**solver_overrides) -> PartitionerConfig:
    return PartitionerConfig(
        search=RefinementConfig(time_budget=60.0),
        solver=SolverSettings(
            backend="highs", time_limit=10.0, **solver_overrides
        ),
    )


@pytest.fixture
def inline_service(ar_device):
    service = PartitionService(
        processor=ar_device, config=quick_config(), max_workers=0
    )
    with service:
        yield service


class TestInlineService:
    def test_submit_returns_a_future_with_an_outcome(
        self, inline_service, chain_graph
    ):
        future = inline_service.submit(PartitionRequest(graph=chain_graph))
        outcome = future.result(timeout=60)
        assert isinstance(outcome, PartitioningOutcome)
        assert outcome.feasible
        assert outcome.design is not None

    def test_async_submit_batch_gathers_all(
        self, inline_service, chain_graph, diamond_graph
    ):
        async def run():
            return await inline_service.submit_batch(
                [
                    PartitionRequest(graph=chain_graph),
                    PartitionRequest(graph=diamond_graph),
                ]
            )

        outcomes = asyncio.run(run())
        assert len(outcomes) == 2
        assert all(o.feasible for o in outcomes)
        # Outcomes arrive in request order, not completion order.
        assert outcomes[0].design.graph.name == "chain"
        assert outcomes[1].design.graph.name == "diamond"

    def test_solve_batch_sync_wrapper(self, inline_service, chain_graph):
        outcomes = inline_service.solve_batch(
            [PartitionRequest(graph=chain_graph)]
        )
        assert len(outcomes) == 1 and outcomes[0].feasible

    def test_request_without_processor_anywhere_fails(self, chain_graph):
        # Resolution happens at submit time, so the mistake surfaces
        # immediately instead of inside a worker.
        with PartitionService(max_workers=0) as service:
            with pytest.raises(ValueError, match="processor"):
                service.submit(PartitionRequest(graph=chain_graph))

    def test_request_overrides_win_over_service_defaults(
        self, inline_service, chain_graph, ar_device
    ):
        import dataclasses

        bigger = dataclasses.replace(ar_device, resource_capacity=1000)
        outcome = inline_service.submit(
            PartitionRequest(graph=chain_graph, processor=bigger)
        ).result(timeout=60)
        assert outcome.feasible
        # Capacity 1000 fits the whole chain in one partition.
        assert outcome.design.num_partitions_used == 1

    def test_service_emits_request_lifecycle_events(
        self, ar_device, chain_graph
    ):
        sink = MemorySink()
        with PartitionService(
            processor=ar_device,
            config=quick_config(),
            max_workers=0,
            sinks=(sink,),
        ) as service:
            service.submit(PartitionRequest(graph=chain_graph)).result(
                timeout=60
            )
        names = [e["name"] for e in sink.events]
        assert "service_request_submitted" in names
        assert "service_request_completed" in names

    def test_no_deprecation_warnings_on_the_service_path(
        self, inline_service, chain_graph
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = inline_service.submit(
                PartitionRequest(graph=chain_graph)
            ).result(timeout=60)
        assert outcome.feasible

    def test_outcome_matches_partitioner_solve(
        self, inline_service, diamond_graph, ar_device
    ):
        from repro.core import TemporalPartitioner

        via_service = inline_service.submit(
            PartitionRequest(graph=diamond_graph)
        ).result(timeout=60)
        via_partitioner = TemporalPartitioner(
            ar_device, config=quick_config()
        ).solve(PartitionRequest(graph=diamond_graph))
        assert via_service.feasible == via_partitioner.feasible
        assert via_service.total_latency == pytest.approx(
            via_partitioner.total_latency
        )


class TestDiskCacheIntegration:
    def test_warm_cache_reproduces_outcomes_with_disk_hits(
        self, tmp_path, ar_device, chain_graph, diamond_graph
    ):
        cache_file = str(tmp_path / "solves.sqlite")
        requests = [
            PartitionRequest(graph=chain_graph),
            PartitionRequest(graph=diamond_graph),
        ]

        with PartitionService(
            processor=ar_device,
            config=quick_config(),
            max_workers=0,
            cache_path=cache_file,
        ) as cold_service:
            cold = cold_service.solve_batch(requests)

        # A brand-new service on the same cache file: every window
        # verdict should replay from disk and the outcomes must match.
        with PartitionService(
            processor=ar_device,
            config=quick_config(),
            max_workers=0,
            cache_path=cache_file,
        ) as warm_service:
            warm = warm_service.solve_batch(requests)

        total_disk_hits = sum(o.telemetry.disk_hits for o in warm)
        assert total_disk_hits > 0
        for before, after in zip(cold, warm):
            assert after.feasible == before.feasible
            assert after.total_latency == pytest.approx(
                before.total_latency
            )
            assert (
                after.design.as_assignment() == before.design.as_assignment()
            )

    def test_request_settings_keep_their_own_cache_path(
        self, tmp_path, ar_device, chain_graph
    ):
        service_cache = str(tmp_path / "service.sqlite")
        request_cache = str(tmp_path / "request.sqlite")
        with PartitionService(
            processor=ar_device,
            config=quick_config(),
            max_workers=0,
            cache_path=service_cache,
        ) as service:
            request = PartitionRequest(
                graph=chain_graph,
                config=quick_config(cache_path=request_cache),
            )
            assert service.submit(request).result(timeout=60).feasible
        # The request's explicit choice wins over the service default.
        assert (tmp_path / "request.sqlite").exists()
        assert not (tmp_path / "service.sqlite").exists()


class TestLifecycle:
    def test_submit_after_close_is_rejected(self, ar_device, chain_graph):
        service = PartitionService(
            processor=ar_device, config=quick_config(), max_workers=0
        )
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(PartitionRequest(graph=chain_graph))

    def test_close_is_idempotent(self, ar_device):
        service = PartitionService(processor=ar_device, max_workers=0)
        service.close()
        service.close()

    def test_async_context_manager(self, ar_device, chain_graph):
        async def run():
            async with PartitionService(
                processor=ar_device, config=quick_config(), max_workers=0
            ) as service:
                return await service.solve(
                    PartitionRequest(graph=chain_graph)
                )

        assert asyncio.run(run()).feasible

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            PartitionService(max_workers=-1)


@pytest.mark.slow
class TestPooledService:
    def test_pooled_batch_matches_inline(
        self, tmp_path, ar_device, chain_graph, diamond_graph
    ):
        requests = [
            PartitionRequest(graph=chain_graph),
            PartitionRequest(graph=diamond_graph),
        ]
        with PartitionService(
            processor=ar_device, config=quick_config(), max_workers=0
        ) as inline:
            expected = inline.solve_batch(requests)
        with PartitionService(
            processor=ar_device,
            config=quick_config(),
            max_workers=2,
            cache_path=str(tmp_path / "pooled.sqlite"),
        ) as pooled:
            outcomes = pooled.solve_batch(requests)
        for got, want in zip(outcomes, expected):
            assert got.feasible == want.feasible
            assert got.total_latency == pytest.approx(
                want.total_latency
            )
            assert got.telemetry.workers_merged >= 1
