"""The process-boundary wire format round-trips everything it claims to."""

from __future__ import annotations

import json

from repro.arch.processor import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
)
from repro.obs import Tracer
from repro.service.wire import (
    decode_config,
    decode_processor,
    decode_request,
    encode_config,
    encode_processor,
    encode_request,
)


def test_processor_round_trip():
    processor = ReconfigurableProcessor(
        resource_capacity=400,
        memory_capacity=128,
        reconfiguration_time=20.0,
        name="ar_device",
        extra_capacities=(("dsp", 8.0), ("bram", 16.0)),
    )
    assert decode_processor(encode_processor(processor)) == processor


def test_config_round_trip_preserves_every_layer():
    config = PartitionerConfig(
        search=RefinementConfig(delta=50.0, time_budget=120.0),
        formulation=FormulationOptions(symmetry_breaking=True),
        solver=SolverSettings.fast(time_limit=7.5, cache_path="/tmp/c.db"),
        validate=False,
    )
    decoded = decode_config(encode_config(config))
    assert decoded.search == config.search
    assert decoded.formulation == config.formulation
    assert decoded.solver == config.solver
    assert decoded.validate is False


def test_tracer_never_crosses_the_boundary():
    config = PartitionerConfig(solver=SolverSettings(tracer=Tracer()))
    payload = encode_config(config)
    assert "tracer" not in payload["solver"]
    decoded = decode_config(payload)
    assert decoded.solver.tracer is None
    # The tracer is excluded from equality, so the settings still match.
    assert decoded.solver == config.solver


def test_request_round_trip(diamond_graph, ar_device):
    request = PartitionRequest(
        graph=diamond_graph,
        processor=ar_device,
        config=PartitionerConfig(search=RefinementConfig(delta=25.0)),
    )
    decoded = decode_request(encode_request(request))
    assert decoded.graph.name == diamond_graph.name
    assert sorted(t.name for t in decoded.graph.tasks) == sorted(
        t.name for t in diamond_graph.tasks
    )
    assert decoded.processor == ar_device
    assert decoded.config.search.delta == 25.0


def test_request_with_defaults_round_trips_none(chain_graph):
    request = PartitionRequest(graph=chain_graph)
    decoded = decode_request(encode_request(request))
    assert decoded.processor is None
    assert decoded.config is None


def test_wire_payloads_are_json_clean(diamond_graph, ar_device):
    request = PartitionRequest(
        graph=diamond_graph, processor=ar_device, config=PartitionerConfig()
    )
    payload = encode_request(request)
    # The whole point of the wire format: a JSON round trip must be
    # lossless, so payloads can live in batch files and cross stdin.
    decoded = decode_request(json.loads(json.dumps(payload)))
    assert decoded.processor == ar_device
    assert decoded.config.solver == SolverSettings()
