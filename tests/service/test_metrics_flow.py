"""Metrics across the process boundary: workers count, the parent merges.

The load-bearing acceptance property: a sharded run's merged
``MetricsSnapshot`` carries the same window/solve counters as the serial
run over the same inputs.  That only holds on workloads where the
min-latency cut never fires (the serial relax phase clips windows with
its incumbent, pooled shards bisect full windows), so these tests use
the default ``gamma=0`` range where every shard is fully evaluated.
"""

from __future__ import annotations

import pytest

from repro.core import (
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.service import wire
from repro.service.sharding import solve_sharded
from repro.service.worker import solve_shard
from repro.taskgraph import io as graph_io


def shard_config(**search_overrides) -> PartitionerConfig:
    search = RefinementConfig(time_budget=60.0, **search_overrides)
    return PartitionerConfig(
        search=search,
        solver=SolverSettings(backend="highs", time_limit=10.0),
    )


class TestWireExcludesMetrics:
    def test_settings_with_registry_encode_without_it(self):
        settings = SolverSettings(metrics=MetricsRegistry())
        payload = wire._encode_settings(settings)
        assert "metrics" not in payload
        assert "tracer" not in payload

    def test_decode_ignores_a_smuggled_metrics_key(self):
        payload = wire._encode_settings(SolverSettings())
        payload["metrics"] = {"schema_version": 1, "metrics": []}
        restored = wire._decode_settings(payload)
        assert restored.metrics is None

    def test_config_round_trip_drops_metrics_only(self):
        config = PartitionerConfig(
            solver=SolverSettings(time_limit=7.0, metrics=MetricsRegistry())
        )
        restored = wire.decode_config(wire.encode_config(config))
        assert restored.solver.metrics is None
        assert restored.solver.time_limit == 7.0


class TestWorkerReports:
    def test_shard_report_carries_a_snapshot(self, diamond_graph, ar_device):
        config = shard_config()
        payload = {
            "graph": graph_io.to_dict(diamond_graph),
            "processor": wire.encode_processor(ar_device),
            "config": wire.encode_config(config),
            "num_partitions": 2,
            "delta": 10.0,
        }
        report = solve_shard(payload)
        assert report["metrics"] is not None
        snapshot = MetricsSnapshot.from_dict(report["metrics"])
        assert snapshot.total("repro_window_solves_total") > 0
        # The counters agree with the wire telemetry riding alongside.
        wins = sum(report["telemetry"]["backend_wins"].values())
        assert snapshot.total("repro_backend_wins_total") == wins

    def test_cancelled_shard_reports_no_metrics(
        self, diamond_graph, ar_device
    ):
        import threading

        cancel = threading.Event()
        cancel.set()
        config = shard_config()
        payload = {
            "graph": graph_io.to_dict(diamond_graph),
            "processor": wire.encode_processor(ar_device),
            "config": wire.encode_config(config),
            "num_partitions": 2,
            "delta": 10.0,
        }
        report = solve_shard(payload, cancel=cancel)
        assert report["skipped"] == "cancelled"
        assert report["metrics"] is None


class TestShardedMergeEqualsSerial:
    def test_merged_counters_reconcile_with_merged_telemetry(
        self, diamond_graph, ar_device
    ):
        # Shard snapshots and shard telemetries travel the wire side by
        # side; after the coordinator merges both, counters that exist
        # in both views must agree exactly.
        registry = MetricsRegistry()
        result = solve_sharded(
            diamond_graph,
            ar_device,
            config=shard_config(),
            max_workers=0,
            metrics=registry,
        )
        assert result.feasible
        snapshot = registry.snapshot()
        telemetry = result.telemetry
        assert snapshot.total("repro_backend_wins_total") == sum(
            telemetry.backend_wins.values()
        )
        assert snapshot.total("repro_template_builds_total") == (
            telemetry.template_builds
        )
        assert snapshot.total("repro_incumbent_reuses_total") == (
            telemetry.incumbent_reuses
        )
        assert snapshot.total("repro_window_solves_total") > 0

    def test_sharded_counts_full_windows_of_every_explored_bound(
        self, diamond_graph, ar_device
    ):
        # Serial and sharded runs are verdict-compatible but not
        # trajectory-identical (the serial relax phase clips windows
        # with its incumbent; shards bisect full windows), so window
        # counters compare as >=, never ==.
        config = shard_config()
        serial_registry = MetricsRegistry()
        serial = refine_partitions_bound(
            diamond_graph,
            ar_device,
            config=config.search,
            settings=SolverSettings(
                backend="highs", time_limit=10.0, metrics=serial_registry
            ),
        )
        sharded_registry = MetricsRegistry()
        sharded = solve_sharded(
            diamond_graph,
            ar_device,
            config=config,
            max_workers=0,
            metrics=sharded_registry,
        )
        assert sharded.feasible == serial.feasible
        assert sharded_registry.snapshot().total(
            "repro_window_solves_total"
        ) >= serial_registry.snapshot().total("repro_window_solves_total")

    def test_merge_order_does_not_change_the_aggregate(
        self, diamond_graph, ar_device
    ):
        config = shard_config()
        result = solve_sharded(
            diamond_graph,
            ar_device,
            config=config,
            max_workers=0,
            metrics=MetricsRegistry(),
        )
        assert result.feasible
        # Re-run and absorb the same shard snapshots in reverse order:
        # the commutative-merge contract says the aggregate is equal.
        registry_fwd = MetricsRegistry()
        registry_rev = MetricsRegistry()
        again = solve_sharded(
            diamond_graph,
            ar_device,
            config=config,
            max_workers=0,
            metrics=registry_fwd,
        )
        assert again.feasible
        snapshot = registry_fwd.snapshot()
        registry_rev.absorb(snapshot)
        assert registry_rev.snapshot() == snapshot

    def test_no_registry_means_no_metrics_work(self, diamond_graph, ar_device):
        result = solve_sharded(
            diamond_graph, ar_device, config=shard_config(), max_workers=0
        )
        assert result.feasible  # metrics=None path stays intact


@pytest.mark.slow
class TestPooledMergeEqualsSerial:
    def test_pooled_sharded_counters_match_inline(
        self, diamond_graph, ar_device
    ):
        from repro.service import PartitionService
        from repro.core.partitioner import PartitionRequest

        config = shard_config()
        inline_registry = MetricsRegistry()
        with PartitionService(
            processor=ar_device,
            config=config,
            max_workers=0,
            metrics=inline_registry,
        ) as service:
            inline = service.solve_batch(
                [PartitionRequest(graph=diamond_graph)]
            )[0]

        pooled_registry = MetricsRegistry()
        with PartitionService(
            processor=ar_device,
            config=config,
            max_workers=2,
            metrics=pooled_registry,
        ) as service:
            pooled = service.solve_batch(
                [PartitionRequest(graph=diamond_graph)]
            )[0]

        assert pooled.feasible == inline.feasible
        a = inline_registry.snapshot()
        b = pooled_registry.snapshot()
        for name in (
            "repro_window_solves_total",
            "repro_service_requests_total",
        ):
            assert b.total(name) == a.total(name), name
        assert b.value("repro_service_requests_in_flight") == 0.0
        assert a.value("repro_service_requests_in_flight") == 0.0


class TestServiceMetrics:
    def test_request_lifecycle_counters(self, diamond_graph, ar_device):
        from repro.core.partitioner import PartitionRequest
        from repro.service import PartitionService

        registry = MetricsRegistry()
        with PartitionService(
            processor=ar_device,
            config=shard_config(),
            max_workers=0,
            metrics=registry,
        ) as service:
            outcomes = service.solve_batch(
                [PartitionRequest(graph=diamond_graph)] * 2
            )
        assert all(o.feasible for o in outcomes)
        snapshot = registry.snapshot()
        assert snapshot.value("repro_service_requests_total", "feasible") == 2
        assert snapshot.value("repro_service_requests_in_flight") == 0.0
        count, total = snapshot.histogram_stats(
            "repro_service_request_seconds"
        )
        assert count == 2
        assert total > 0.0
        wait_count, _ = snapshot.histogram_stats(
            "repro_service_queue_wait_seconds"
        )
        assert wait_count == 2

    def test_validation_failure_counts_as_error(self, ar_device):
        from repro.core.partitioner import PartitionRequest
        from repro.service import PartitionService
        from repro.taskgraph.graph import TaskGraph
        from repro.taskgraph import DesignPoint

        # One task demanding more area than the device has: validation
        # rejects the request before any shard runs.
        graph = TaskGraph("oversized")
        graph.add_task(
            "t",
            [DesignPoint(latency=1.0, area=ar_device.resource_capacity * 2)],
        )
        registry = MetricsRegistry()
        with PartitionService(
            processor=ar_device,
            config=shard_config(),
            max_workers=0,
            metrics=registry,
        ) as service:
            future = service.submit(PartitionRequest(graph=graph))
            with pytest.raises(Exception):
                future.result()
        snapshot = registry.snapshot()
        assert snapshot.value("repro_service_requests_total", "error") == 1
        assert snapshot.value("repro_service_requests_in_flight") == 0.0

    def test_cancel_all_is_counted(self, ar_device):
        from repro.service import PartitionService

        registry = MetricsRegistry()
        with PartitionService(
            processor=ar_device, max_workers=0, metrics=registry
        ) as service:
            service.cancel_all()
            service.cancel_all()
        assert (
            registry.snapshot().total("repro_service_cancellations_total")
            == 2
        )
