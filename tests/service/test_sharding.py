"""Sharded search: verdict equivalence with the serial algorithm."""

from __future__ import annotations

import pytest

from repro.core import (
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.obs import MemorySink, Tracer
from repro.service.sharding import solve_sharded


def shard_config(**search_overrides) -> PartitionerConfig:
    search = RefinementConfig(time_budget=60.0, **search_overrides)
    return PartitionerConfig(
        search=search,
        solver=SolverSettings(backend="highs", time_limit=10.0),
    )


class TestInlineEquivalence:
    """``max_workers=0`` — deterministic, no subprocesses."""

    @pytest.mark.parametrize("fixture", ["diamond_graph", "chain_graph"])
    def test_matches_serial_verdict(self, request, fixture, ar_device):
        graph = request.getfixturevalue(fixture)
        config = shard_config()
        serial = refine_partitions_bound(
            graph,
            ar_device,
            config=config.search,
            settings=config.solver,
        )
        sharded = solve_sharded(
            graph, ar_device, config=config, max_workers=0
        )
        assert sharded.feasible == serial.feasible
        if serial.feasible:
            assert sharded.achieved == pytest.approx(serial.achieved)
            assert sharded.design.total_latency(
                ar_device
            ) == pytest.approx(sharded.achieved)

    def test_explored_covers_the_partition_range(
        self, diamond_graph, ar_device
    ):
        result = solve_sharded(
            diamond_graph, ar_device, config=shard_config(), max_workers=0
        )
        assert result.feasible
        assert result.explored_partitions
        assert result.explored_partitions == tuple(
            sorted(result.explored_partitions)
        )

    def test_design_passes_validation_audit(self, ar_graph, ar_device):
        result = solve_sharded(
            ar_graph, ar_device, config=shard_config(), max_workers=0
        )
        assert result.feasible
        violations = result.design.audit(ar_device)
        assert violations == []

    def test_merged_telemetry_counts_every_shard(
        self, diamond_graph, ar_device
    ):
        result = solve_sharded(
            diamond_graph, ar_device, config=shard_config(), max_workers=0
        )
        assert result.telemetry is not None
        assert result.telemetry.workers_merged == len(
            result.explored_partitions
        )
        # Per-solve records stay worker-side (wire payloads carry only
        # aggregates), but the merged aggregates must show real work.
        assert sum(result.telemetry.backend_wins.values()) > 0

    def test_trace_carries_per_bound_iterations(
        self, diamond_graph, ar_device
    ):
        result = solve_sharded(
            diamond_graph, ar_device, config=shard_config(), max_workers=0
        )
        explored_in_trace = {r.num_partitions for r in result.trace.records}
        assert explored_in_trace <= set(result.explored_partitions)
        assert result.trace.records  # at least one bisection iteration

    def test_min_latency_cut_skips_hopeless_bounds(
        self, diamond_graph, ar_device
    ):
        # gamma=3 extends the explored range past the point where the
        # reconfiguration overhead alone exceeds the incumbent, so the
        # deepest bounds must be cut without solving.
        sink = MemorySink()
        result = solve_sharded(
            diamond_graph,
            ar_device,
            config=shard_config(gamma=3),
            max_workers=0,
            tracer=Tracer(sink),
        )
        events = [e for e in sink.events if e["name"] == "shard_completed"]
        assert events
        skips = [
            e
            for e in events
            if e["attrs"].get("skipped") == "min_latency_cut"
        ]
        assert skips
        assert result.stopped_by_min_latency_cut is True
        # Cut bounds never make it into the explored tuple.
        cut_ns = {e["attrs"]["num_partitions"] for e in skips}
        assert cut_ns.isdisjoint(result.explored_partitions)

    def test_events_stream_dispatch_and_completion(
        self, chain_graph, ar_device
    ):
        sink = MemorySink()
        solve_sharded(
            chain_graph,
            ar_device,
            config=shard_config(),
            max_workers=0,
            tracer=Tracer(sink),
        )
        names = [e["name"] for e in sink.events]
        assert "shard_dispatched" in names
        assert "shard_completed" in names


class TestPooledInputValidation:
    def test_pool_without_shared_bound_is_rejected(
        self, chain_graph, ar_device
    ):
        class FakePool:
            pass

        with pytest.raises(ValueError, match="bound"):
            solve_sharded(
                chain_graph,
                ar_device,
                config=shard_config(),
                pool=FakePool(),
            )
