"""Cross-window acceleration: incumbents, primal-first, persistent cuts.

The acceleration layer must be *transparent*: every shortcut is a
feasibility certificate (a re-checked incumbent, a greedy design that
audits clean, an LP infeasibility proof), so the search trajectory ends
at the same latency whether the shortcuts fire or not.  These tests pin
both halves — the shortcuts do fire (counters move, backends are
labelled), and the finals do not move.
"""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.arch import ReconfigurableProcessor
from repro.core import SolverSettings, bounds
from repro.core.reduce_latency import reduce_latency
from repro.core.refine_partitions import refine_partitions_bound
from repro.ilp.status import SolveStatus
from repro.solve import SolveExecutor
from repro.taskgraph import ar_filter


@pytest.fixture
def processor() -> ReconfigurableProcessor:
    return ReconfigurableProcessor(400, 128, 20.0)


def window(graph, n, c_t=20.0):
    return (
        bounds.max_latency(graph, n, c_t),
        bounds.min_latency(graph, n, c_t),
    )


def accelerated(**overrides) -> SolverSettings:
    kwargs = dict(
        time_limit=15.0,
        incumbent_reuse=True,
        primal_first=True,
        persistent_cuts=True,
    )
    kwargs.update(overrides)
    return SolverSettings(**kwargs)


class TestIncumbentReuse:
    def test_previous_incumbent_answers_wider_window(self, processor):
        # The N=3 incumbent still fits the (different-fingerprint, so
        # cache-miss) N=4 opening window: the executor must answer SAT
        # from the carried design with zero solver work.
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, incumbent_reuse=True)
        )
        graph = ar_filter()
        first = executor.solve_window(graph, processor, 3, *window(graph, 3))
        reused = executor.solve_window(graph, processor, 4, *window(graph, 4))
        assert first.feasible and reused.feasible
        assert not reused.cache_hit
        assert reused.backend == "incumbent"
        assert reused.achieved == first.achieved
        assert executor.telemetry.incumbent_reuses == 1

    def test_reused_design_is_a_real_certificate(self, processor):
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, incumbent_reuse=True)
        )
        graph = ar_filter()
        executor.solve_window(graph, processor, 3, *window(graph, 3))
        reused = executor.solve_window(graph, processor, 4, *window(graph, 4))
        design = reused.design
        assert design is not None
        assert not design.audit(processor)
        assert design.num_partitions_used <= 4
        d_max, _ = window(graph, 4)
        assert reused.achieved <= d_max + 1e-9

    def test_flag_off_never_reuses(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        executor.solve_window(graph, processor, 3, *window(graph, 3))
        second = executor.solve_window(graph, processor, 4, *window(graph, 4))
        assert second.backend != "incumbent"
        assert executor.telemetry.incumbent_reuses == 0


class TestPrimalFirst:
    def test_greedy_probe_answers_wide_window(self, processor):
        # The opening window is above the greedy packers' fixed latency,
        # so the primal stage answers it without racing the portfolio.
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, primal_first=True)
        )
        graph = ar_filter()
        result = executor.solve_window(graph, processor, 3, *window(graph, 3))
        assert result.feasible
        assert result.backend.startswith("primal:")
        assert not result.degraded
        assert executor.telemetry.primal_hits == 1
        assert not result.design.audit(processor)

    def test_packing_bound_refutes_hopeless_window(self, processor):
        # d_max below even the packing bound (340 at N=3 for the AR
        # device): arithmetic proves the window empty before the LP is
        # touched.
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, primal_first=True)
        )
        graph = ar_filter()
        result = executor.solve_window(graph, processor, 3, 100.0, 0.0)
        assert not result.feasible
        assert result.status is SolveStatus.INFEASIBLE
        assert result.backend == "primal:bound"
        assert executor.telemetry.primal_hits == 1

    def test_lp_infeasibility_is_a_window_emptiness_proof(self, processor):
        # A window above the packing bound (340) but below the LP
        # latency bound (~476.9 at N=3): the relaxation is infeasible,
        # which proves the MILP window empty without any
        # branch-and-bound work.
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, primal_first=True)
        )
        graph = ar_filter()
        result = executor.solve_window(graph, processor, 3, 400.0, 0.0)
        assert not result.feasible
        assert result.status is SolveStatus.INFEASIBLE
        assert result.backend == "primal:lp"
        assert executor.telemetry.primal_hits == 1

    def test_flag_off_no_primal_hits(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        executor.solve_window(graph, processor, 3, *window(graph, 3))
        assert executor.telemetry.primal_hits == 0


class TestPersistentCuts:
    def test_cover_cuts_are_pooled_on_the_template(self, processor):
        executor = SolveExecutor(
            SolverSettings(
                time_limit=15.0, primal_first=True, persistent_cuts=True
            )
        )
        graph = ar_filter()
        executor.solve_window(graph, processor, 3, *window(graph, 3))
        assert executor.telemetry.pooled_cuts >= 1

    def test_cuts_do_not_change_the_verdict(self, processor):
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        plain = SolveExecutor(SolverSettings(time_limit=15.0))
        cutting = SolveExecutor(
            SolverSettings(
                time_limit=15.0, primal_first=True, persistent_cuts=True
            )
        )
        for n, lo, hi in ((3, d_min, d_max), (3, d_min, 550.0)):
            a = plain.solve_window(graph, processor, n, hi, lo)
            b = cutting.solve_window(graph, processor, n, hi, lo)
            assert a.feasible == b.feasible


class TestTrajectoryIdentity:
    """Accelerated and plain searches end at the same latency.

    Every acceleration shortcut is a certificate, so with a per-solve
    budget large enough that nothing times out, the bisection must reach
    the same final latency and partition count for any step size.
    """

    @given(delta=st.sampled_from([5.0, 10.0, 17.5, 25.0, 40.0]),
           num_partitions=st.sampled_from([3, 4]))
    @hsettings(max_examples=8, deadline=None)
    def test_reduce_latency_finals_identical_on_ar(
        self, delta, num_partitions
    ):
        processor = ReconfigurableProcessor(400, 128, 20.0)
        graph = ar_filter()
        d_max, d_min = window(graph, num_partitions)
        base = reduce_latency(
            graph, processor, num_partitions, d_max, d_min, delta,
            settings=SolverSettings(time_limit=15.0),
        )
        accel = reduce_latency(
            graph, processor, num_partitions, d_max, d_min, delta,
            settings=accelerated(),
        )
        assert base.telemetry.timeouts == 0
        assert accel.telemetry.timeouts == 0
        assert accel.achieved == base.achieved
        assert (accel.design is None) == (base.design is None)
        if base.design is not None:
            assert (
                accel.design.num_partitions_used
                == base.design.num_partitions_used
            )

    def test_refine_finals_identical_on_ar(self):
        processor = ReconfigurableProcessor(400, 128, 20.0)
        base = refine_partitions_bound(
            ar_filter(), processor,
            settings=SolverSettings(time_limit=15.0),
        )
        accel = refine_partitions_bound(
            ar_filter(), processor, settings=accelerated(),
        )
        assert base.achieved == pytest.approx(510.0)
        assert accel.achieved == base.achieved
        assert (
            accel.design.num_partitions_used
            == base.design.num_partitions_used
        )
        # The run exercised the shortcuts, not just tolerated them.
        assert accel.telemetry.incumbent_reuses >= 1
        assert accel.telemetry.primal_hits >= 1
        assert accel.telemetry.pooled_cuts >= 1


class TestTrajectoryIdentityDct:
    """DCT reference instance: verdicts agree below the feasibility edge.

    At the paper's R_max = 576 device the 32-task DCT needs many
    partitions; below the boundary every window is provably empty, and
    both search paths must agree on that emptiness quickly (the
    accelerated path via the LP relaxation proof, the plain path via
    the MILP).  Feasible-side identity at the full partition bound is
    exercised by ``benchmarks/test_portfolio_speedup.py`` where the
    budgets allow it.
    """

    @pytest.mark.parametrize("num_partitions", [4, 5, 6])
    def test_infeasible_bounds_agree(self, num_partitions):
        from repro.taskgraph import dct_4x4

        processor = ReconfigurableProcessor(576, 1024, 30.0)
        graph = dct_4x4()
        d_max, d_min = window(graph, num_partitions, c_t=30.0)
        base = reduce_latency(
            graph, processor, num_partitions, d_max, d_min, 1000.0,
            settings=SolverSettings(time_limit=30.0),
        )
        accel = reduce_latency(
            graph, processor, num_partitions, d_max, d_min, 1000.0,
            settings=accelerated(time_limit=30.0),
        )
        assert base.telemetry.timeouts == 0
        assert accel.telemetry.timeouts == 0
        assert base.design is None
        assert accel.design is None
        assert accel.achieved == base.achieved  # both None
