"""Solve cache: exact replays and window-monotone verdict reuse."""

from repro.solve import ModelFingerprint, SolveCache


def make_fp(base="m", n=3, d_min=100.0, d_max=500.0):
    return ModelFingerprint(base, n, d_min, d_max)


class FakeDesign:
    """Stand-in certificate; the cache never inspects designs."""


class TestExactReplay:
    def test_same_window_hits_exactly(self):
        cache = SolveCache()
        fp = make_fp()
        design = FakeDesign()
        cache.store_feasible(fp, design, achieved=321.0, backend="highs")
        hit = cache.lookup(make_fp())
        assert hit is not None and hit.rule == "exact"
        assert hit.verdict.design is design
        assert hit.verdict.achieved == 321.0

    def test_perturbed_base_misses(self):
        cache = SolveCache()
        cache.store_feasible(make_fp(base="m"), FakeDesign(), 321.0)
        assert cache.lookup(make_fp(base="other")) is None
        assert cache.misses == 1

    def test_infeasible_exact_replay(self):
        cache = SolveCache()
        cache.store_infeasible(make_fp(), backend="bnb")
        hit = cache.lookup(make_fp())
        assert hit is not None
        assert hit.rule == "exact"
        assert not hit.verdict.feasible


class TestFeasibleMonotonicity:
    def test_design_inside_wider_window_hits(self):
        cache = SolveCache()
        cache.store_feasible(
            make_fp(d_min=100.0, d_max=500.0), FakeDesign(), achieved=321.0
        )
        # Different (wider) window, but the certificate's latency fits.
        hit = cache.lookup(make_fp(d_min=50.0, d_max=900.0))
        assert hit is not None and hit.rule == "feasible"
        assert hit.verdict.achieved == 321.0

    def test_design_outside_query_window_misses(self):
        cache = SolveCache()
        cache.store_feasible(
            make_fp(d_min=100.0, d_max=500.0), FakeDesign(), achieved=321.0
        )
        # Narrower window excluding the certificate: must re-solve.
        assert cache.lookup(make_fp(d_min=100.0, d_max=300.0)) is None


class TestInfeasibleMonotonicity:
    def test_subwindow_of_proven_empty_window_hits(self):
        cache = SolveCache()
        cache.store_infeasible(make_fp(d_min=100.0, d_max=500.0))
        hit = cache.lookup(make_fp(d_min=200.0, d_max=400.0))
        assert hit is not None and hit.rule == "infeasible"
        assert not hit.verdict.feasible

    def test_superwindow_does_not_hit(self):
        cache = SolveCache()
        cache.store_infeasible(make_fp(d_min=100.0, d_max=500.0))
        # A wider window might contain a design: no verdict carries over.
        assert cache.lookup(make_fp(d_min=50.0, d_max=900.0)) is None


class TestBookkeeping:
    def test_hit_rate_and_len(self):
        cache = SolveCache()
        fp = make_fp()
        assert cache.lookup(fp) is None
        cache.store_feasible(fp, FakeDesign(), 321.0)
        assert cache.lookup(fp) is not None
        assert len(cache) == 1
        assert cache.hit_rate == 0.5

    def test_duplicate_store_is_deduped(self):
        cache = SolveCache()
        fp = make_fp()
        cache.store_feasible(fp, FakeDesign(), 321.0)
        cache.store_feasible(fp, FakeDesign(), 321.0)
        assert len(cache) == 1

    def test_clear(self):
        cache = SolveCache()
        cache.store_feasible(make_fp(), FakeDesign(), 321.0)
        cache.lookup(make_fp())
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
