"""Portfolio racing: first conclusive verdict wins, losers are cancelled."""

import threading
import time

from repro.ilp.status import SolveStatus
from repro.solve import SolveAttempt, race_backends


def attempt(backend, status, design=None, wall=0.0):
    return SolveAttempt(
        backend=backend, status=status, design=design, wall_time=wall
    )


class FakeDesign:
    pass


def instant_winner(name, design):
    def run(cancel):
        return attempt(name, SolveStatus.FEASIBLE, design)

    return run


def cooperative_slowpoke(name, cancelled_flag, step=0.01, steps=500):
    """Simulates a node loop polling the shared cancellation event."""

    def run(cancel):
        for _ in range(steps):
            if cancel.is_set():
                cancelled_flag.set()
                return attempt(name, SolveStatus.TIME_LIMIT)
            time.sleep(step)
        return attempt(name, SolveStatus.FEASIBLE, FakeDesign())

    return run


class TestRace:
    def test_single_attempt_runs_inline(self):
        design = FakeDesign()
        winner, completed = race_backends(
            [("solo", instant_winner("solo", design))]
        )
        assert winner is not None and winner.design is design
        assert [a.backend for a in completed] == ["solo"]

    def test_fast_winner_cancels_cooperative_loser(self):
        cancelled = threading.Event()
        design = FakeDesign()
        winner, completed = race_backends(
            [
                ("slow", cooperative_slowpoke("slow", cancelled)),
                ("fast", instant_winner("fast", design)),
            ]
        )
        assert winner is not None and winner.backend == "fast"
        assert winner.design is design
        # The loser observes the cancellation signal promptly.
        assert cancelled.wait(timeout=2.0)

    def test_proven_infeasible_is_conclusive(self):
        def prover(cancel):
            return attempt("bnb", SolveStatus.INFEASIBLE)

        winner, _ = race_backends([("bnb", prover)])
        assert winner is not None
        assert winner.status is SolveStatus.INFEASIBLE

    def test_all_timeouts_yield_no_winner(self):
        def timed_out(name):
            def run(cancel):
                return attempt(name, SolveStatus.TIME_LIMIT)

            return run

        winner, completed = race_backends(
            [("a", timed_out("a")), ("b", timed_out("b"))]
        )
        assert winner is None
        assert {a.backend for a in completed} == {"a", "b"}

    def test_crashing_backend_becomes_error_attempt(self):
        def boom(cancel):
            raise RuntimeError("backend exploded")

        design = FakeDesign()
        winner, completed = race_backends(
            [("boom", boom), ("ok", instant_winner("ok", design))]
        )
        assert winner is not None and winner.backend == "ok"
        crash = next(a for a in completed if a.backend == "boom")
        assert crash.status is SolveStatus.ERROR
        assert "backend exploded" in crash.error

    def test_second_conclusive_attempt_does_not_displace_winner(self):
        design_a, design_b = FakeDesign(), FakeDesign()

        def slow_b(cancel):
            time.sleep(0.05)
            return attempt("b", SolveStatus.FEASIBLE, design_b)

        winner, _ = race_backends(
            [("a", instant_winner("a", design_a)), ("b", slow_b)]
        )
        assert winner is not None
        assert winner.backend == "a"
