"""PartitionRequest / PartitioningOutcome: the unified facade API."""

import pytest

from repro import (
    PartitionerConfig,
    PartitionRequest,
    PartitioningOutcome,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import ReconfigurableProcessor
from repro.taskgraph import ar_filter


@pytest.fixture
def partitioner() -> TemporalPartitioner:
    return TemporalPartitioner(
        ReconfigurableProcessor(400, 128, 20.0),
        PartitionerConfig(
            search=RefinementConfig(gamma=1),
            solver=SolverSettings(time_limit=15.0),
        ),
    )


class TestRequestEquivalence:
    def test_request_and_legacy_agree_on_ar_filter(self, partitioner):
        legacy = partitioner.partition(ar_filter())
        via_request = partitioner.solve(PartitionRequest(graph=ar_filter()))
        assert legacy.feasible and via_request.feasible
        assert via_request.total_latency == legacy.total_latency
        assert via_request.num_partitions == legacy.num_partitions

    def test_partition_accepts_a_request(self, partitioner):
        outcome = partitioner.partition(PartitionRequest(graph=ar_filter()))
        assert isinstance(outcome, PartitioningOutcome)
        assert outcome.feasible

    def test_request_processor_override(self, partitioner):
        # A request may carry its own device; the partitioner's is unused.
        bigger = ReconfigurableProcessor(800, 128, 20.0)
        outcome = partitioner.solve(
            PartitionRequest(graph=ar_filter(), processor=bigger)
        )
        base = partitioner.partition(ar_filter())
        assert outcome.feasible
        # Twice the area lets more tasks share a partition: never worse.
        assert outcome.total_latency <= base.total_latency

    def test_request_config_override(self, partitioner):
        custom = PartitionerConfig(
            search=RefinementConfig(gamma=0),
            solver=SolverSettings(time_limit=15.0),
        )
        outcome = partitioner.solve(
            PartitionRequest(graph=ar_filter(), config=custom)
        )
        assert outcome.feasible


class TestOutcomeShape:
    def test_outcome_is_keyword_only(self):
        with pytest.raises(TypeError):
            PartitioningOutcome(None, None, None, None, 0.0, False, False)

    def test_outcome_is_self_describing(self, partitioner):
        outcome = partitioner.solve(PartitionRequest(graph=ar_filter()))
        assert outcome.feasible is True
        assert outcome.degraded is False
        assert outcome.telemetry is not None
        # Every executed solve is telemetered; trace rows may additionally
        # include LP-bound short-circuits that never reached the executor.
        assert 0 < outcome.telemetry.total_solves <= len(outcome.trace)

    def test_to_dict_round_trips_through_json(self, partitioner):
        import json

        outcome = partitioner.solve(PartitionRequest(graph=ar_filter()))
        payload = json.loads(json.dumps(outcome.to_dict(include_solves=True)))
        assert payload["feasible"] is True
        assert payload["degraded"] is False
        assert payload["num_partitions"] == outcome.num_partitions
        assert payload["telemetry"]["total_solves"] > 0
        assert set(payload["design"]) == set(ar_filter().task_names)
