"""RunTelemetry aggregation: wins, fallbacks, summary content."""

from __future__ import annotations

from repro.solve.telemetry import RunTelemetry, SolveStats


def stats(**overrides) -> SolveStats:
    base = dict(
        num_partitions=4,
        d_min=100.0,
        d_max=200.0,
        backend="highs",
        status="feasible",
        wall_time=0.5,
    )
    base.update(overrides)
    return SolveStats(**base)


class TestRecord:
    def test_backend_win_counted(self):
        telemetry = RunTelemetry()
        telemetry.record(stats())
        assert telemetry.backend_wins == {"highs": 1}

    def test_cache_hits_are_not_wins(self):
        telemetry = RunTelemetry()
        telemetry.record(stats(backend="cache", cache_hit=True))
        assert telemetry.backend_wins == {}
        assert telemetry.cache_hits == 1

    def test_degraded_fallback_is_not_a_backend_win(self):
        """Regression: a greedy fallback after every backend timed out was
        counted in ``backend_wins`` under its ``heuristic:<policy>`` name,
        inflating the win table for runs that actually degraded."""
        telemetry = RunTelemetry()
        telemetry.record(
            stats(backend="heuristic:min_area", degraded=True)
        )
        assert telemetry.backend_wins == {}
        assert telemetry.fallbacks == 1
        assert telemetry.degraded

    def test_hard_timeout_without_fallback(self):
        telemetry = RunTelemetry()
        telemetry.record(
            stats(backend="", status="time_limit", degraded=True)
        )
        assert telemetry.backend_wins == {}
        assert telemetry.fallbacks == 1


class TestSummary:
    def test_summary_includes_template_and_wall_time_metrics(self):
        telemetry = RunTelemetry()
        telemetry.record(stats(wall_time=1.25))
        telemetry.record(stats(wall_time=0.75, backend="bnb"))
        telemetry.template_builds = 2
        telemetry.template_instantiations = 7
        summary = telemetry.summary()
        assert "templates: 2 built/7 instantiated" in summary
        assert "2.00s total" in summary
        assert "bnb: 1" in summary
        assert "highs: 1" in summary

    def test_summary_excludes_degraded_from_wins(self):
        telemetry = RunTelemetry()
        telemetry.record(stats(backend="heuristic:balanced", degraded=True))
        summary = telemetry.summary()
        assert "wins: none" in summary
        assert "1 fallbacks" in summary

    def test_to_dict_round_trip(self):
        telemetry = RunTelemetry()
        telemetry.record(stats())
        payload = telemetry.to_dict(include_solves=True)
        assert payload["total_solves"] == 1
        assert payload["backend_wins"] == {"highs": 1}
        assert payload["solves"][0]["backend"] == "highs"

    def test_zero_solve_summary_reads_idle_not_cold(self):
        summary = RunTelemetry().summary()
        assert "cache idle" in summary
        assert "0%" not in summary
        assert "0.0%" not in summary

    def test_summary_shows_disk_hits_and_rate(self):
        telemetry = RunTelemetry()
        for _ in range(4):
            telemetry.record(stats(cache_hit=True))
        telemetry.disk_hits = 2
        summary = telemetry.summary()
        assert "2 disk" in summary
        assert "50% disk rate" in summary
        assert telemetry.disk_hit_rate == 0.5

    def test_merged_worker_summary_surfaces_disk_and_workers(self):
        # Shard reports travel with include_solves=False: counters only.
        worker = RunTelemetry()
        worker.disk_hits = 3
        merged = RunTelemetry()
        merged.merge(
            RunTelemetry.from_dict(worker.to_dict(include_solves=False))
        )
        summary = merged.summary()
        assert "3 disk hits" in summary
        assert "merged from 1 worker(s)" in summary
        assert "0.0%" not in summary

    def test_single_process_summary_has_no_worker_suffix(self):
        assert "merged" not in RunTelemetry().summary()
