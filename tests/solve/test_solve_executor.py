"""SolveExecutor: caching, deadlines, degradation, telemetry."""

import time

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import SolverSettings, bounds
from repro.ilp.status import SolveStatus
from repro.solve import SolveExecutor
from repro.taskgraph import ar_filter, dct_4x4


@pytest.fixture
def processor() -> ReconfigurableProcessor:
    return ReconfigurableProcessor(400, 128, 20.0)


def window(graph, n, c_t=20.0):
    return (
        bounds.max_latency(graph, n, c_t),
        bounds.min_latency(graph, n, c_t),
    )


class TestCachingThroughExecutor:
    def test_repeat_window_is_served_from_cache(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        first = executor.solve_window(graph, processor, 3, d_max, d_min)
        second = executor.solve_window(graph, processor, 3, d_max, d_min)
        assert first.feasible and second.feasible
        assert not first.cache_hit
        assert second.cache_hit and second.backend == "cache"
        assert second.achieved == first.achieved
        assert executor.telemetry.cache_hits == 1

    def test_disabled_cache_always_solves(self, processor):
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, enable_cache=False)
        )
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        executor.solve_window(graph, processor, 3, d_max, d_min)
        second = executor.solve_window(graph, processor, 3, d_max, d_min)
        assert executor.cache is None
        assert not second.cache_hit

    def test_monotone_feasible_hit_on_wider_window(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        first = executor.solve_window(graph, processor, 3, d_max, d_min)
        wider = executor.solve_window(
            graph, processor, 3, d_max + 50.0, max(d_min - 50.0, 0.0)
        )
        assert wider.cache_hit
        assert wider.achieved == first.achieved


class TestDeadlinesAndDegradation:
    def test_expired_deadline_degrades_without_solving(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        outcome = executor.solve_window(
            graph, processor, 3, d_max, d_min,
            deadline=time.perf_counter() - 1.0,
        )
        assert outcome.degraded
        # The greedy fallback still certifies a design when one fits.
        if outcome.feasible:
            assert outcome.backend.startswith("heuristic:")
            assert outcome.design.audit(processor) == []
        assert executor.telemetry.fallbacks == 1

    def test_tiny_budget_on_big_model_degrades(self):
        processor = ReconfigurableProcessor(576, 2048, 30.0)
        executor = SolveExecutor(SolverSettings(time_limit=1e-4))
        graph = dct_4x4()
        d_max, d_min = window(graph, 8, 30.0)
        outcome = executor.solve_window(graph, processor, 8, d_max, d_min)
        assert outcome.degraded
        assert outcome.feasible          # greedy fits 8 partitions easily
        assert outcome.backend.startswith("heuristic:")

    def test_fallback_can_be_disabled(self):
        processor = ReconfigurableProcessor(576, 2048, 30.0)
        executor = SolveExecutor(
            SolverSettings(time_limit=1e-4, heuristic_fallback=False)
        )
        graph = dct_4x4()
        d_max, d_min = window(graph, 8, 30.0)
        outcome = executor.solve_window(graph, processor, 8, d_max, d_min)
        assert outcome.degraded and not outcome.feasible
        assert outcome.status is SolveStatus.TIME_LIMIT


class TestPortfolioThroughExecutor:
    def test_portfolio_matches_sequential_verdict(self, processor):
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        sequential = SolveExecutor(SolverSettings(time_limit=15.0))
        portfolio = SolveExecutor(
            SolverSettings(time_limit=15.0, portfolio=("highs", "bnb"))
        )
        a = sequential.solve_window(graph, processor, 3, d_max, d_min)
        b = portfolio.solve_window(graph, processor, 3, d_max, d_min)
        assert a.feasible == b.feasible
        assert b.backend in ("highs", "bnb")

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown solve backend"):
            SolveExecutor(SolverSettings(backend="cplex"))

    def test_cp_backend_participates(self, processor):
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, portfolio=("highs", "cp"))
        )
        outcome = executor.solve_window(graph, processor, 3, d_max, d_min)
        assert outcome.feasible
        assert outcome.backend in ("highs", "cp")


class TestTelemetry:
    def test_solves_are_recorded(self, processor):
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        executor.solve_window(graph, processor, 3, d_max, d_min)
        telemetry = executor.telemetry
        assert telemetry.total_solves == 1
        assert telemetry.backend_wins.get("highs") == 1
        payload = telemetry.to_dict(include_solves=True)
        assert payload["total_solves"] == 1
        assert payload["solves"][0]["backend"] == "highs"
        assert "cache_hit_rate" in payload


class TestTemplateReuse:
    def test_templates_are_shared_across_windows(self, processor):
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, enable_cache=False)
        )
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        executor.solve_window(graph, processor, 3, d_max, d_min)
        executor.solve_window(graph, processor, 3, d_max - 30.0, d_min)
        executor.solve_window(graph, processor, 3, d_max - 60.0, 0.0)
        assert executor.telemetry.template_builds == 1
        assert executor.telemetry.template_instantiations == 3

    def test_each_structure_gets_its_own_template(self, processor):
        executor = SolveExecutor(
            SolverSettings(time_limit=15.0, enable_cache=False)
        )
        graph = ar_filter()
        for n in (3, 4):
            d_max, d_min = window(graph, n)
            executor.solve_window(graph, processor, n, d_max, d_min)
        assert executor.telemetry.template_builds == 2

    def test_reuse_can_be_disabled(self, processor):
        executor = SolveExecutor(
            SolverSettings(
                time_limit=15.0, enable_cache=False, reuse_templates=False
            )
        )
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        outcome = executor.solve_window(graph, processor, 3, d_max, d_min)
        assert outcome.feasible
        assert executor.telemetry.template_builds == 0
        assert executor.telemetry.template_instantiations == 0

    def test_both_paths_reach_the_same_verdict(self, processor):
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        outcomes = []
        for reuse in (True, False):
            executor = SolveExecutor(
                SolverSettings(
                    time_limit=15.0,
                    enable_cache=False,
                    reuse_templates=reuse,
                )
            )
            outcomes.append(
                executor.solve_window(graph, processor, 3, d_max, d_min)
            )
        templated, fresh = outcomes
        assert templated.feasible == fresh.feasible

    def test_template_fingerprint_matches_fresh_cache_key(self, processor):
        """A warm cache from the template path must hit on fresh builds."""
        graph = ar_filter()
        d_max, d_min = window(graph, 3)
        executor = SolveExecutor(SolverSettings(time_limit=15.0))
        executor.solve_window(graph, processor, 3, d_max, d_min)
        cold = SolveExecutor(
            SolverSettings(time_limit=15.0, reuse_templates=False),
            cache=executor.cache,
        )
        replay = cold.solve_window(graph, processor, 3, d_max, d_min)
        assert replay.cache_hit
