"""The persistent SQLite solve cache: rules, durability, resilience."""

from __future__ import annotations

import sqlite3
from pathlib import Path

import pytest

from repro.core.solution import PartitionedDesign, Placement
from repro.solve.cache import SolveCache, TieredSolveCache
from repro.solve.disk_cache import SCHEMA_VERSION, DiskSolveCache
from repro.solve.fingerprint import ModelFingerprint
from repro.taskgraph import DesignPoint, TaskGraph


@pytest.fixture
def graph() -> TaskGraph:
    g = TaskGraph("pair")
    g.add_task("a", (DesignPoint(area=10, latency=5, name="dp"),))
    g.add_task("b", (DesignPoint(area=20, latency=7),))  # unnamed point
    g.add_edge("a", "b", 4)
    return g


@pytest.fixture
def design(graph) -> PartitionedDesign:
    return PartitionedDesign(
        graph,
        {
            "a": Placement(1, graph.task("a").design_points[0]),
            "b": Placement(2, graph.task("b").design_points[0]),
        },
    )


def fp(d_min: float, d_max: float, base: str = "base0") -> ModelFingerprint:
    return ModelFingerprint(
        base=base, num_partitions=2, d_min=d_min, d_max=d_max
    )


class TestVerdictRules:
    def test_exact_replay(self, tmp_path, graph, design):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        cache.store_feasible(fp(0.0, 100.0), design, 52.0, backend="highs")
        hit = cache.lookup(fp(0.0, 100.0), graph=graph)
        assert hit is not None
        assert hit.rule == "exact"
        assert hit.tier == "disk"
        assert hit.verdict.achieved == 52.0
        assert hit.verdict.design is not None

    def test_monotone_feasible_certificate(self, tmp_path, graph, design):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        hit = cache.lookup(fp(40.0, 60.0), graph=graph)
        assert hit is not None and hit.rule == "feasible"
        # Window excluding the achieved latency must NOT hit.
        assert cache.lookup(fp(0.0, 50.0), graph=graph) is None

    def test_monotone_infeasible_containment(self, tmp_path, graph):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        cache.store_infeasible(fp(0.0, 40.0))
        assert cache.lookup(fp(5.0, 30.0), graph=graph).rule == "infeasible"
        # A window extending past the proven-empty one must not hit.
        assert cache.lookup(fp(5.0, 50.0), graph=graph) is None

    def test_decoded_design_round_trips_unnamed_points(
        self, tmp_path, graph, design
    ):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        hit = cache.lookup(fp(0.0, 100.0), graph=graph)
        decoded = hit.verdict.design
        assert decoded.as_assignment() == design.as_assignment()

    def test_lookup_without_graph_skips_feasible_designs(
        self, tmp_path, design
    ):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        # No graph -> stored assignment cannot be decoded into a
        # certificate; the lookup must miss rather than fabricate one.
        assert cache.lookup(fp(0.0, 100.0)) is None


class TestDurability:
    def test_verdicts_survive_reopen(self, tmp_path, graph, design):
        path = tmp_path / "c.sqlite"
        DiskSolveCache(path).store_feasible(fp(0.0, 100.0), design, 52.0)
        reopened = DiskSolveCache(path)
        assert reopened.lookup(fp(0.0, 100.0), graph=graph).rule == "exact"
        assert reopened.stats()["entries"] == 1

    def test_duplicate_store_is_idempotent(self, tmp_path, design):
        cache = DiskSolveCache(tmp_path / "c.sqlite")
        for _ in range(3):
            cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        assert cache.stats()["entries"] == 1

    def test_eviction_keeps_recently_used(self, tmp_path, graph, design):
        cache = DiskSolveCache(tmp_path / "c.sqlite", max_entries=10)
        for i in range(12):
            cache.store_infeasible(fp(0.0, 10.0 + i, base=f"b{i}"))
        stats = cache.stats()
        assert stats["entries"] <= 10
        assert stats["evictions"] > 0

    def test_corrupted_file_is_moved_aside_and_recreated(
        self, tmp_path, graph, design
    ):
        path = tmp_path / "c.sqlite"
        cache = DiskSolveCache(path)
        cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        cache.close()
        # Scrub the WAL sidecars too, or SQLite transparently heals the
        # mangled main file from the journal.
        for suffix in ("-wal", "-shm"):
            sidecar = Path(str(path) + suffix)
            if sidecar.exists():
                sidecar.unlink()
        path.write_bytes(b"this is not a sqlite database at all")
        recovered = DiskSolveCache(path)
        assert recovered.stats()["recovered"] is True
        assert recovered.lookup(fp(0.0, 100.0), graph=graph) is None
        # The fresh store is fully usable afterwards.
        recovered.store_infeasible(fp(0.0, 10.0))
        assert recovered.lookup(fp(1.0, 9.0), graph=graph) is not None

    def test_schema_mismatch_drops_and_recreates(self, tmp_path, design):
        path = tmp_path / "c.sqlite"
        cache = DiskSolveCache(path)
        cache.store_feasible(fp(0.0, 100.0), design, 52.0)
        cache.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        fresh = DiskSolveCache(path)
        assert fresh.stats()["entries"] == 0
        assert fresh.stats()["schema_version"] == SCHEMA_VERSION


class TestTiered:
    def test_disk_hit_promotes_to_memory(self, tmp_path, graph, design):
        path = tmp_path / "c.sqlite"
        DiskSolveCache(path).store_feasible(fp(0.0, 100.0), design, 52.0)
        tiered = TieredSolveCache(SolveCache(), DiskSolveCache(path))
        first = tiered.lookup(fp(0.0, 100.0), graph=graph)
        assert first.tier == "disk"
        second = tiered.lookup(fp(0.0, 100.0), graph=graph)
        assert second.tier == "memory"

    def test_store_writes_through_to_both_tiers(
        self, tmp_path, graph, design
    ):
        path = tmp_path / "c.sqlite"
        tiered = TieredSolveCache(SolveCache(), DiskSolveCache(path))
        tiered.store_feasible(fp(0.0, 100.0), design, 52.0)
        # A brand-new process-equivalent sees the verdict on disk.
        assert (
            DiskSolveCache(path)
            .lookup(fp(0.0, 100.0), graph=graph)
            .rule
            == "exact"
        )
        assert tiered.lookup(fp(0.0, 100.0), graph=graph).tier == "memory"
