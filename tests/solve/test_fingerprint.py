"""Canonical model fingerprints: identity, windows, perturbations."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core.formulation import FormulationOptions, build_model
from repro.solve import ModelFingerprint, fingerprint_model
from repro.taskgraph import ar_filter


@pytest.fixture
def processor() -> ReconfigurableProcessor:
    return ReconfigurableProcessor(400, 128, 20.0)


def fp(graph, processor, n=3, d_max=700.0, d_min=300.0, options=None):
    return fingerprint_model(
        build_model(graph, processor, n, d_max, d_min, options)
    )


class TestFingerprintIdentity:
    def test_same_model_same_fingerprint(self, processor):
        a = fp(ar_filter(), processor)
        b = fp(ar_filter(), processor)
        assert a == b
        assert a.base == b.base

    def test_window_is_not_part_of_the_base(self, processor):
        a = fp(ar_filter(), processor, d_max=700.0)
        b = fp(ar_filter(), processor, d_max=650.0)
        assert a.same_model(b)
        assert a != b                      # the window still distinguishes
        assert a.window == (300.0, 700.0)
        assert b.window == (300.0, 650.0)

    def test_perturbed_capacity_changes_base(self, processor):
        a = fp(ar_filter(), processor)
        b = fp(ar_filter(), ReconfigurableProcessor(401, 128, 20.0))
        assert not a.same_model(b)

    def test_perturbed_memory_changes_base(self, processor):
        a = fp(ar_filter(), processor)
        b = fp(ar_filter(), ReconfigurableProcessor(400, 127, 20.0))
        assert not a.same_model(b)

    def test_partition_count_changes_base(self, processor):
        a = fp(ar_filter(), processor, n=3)
        b = fp(ar_filter(), processor, n=4)
        assert not a.same_model(b)
        assert (a.num_partitions, b.num_partitions) == (3, 4)

    def test_formulation_options_change_base(self, processor):
        a = fp(ar_filter(), processor)
        b = fp(
            ar_filter(), processor,
            options=FormulationOptions(include_env_memory=False),
        )
        assert not a.same_model(b)

    def test_str_is_compact(self, processor):
        text = str(fp(ar_filter(), processor))
        assert "@N3[300,700]" in text


class TestFingerprintValue:
    def test_same_model_helper(self):
        a = ModelFingerprint("abc", 3, 1.0, 2.0)
        b = ModelFingerprint("abc", 3, 5.0, 9.0)
        c = ModelFingerprint("def", 3, 1.0, 2.0)
        assert a.same_model(b)
        assert not a.same_model(c)
