"""SolverSettings presets are field-identical to hand-built settings."""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.core import SolverSettings

ACCEL = SolverSettings.ACCELERATION_FLAGS


def hand_built_fast(**overrides) -> SolverSettings:
    kwargs: dict = {"portfolio": ("highs", "bnb")}
    kwargs.update({flag: True for flag in ACCEL})
    kwargs.update(overrides)
    return SolverSettings(**kwargs)


def hand_built_paper_exact(**overrides) -> SolverSettings:
    kwargs: dict = {
        "use_lp_bound": False,
        "guide_with_objective": False,
        "heuristic_fallback": False,
    }
    kwargs.update({flag: False for flag in ACCEL})
    kwargs.update(overrides)
    return SolverSettings(**kwargs)


def hand_built_debug(**overrides) -> SolverSettings:
    kwargs: dict = {
        "analyze": "strict",
        "enable_cache": False,
        "heuristic_fallback": False,
    }
    kwargs.update(overrides)
    return SolverSettings(**kwargs)


PRESETS = [
    (SolverSettings.fast, hand_built_fast),
    (SolverSettings.paper_exact, hand_built_paper_exact),
    (SolverSettings.debug, hand_built_debug),
]

# A small property-test space: every combination of these overrides must
# round-trip through each preset exactly as through the constructor.
OVERRIDE_SPACE = [
    {},
    {"time_limit": 5.0},
    {"backend": "bnb"},
    {"cache_path": "/tmp/cache.sqlite"},
    {"enable_cache": False, "time_limit": None},
    {"portfolio": None},
    {"incumbent_reuse": True},
    {"symmetry_breaking": False},
]


def field_values(settings: SolverSettings) -> dict:
    return {
        f.name: getattr(settings, f.name)
        for f in dataclasses.fields(settings)
        if f.compare
    }


@pytest.mark.parametrize(
    ("preset", "hand_built"), PRESETS, ids=["fast", "paper_exact", "debug"]
)
@pytest.mark.parametrize(
    "overrides", OVERRIDE_SPACE, ids=[str(i) for i in range(len(OVERRIDE_SPACE))]
)
def test_preset_equals_hand_built(preset, hand_built, overrides):
    assert field_values(preset(**overrides)) == field_values(
        hand_built(**overrides)
    )


@pytest.mark.parametrize(
    ("preset", "hand_built"), PRESETS, ids=["fast", "paper_exact", "debug"]
)
def test_overrides_win_over_preset_choices(preset, hand_built):
    # Flip every preset-controlled flag back: the constructor keyword
    # must dominate the preset's opinion.
    flips = {flag: not getattr(preset(), flag) for flag in ACCEL}
    built = preset(**flips)
    for flag, value in flips.items():
        assert getattr(built, flag) is value


def test_fast_races_a_portfolio_with_all_accelerations():
    settings = SolverSettings.fast()
    assert settings.portfolio == ("highs", "bnb")
    assert all(getattr(settings, flag) for flag in ACCEL)


def test_paper_exact_disables_every_extension():
    settings = SolverSettings.paper_exact()
    assert settings.use_lp_bound is False
    assert settings.guide_with_objective is False
    assert settings.heuristic_fallback is False
    assert not any(getattr(settings, flag) for flag in ACCEL)
    # Trajectory-preserving machinery stays on.
    assert settings.enable_cache is True
    assert settings.reuse_templates is True


def test_debug_is_strict_and_uncached():
    settings = SolverSettings.debug()
    assert settings.analyze == "strict"
    assert settings.enable_cache is False
    assert settings.heuristic_fallback is False


def test_presets_are_plain_constructions_not_special_instances():
    # Nothing about a preset instance is distinguishable from a
    # hand-built one: equality, hash-ability via frozen dataclass, and
    # dataclasses.replace all behave identically.
    for preset, hand_built in PRESETS:
        a, b = preset(), hand_built()
        assert a == b
        assert dataclasses.replace(a, time_limit=1.0) == dataclasses.replace(
            b, time_limit=1.0
        )


def test_acceleration_flags_are_real_fields():
    names = {f.name for f in dataclasses.fields(SolverSettings)}
    assert set(ACCEL) <= names
    # Exhaustive pairwise distinctness: toggling any one flag changes
    # equality (guards against a flag silently dropping out of compare).
    for flag_a, flag_b in itertools.combinations(ACCEL, 2):
        assert SolverSettings(**{flag_a: True}) != SolverSettings(
            **{flag_b: True}
        )
