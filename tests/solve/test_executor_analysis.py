"""Pre-solve analysis wired into the executor (SolverSettings.analyze)."""

import pytest

from repro.analysis import ModelAnalysisError
from repro.arch import ReconfigurableProcessor
from repro.core import bounds
from repro.core.reduce_latency import SolverSettings
from repro.obs import MemorySink, Tracer
from repro.solve.executor import SolveExecutor
from repro.taskgraph.library import ar_filter


@pytest.fixture(scope="module")
def problem():
    graph = ar_filter()
    processor = ReconfigurableProcessor(
        resource_capacity=400.0,
        memory_capacity=128.0,
        reconfiguration_time=20.0,
        name="xc6264",
    )
    d_max = bounds.max_latency(graph, 3, processor.reconfiguration_time)
    return graph, processor, d_max


class TestAnalyzeModes:
    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="analyze mode"):
            SolveExecutor(SolverSettings(analyze="aggressive"))

    def test_off_mode_runs_no_analysis(self, problem):
        graph, processor, d_max = problem
        executor = SolveExecutor(SolverSettings(analyze="off"))
        outcome = executor.solve_window(graph, processor, 3, d_max, 0.0)
        assert outcome.feasible
        assert executor.telemetry.analysis_runs == 0

    def test_warn_mode_counts_clean_pass_and_solves(self, problem):
        graph, processor, d_max = problem
        executor = SolveExecutor(SolverSettings(analyze="warn"))
        outcome = executor.solve_window(graph, processor, 3, d_max, 0.0)
        assert outcome.feasible
        assert executor.telemetry.analysis_runs == 1
        assert executor.telemetry.analysis_errors == 0
        payload = executor.telemetry.to_dict(include_solves=False)
        assert payload["analysis_runs"] == 1

    def test_warn_mode_reports_but_does_not_abort(self, problem):
        graph, processor, _ = problem
        executor = SolveExecutor(SolverSettings(analyze="warn"))
        # d_max below C_T: the latency_ub row is trivially infeasible.
        outcome = executor.solve_window(graph, processor, 3, 1.0, 0.0)
        assert not outcome.feasible
        assert executor.telemetry.analysis_errors >= 1

    def test_strict_mode_passes_clean_models_through(self, problem):
        graph, processor, d_max = problem
        executor = SolveExecutor(SolverSettings(analyze="strict"))
        outcome = executor.solve_window(graph, processor, 3, d_max, 0.0)
        assert outcome.feasible


class TestStrictAbort:
    def test_aborts_before_any_backend_attempt(self, problem):
        graph, processor, _ = problem
        executor = SolveExecutor(SolverSettings(analyze="strict"))
        with pytest.raises(ModelAnalysisError) as excinfo:
            executor.solve_window(graph, processor, 3, 1.0, 0.0)
        # The report rides on the exception with the failing equation.
        report = excinfo.value.report
        assert not report.ok
        assert any(d.paper_eq == "(9)" for d in report.errors)
        # No backend ever ran: the abort happened pre-race.
        assert executor.telemetry.backend_wall == {}
        assert executor.telemetry.total_solves == 0
        assert executor.telemetry.analysis_errors >= 1

    def test_tracer_records_the_analysis_span(self, problem):
        graph, processor, _ = problem
        sink = MemorySink()
        settings = SolverSettings(analyze="strict", tracer=Tracer(sink))
        executor = SolveExecutor(settings)
        with pytest.raises(ModelAnalysisError):
            executor.solve_window(graph, processor, 3, 1.0, 0.0)
        names = [e["name"] for e in sink.events]
        assert "model_analyze" in names
        assert "analyzer_diagnostic" in names
