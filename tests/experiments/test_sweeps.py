"""Unit tests for the reconfiguration sweep harness."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings
from repro.experiments import reconfiguration_sweep, sweep_table
from repro.taskgraph import layered_graph


@pytest.fixture(scope="module")
def sweep_points():
    graph = layered_graph(2, 2, seed=3)
    base = ReconfigurableProcessor(700, 512, 0.0)
    return reconfiguration_sweep(
        graph,
        base,
        (0.0, 50_000.0),
        config=RefinementConfig(gamma=1, delta_fraction=0.05,
                                time_budget=60.0),
        settings=SolverSettings(time_limit=15.0),
    )


class TestSweep:
    def test_one_point_per_ct(self, sweep_points):
        assert [p.reconfiguration_time for p in sweep_points] == [
            0.0, 50_000.0
        ]

    def test_points_feasible(self, sweep_points):
        assert all(p.partitions is not None for p in sweep_points)
        assert all(p.total_latency is not None for p in sweep_points)

    def test_greedy_baseline_recorded(self, sweep_points):
        assert all(p.greedy_partitions >= 1 for p in sweep_points)
        for p in sweep_points:
            assert p.total_latency <= p.greedy_latency + 1e-6

    def test_zero_ct_total_equals_execution(self, sweep_points):
        zero = sweep_points[0]
        assert zero.total_latency == pytest.approx(zero.execution_latency)

    def test_table_rendering(self, sweep_points):
        table = sweep_table(sweep_points, "demo sweep")
        text = table.render()
        assert "C_T (ns)" in text
        assert len(table.rows) == 2
