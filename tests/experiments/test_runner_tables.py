"""Tests for the experiment runner and the fast table reproductions.

The expensive DCT sweeps (Tables 3-8) live in ``benchmarks/``; here we
exercise the harness itself plus the cheap experiments (Tables 1 and 2)
and a budget-capped smoke run of one DCT experiment.
"""

import pytest

from repro.core import SolverSettings
from repro.experiments import (
    DCT_EXPERIMENTS,
    DctExperiment,
    run_experiment,
    table1_ar_filter,
    table2_design_points,
)
from repro.taskgraph import dct_4x4


class TestTable1:
    def test_iterative_matches_optimal(self):
        result = table1_ar_filter(
            settings=SolverSettings(time_limit=15.0)
        )
        assert result.matches
        assert result.iterative_latency == pytest.approx(510.0)

    def test_table_renders_with_inf_rows(self):
        result = table1_ar_filter(
            settings=SolverSettings(time_limit=15.0)
        )
        text = result.table.render()
        assert "Inf." in text          # bisection probes below optimum
        assert "match" in text


class TestTable2:
    def test_design_point_rows(self):
        table = table2_design_points()
        assert len(table.rows) == 6     # 2 kinds x 3 points
        text = table.render()
        assert "T1" in text and "T2" in text
        assert "4,160" in text.replace(" ", ",")


class TestRunner:
    def test_experiment_processor_construction(self):
        experiment = DctExperiment(
            table="T", resource_capacity=576,
            reconfiguration_time=30.0, delta=200.0,
        )
        processor = experiment.processor()
        assert processor.resource_capacity == 576
        assert processor.reconfiguration_time == 30.0

    def test_registry_covers_tables_3_to_8(self):
        assert sorted(DCT_EXPERIMENTS) == [3, 4, 5, 6, 7, 8]

    def test_budget_capped_dct_run(self):
        """A heavily capped run still produces a well-formed trace."""
        experiment = DctExperiment(
            table="smoke",
            resource_capacity=1024,
            reconfiguration_time=10e6,
            delta=3000.0,
            alpha=0,
            gamma=0,
            solver=SolverSettings(time_limit=20.0),
            time_budget=90.0,
        )
        result = run_experiment(experiment, dct_4x4())
        assert result.iterations >= 1
        table_text = result.table().render()
        assert "N" in table_text
        if result.best_latency is not None:
            assert result.best_partitions >= 5
            # Rendering without overhead shows execution-only latencies.
            assert result.best_latency > 10e6  # includes reconfigurations
