"""Unit tests for the text-table renderer."""

import pytest

from repro.experiments import TextTable, format_value


class TestFormatValue:
    def test_none_is_inf(self):
        assert format_value(None) == "Inf."

    def test_integral_float(self):
        assert format_value(25440.0) == "25,440"

    def test_fractional_float(self):
        assert format_value(12.345, precision=1) == "12.3"

    def test_int_with_separators(self):
        assert format_value(1000000) == "1,000,000"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable("Demo", ("A", "Longer"))
        table.add_row(1, 22222)
        table.add_row(333, None)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        # All body lines have equal width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1
        assert "Inf." in text

    def test_wrong_cell_count_rejected(self):
        table = TextTable("Demo", ("A", "B"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_footer_rendered(self):
        table = TextTable("Demo", ("A",))
        table.add_row(1)
        table.footer = "note"
        assert table.render().endswith("note")

    def test_empty_table_renders_header(self):
        table = TextTable("Empty", ("Col",))
        text = table.render()
        assert "Col" in text

    def test_str_is_render(self):
        table = TextTable("Demo", ("A",))
        table.add_row(5)
        assert str(table) == table.render()
