"""Unit tests for the experiment runner plumbing (no heavy solving)."""

import pytest

from repro.core import RefinementConfig, SolverSettings
from repro.experiments import DctExperiment, LARGE_CT, SMALL_CT


class TestDctExperiment:
    def test_processor_carries_parameters(self):
        experiment = DctExperiment(
            table="X",
            resource_capacity=1024,
            reconfiguration_time=SMALL_CT,
            delta=200.0,
            memory_capacity=4096,
        )
        processor = experiment.processor()
        assert processor.resource_capacity == 1024
        assert processor.memory_capacity == 4096
        assert processor.reconfiguration_time == SMALL_CT

    def test_config_carries_search_parameters(self):
        experiment = DctExperiment(
            table="X",
            resource_capacity=576,
            reconfiguration_time=LARGE_CT,
            delta=100.0,
            alpha=2,
            gamma=3,
            time_budget=42.0,
        )
        config = experiment.config()
        assert isinstance(config, RefinementConfig)
        assert config.alpha == 2
        assert config.gamma == 3
        assert config.delta == 100.0
        assert config.time_budget == 42.0

    def test_frozen(self):
        experiment = DctExperiment(
            table="X", resource_capacity=576,
            reconfiguration_time=SMALL_CT, delta=1.0,
        )
        with pytest.raises(AttributeError):
            experiment.delta = 2.0

    def test_ct_constants_regimes(self):
        # Small: nanoseconds; large: 10 ms expressed in ns.
        assert SMALL_CT == 30.0
        assert LARGE_CT == 10e6
        assert LARGE_CT / SMALL_CT > 1e5

    def test_default_solver_settings(self):
        experiment = DctExperiment(
            table="X", resource_capacity=576,
            reconfiguration_time=SMALL_CT, delta=1.0,
        )
        assert isinstance(experiment.solver, SolverSettings)
