"""Tests for the figure reconstructions (Figures 3-6)."""

import pytest

from repro.experiments import (
    figure3_memory_model,
    figure4_partition_latency,
    figure5_ar_graph,
    figure6_dct_graph,
)


class TestFigure3:
    def test_analytic_memory_matches_hand_count(self):
        result = figure3_memory_model()
        # Boundary 2: t1->t3 (4) + t2->t3 (6) + t1->t4 (2) = 12.
        assert result.analytic_memory[2] == pytest.approx(12.0)
        # Boundary 3: t1->t4 (2) + t3->t5 (8) = 10.
        assert result.analytic_memory[3] == pytest.approx(10.0)

    def test_ilp_w_variables_agree(self):
        result = figure3_memory_model()
        assert result.consistent
        # The double-crossing edge t1->t4 sets w at both boundaries.
        assert result.ilp_w[(2, "t1", "t4")] == pytest.approx(1.0)
        assert result.ilp_w[(3, "t1", "t4")] == pytest.approx(1.0)
        # A same-partition edge never crosses.
        assert result.ilp_w[(2, "t4", "t5")] == pytest.approx(0.0)

    def test_table_renders(self):
        text = figure3_memory_model().table.render()
        assert "Boundary" in text


class TestFigure4:
    def test_partition_latencies_match_paper(self):
        result = figure4_partition_latency()
        assert result.d1 == pytest.approx(400.0)
        assert result.d2 == pytest.approx(300.0)

    def test_design_is_consistent(self):
        result = figure4_partition_latency()
        assert result.design.execution_latency() == pytest.approx(700.0)


class TestGraphFigures:
    def test_figure5_dot(self):
        dot = figure5_ar_graph()
        assert dot.startswith('digraph "ar_filter"')
        assert '"T1"' in dot

    def test_figure6_dot(self):
        dot = figure6_dct_graph()
        assert dot.startswith('digraph "dct_4x4"')
        assert dot.count("->") == 64
