"""Tests for ExperimentResult presentation (no solving involved)."""

import pytest

from repro.core.refine_partitions import RefinementResult
from repro.core.trace import IterationRecord, SearchTrace
from repro.experiments import DctExperiment, ExperimentResult, SMALL_CT


def fabricated_result(records, design=None, achieved=None):
    trace = SearchTrace()
    trace.extend(records)
    experiment = DctExperiment(
        table="Table X",
        resource_capacity=576,
        reconfiguration_time=SMALL_CT,
        delta=200.0,
    )
    refinement = RefinementResult(
        design=design,
        achieved=achieved,
        trace=trace,
        explored_partitions=tuple(r.num_partitions for r in records),
        delta=200.0,
    )
    return ExperimentResult(
        experiment=experiment, result=refinement, wall_time=1.5
    )


def rec(n, i, d_max, d_min, achieved):
    return IterationRecord(
        num_partitions=n, iteration=i, d_max=d_max, d_min=d_min,
        achieved=achieved,
    )


class TestTableRendering:
    def test_overhead_stripped_by_default(self):
        # N = 8, C_T = 30: the overhead is 240.
        result = fabricated_result(
            [rec(8, 1, 1240.0, 340.0, 1040.0)], achieved=1040.0
        )
        table = result.table()
        n, i, d_min, d_max, achieved = table.rows[0]
        assert (n, i) == (8, 1)
        assert d_min == pytest.approx(100.0)
        assert d_max == pytest.approx(1000.0)
        assert achieved == pytest.approx(800.0)

    def test_overhead_kept_on_request(self):
        result = fabricated_result(
            [rec(8, 1, 1240.0, 340.0, 1040.0)], achieved=1040.0
        )
        table = result.table(include_overhead=True)
        _n, _i, d_min, d_max, achieved = table.rows[0]
        assert d_min == pytest.approx(340.0)
        assert d_max == pytest.approx(1240.0)
        assert achieved == pytest.approx(1040.0)

    def test_infeasible_footer(self):
        result = fabricated_result(
            [rec(8, 1, 1240.0, 340.0, None)]
        )
        table = result.table()
        assert "infeasible" in table.footer

    def test_accessors_for_infeasible_run(self):
        result = fabricated_result([rec(8, 1, 1.0, 0.0, None)])
        assert result.best_latency is None
        assert result.best_partitions is None
        assert result.iterations == 1
