"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import SolverSettings
from repro.taskgraph import DesignPoint, TaskGraph, ar_filter, dct_4x4


@pytest.fixture
def ar_graph() -> TaskGraph:
    return ar_filter()


@pytest.fixture
def dct_graph() -> TaskGraph:
    return dct_4x4()


@pytest.fixture
def ar_device() -> ReconfigurableProcessor:
    """The device the AR-filter study uses."""
    return ReconfigurableProcessor(
        resource_capacity=400,
        memory_capacity=128,
        reconfiguration_time=20.0,
        name="ar_device",
    )


@pytest.fixture
def fast_settings() -> SolverSettings:
    """Solver settings that keep unit tests quick."""
    return SolverSettings(backend="highs", time_limit=10.0)


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """A 4-task diamond with two design points per task."""
    graph = TaskGraph("diamond")
    for name in ("a", "b", "c", "d"):
        graph.add_task(
            name,
            (
                DesignPoint(area=100, latency=50, name="small"),
                DesignPoint(area=180, latency=25, name="big"),
            ),
        )
    graph.add_edge("a", "b", 4)
    graph.add_edge("a", "c", 4)
    graph.add_edge("b", "d", 4)
    graph.add_edge("c", "d", 4)
    graph.set_env_input("a", 8)
    graph.set_env_output("d", 8)
    return graph


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 3-task chain with one design point per task."""
    graph = TaskGraph("chain")
    for i, (area, latency) in enumerate(((100, 10), (150, 20), (120, 30))):
        graph.add_task(
            f"t{i}", (DesignPoint(area=area, latency=latency, name="dp1"),)
        )
    graph.add_edge("t0", "t1", 2)
    graph.add_edge("t1", "t2", 3)
    return graph
