"""Metrics registry, snapshot algebra and the null object.

The merge-commutativity and dict round-trip properties are load-bearing:
the sharded service relies on them when worker snapshots are absorbed in
an order unrelated to worker timing, so both are property-tested over
randomly generated instrument programs.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, strategies as st

from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    as_metrics,
)
from repro.solve.telemetry import RunTelemetry


class TestCounter:
    def test_unlabeled_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(2.0)
        assert registry.snapshot().value("jobs_total") == 3.0

    def test_labeled_counter_separates_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", ("tier",))
        counter.labels("memory").inc()
        counter.labels("disk").inc(4)
        snapshot = registry.snapshot()
        assert snapshot.value("hits_total", "memory") == 1.0
        assert snapshot.value("hits_total", "disk") == 4.0
        assert snapshot.total("hits_total") == 5.0

    def test_keyword_labels_resolve_in_declared_order(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("a", "b"))
        counter.labels(b="2", a="1").inc()
        assert registry.snapshot().value("c_total", "1", "2") == 1.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_unlabeled_use_of_labeled_family_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("a",))
        with pytest.raises(ValueError, match="labels"):
            counter.inc()

    def test_wrong_label_arity_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("a",))
        with pytest.raises(ValueError):
            counter.labels("x", "y")
        with pytest.raises(ValueError):
            counter.labels(b="x")

    def test_mixing_positional_and_keyword_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("a", "b"))
        with pytest.raises(ValueError, match="not both"):
            counter.labels("x", b="y")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "")
        gauge.set(10)
        gauge.inc()
        gauge.dec(3)
        assert registry.snapshot().value("depth") == 8.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "", buckets=(1.0, 5.0))
        for value in (0.5, 2.0, 99.0):
            histogram.observe(value)
        snapshot = registry.snapshot()
        assert snapshot.histogram_stats("t_seconds") == (3, 101.5)
        counts, total, count = snapshot.family("t_seconds")["samples"][()]
        assert counts == (1, 1, 1)  # <=1, <=5, +Inf overflow

    def test_observation_on_bucket_boundary_counts_in_that_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "", buckets=(1.0, 5.0))
        histogram.observe(1.0)
        counts, _, _ = registry.snapshot().family("t_seconds")["samples"][()]
        assert counts == (1, 0, 0)

    def test_default_buckets_are_the_shared_seconds_scale(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "")
        assert histogram.bounds == DEFAULT_SECONDS_BUCKETS

    def test_quantile_estimates_bucket_upper_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "", buckets=(1.0, 5.0))
        for _ in range(9):
            histogram.observe(0.5)
        histogram.observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot.quantile("t_seconds", 0.5) == 1.0
        assert snapshot.quantile("t_seconds", 0.99) == 5.0

    def test_empty_or_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a_seconds", "", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b_seconds", "", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total", "") is registry.counter(
            "c_total", ""
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", "")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("a",))
        with pytest.raises(ValueError, match="different"):
            registry.counter("x_total", "", ("b",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("x_seconds", "", buckets=(1.0,))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("x_seconds", "", buckets=(2.0,))

    def test_concurrent_updates_do_not_lose_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("t",))

        def bump(i: int) -> None:
            child = counter.labels(str(i % 2))
            for _ in range(500):
                child.inc()

        threads = [
            threading.Thread(target=bump, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.snapshot().total("c_total") == 8 * 500

    def test_absorb_adds_samples_into_live_registry(self):
        worker = MetricsRegistry()
        worker.counter("c_total", "h", ("a",)).labels("x").inc(3)
        worker.histogram("t_seconds", "h", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("c_total", "h", ("a",)).labels("x").inc()
        parent.absorb(worker.snapshot())
        parent.absorb(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot.value("c_total", "x") == 7.0
        assert snapshot.histogram_stats("t_seconds") == (2, 1.0)

    def test_absorbing_registry_equals_snapshot_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total", "h").inc(2)
        b.counter("c_total", "h").inc(5)
        b.gauge("g", "h").set(-1)
        parent = MetricsRegistry()
        parent.absorb(a.snapshot())
        parent.absorb(b.snapshot())
        assert parent.snapshot() == a.snapshot().merge(b.snapshot())


class TestNullMetrics:
    def test_disabled_and_inert(self):
        assert not NULL_METRICS.enabled
        counter = NULL_METRICS.counter("c_total", "", ("a",))
        counter.labels("x").inc()
        counter.inc(5)
        gauge = NULL_METRICS.gauge("g", "")
        gauge.set(1)
        gauge.dec()
        NULL_METRICS.histogram("h_seconds", "").observe(0.1)
        assert NULL_METRICS.snapshot() == MetricsSnapshot.empty()

    def test_absorb_is_a_misuse_guard(self):
        with pytest.raises(ValueError, match="discards everything"):
            NULL_METRICS.absorb(MetricsSnapshot.empty())

    def test_as_metrics_coercion(self):
        assert as_metrics(None) is NULL_METRICS
        assert as_metrics(NULL_METRICS) is NULL_METRICS
        registry = MetricsRegistry()
        assert as_metrics(registry) is registry


class TestSnapshotAlgebra:
    def test_round_trip_preserves_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help me", ("a",)).labels("x").inc(2)
        registry.gauge("g", "").set(-3.5)
        registry.histogram("t_seconds", "", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert MetricsSnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_to_dict_is_json_safe_and_versioned(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", "").inc()
        payload = registry.snapshot().to_dict()
        assert payload["schema_version"] == 1
        json.dumps(payload)

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            MetricsSnapshot.from_dict({"schema_version": 99, "metrics": []})

    def test_merge_sums_disjoint_and_shared_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared_total", "", ("t",)).labels("x").inc(1)
        b.counter("shared_total", "", ("t",)).labels("x").inc(2)
        b.counter("shared_total", "", ("t",)).labels("y").inc(4)
        a.counter("only_a_total", "").inc()
        merged = a.snapshot().merge(b.snapshot())
        assert merged.value("shared_total", "x") == 3.0
        assert merged.value("shared_total", "y") == 4.0
        assert merged.value("only_a_total") == 1.0

    def test_merge_metadata_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total", "", ("a",)).labels("1").inc()
        b.counter("x_total", "", ("b",)).labels("1").inc()
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())


# -- property tests ----------------------------------------------------------

_LABELS = st.sampled_from(["highs", "bnb", "memory", "disk", "exact"])

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("counter"),
            st.sampled_from(["a_total", "b_total"]),
            _LABELS,
            st.integers(min_value=0, max_value=50),
        ),
        st.tuples(
            st.just("gauge"),
            st.sampled_from(["g", "h"]),
            _LABELS,
            st.integers(min_value=-50, max_value=50),
        ),
        st.tuples(
            st.just("histogram"),
            st.sampled_from(["t_seconds", "u_seconds"]),
            _LABELS,
            # Dyadic rationals: float addition over them is exact, so
            # the associativity property holds with == (commutativity
            # would hold for any floats; associativity would not).
            st.integers(min_value=0, max_value=400).map(lambda i: i / 4.0),
        ),
    ),
    max_size=30,
)


def _run_program(ops) -> MetricsSnapshot:
    registry = MetricsRegistry()
    for kind, name, label, value in ops:
        if kind == "counter":
            registry.counter(name, "h", ("l",)).labels(label).inc(value)
        elif kind == "gauge":
            registry.gauge(name, "h", ("l",)).labels(label).inc(value)
        else:
            registry.histogram(name, "h", ("l",), buckets=(1.0, 10.0)).labels(
                label
            ).observe(value)
    return registry.snapshot()


class TestSnapshotProperties:
    @given(_OPS, _OPS)
    def test_merge_is_commutative(self, ops_a, ops_b):
        a, b = _run_program(ops_a), _run_program(ops_b)
        assert a.merge(b) == b.merge(a)

    @given(_OPS, _OPS, _OPS)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        a, b, c = map(_run_program, (ops_a, ops_b, ops_c))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(_OPS)
    def test_dict_round_trip_is_identity(self, ops):
        snapshot = _run_program(ops)
        assert MetricsSnapshot.from_dict(snapshot.to_dict()) == snapshot

    @given(_OPS)
    def test_merge_with_empty_is_identity(self, ops):
        snapshot = _run_program(ops)
        assert snapshot.merge(MetricsSnapshot.empty()) == snapshot
        assert MetricsSnapshot.empty().merge(snapshot) == snapshot


_TELEMETRY_COUNTERS = st.fixed_dictionaries(
    {
        "timeouts": st.integers(min_value=0, max_value=9),
        "fallbacks": st.integers(min_value=0, max_value=9),
        "template_builds": st.integers(min_value=0, max_value=9),
        "incumbent_reuses": st.integers(min_value=0, max_value=9),
        "primal_hits": st.integers(min_value=0, max_value=9),
        "pooled_cuts": st.integers(min_value=0, max_value=9),
        "disk_hits": st.integers(min_value=0, max_value=9),
        "backend_wall": st.dictionaries(
            st.sampled_from(["highs", "bnb"]),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            max_size=2,
        ),
        "backend_wins": st.dictionaries(
            st.sampled_from(["highs", "bnb"]),
            st.integers(min_value=0, max_value=9),
            max_size=2,
        ),
    }
)


def _telemetry(fields) -> RunTelemetry:
    # Copy the generated mappings: ``merge`` updates its target in
    # place, and each property builds several telemetries from the same
    # drawn fields.
    fresh = {
        k: dict(v) if isinstance(v, dict) else v for k, v in fields.items()
    }
    return RunTelemetry(**fresh)


class TestRunTelemetryProperties:
    @given(_TELEMETRY_COUNTERS, _TELEMETRY_COUNTERS)
    def test_merge_counters_are_symmetric(self, fields_a, fields_b):
        ab = _telemetry(fields_a)
        ab.merge(_telemetry(fields_b))
        ba = _telemetry(fields_b)
        ba.merge(_telemetry(fields_a))
        for name in (
            "timeouts",
            "fallbacks",
            "template_builds",
            "incumbent_reuses",
            "primal_hits",
            "pooled_cuts",
            "disk_hits",
            "backend_wall",
            "backend_wins",
            "workers_merged",
        ):
            assert getattr(ab, name) == getattr(ba, name)

    @given(_TELEMETRY_COUNTERS)
    def test_dict_round_trip_restores_counters(self, fields):
        telemetry = _telemetry(fields)
        restored = RunTelemetry.from_dict(
            telemetry.to_dict(include_solves=True)
        )
        for name, value in fields.items():
            assert getattr(restored, name) == value
        assert restored.workers_merged == telemetry.workers_merged
