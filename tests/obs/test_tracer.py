"""Tracer/Span semantics: nesting, parentage, timing, thread safety."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MemorySink, NULL_TRACER, Span, Tracer, as_tracer


def span_ends(sink: MemorySink) -> list[dict]:
    return [e for e in sink.events if e["type"] == "span_end"]


class TestSpanBasics:
    def test_span_emits_start_and_end(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", color="blue") as span:
            assert isinstance(span, Span)
        kinds = [e["type"] for e in sink.events]
        assert kinds == ["span_start", "span_end"]
        end = sink.events[1]
        assert end["name"] == "work"
        assert end["attrs"]["color"] == "blue"
        assert end["status"] == "ok"
        assert end["dur"] >= 0.0

    def test_attributes_set_inside_span_reach_the_end_event(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work") as span:
            span.set("n", 3)
            span.annotate(status_code=200, extra="x")
        end = span_ends(sink)[0]
        assert end["attrs"] == {"n": 3, "status_code": 200, "extra": "x"}

    def test_nested_spans_link_via_thread_local_stack(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        ends = {e["name"]: e for e in span_ends(sink)}
        assert ends["inner"]["parent_id"] == ends["outer"]["span_id"]
        assert ends["outer"]["parent_id"] is None

    def test_explicit_parent_overrides_stack(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a") as a:
            with tracer.span("b", parent=a):
                pass
            with tracer.span("c", parent=a.span_id):
                pass
        ends = {e["name"]: e for e in span_ends(sink)}
        assert ends["b"]["parent_id"] == a.span_id
        assert ends["c"]["parent_id"] == a.span_id

    def test_exception_marks_span_error_and_propagates(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        end = span_ends(sink)[0]
        assert end["status"] == "error"
        assert "kaput" in end["attrs"]["error"]
        # The stack is unwound despite the exception.
        assert tracer.current_span() is None

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer(MemorySink())
        ids = [tracer.span(f"s{i}").span_id for i in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_events_anchor_to_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("orphan")
        with tracer.span("host") as span:
            tracer.event("anchored", key="v")
            span.event("direct")
        events = [e for e in sink.events if e["type"] == "event"]
        assert events[0]["span_id"] is None
        assert events[1]["span_id"] == span.span_id
        assert events[1]["attrs"] == {"key": "v"}
        assert events[2]["span_id"] == span.span_id

    def test_timestamps_are_relative_and_monotone(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ends = span_ends(sink)
        assert 0.0 <= ends[0]["t_start"] <= ends[1]["t_start"]
        assert tracer.wall_epoch > 0


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", parent=7, attr=1)
        with span as s:
            s.set("k", "v")
            s.annotate(a=1)
            s.event("e")
        NULL_TRACER.event("top")
        assert NULL_TRACER.current_span() is None
        assert NULL_TRACER.enabled is False
        NULL_TRACER.close()

    def test_null_tracer_hands_out_one_shared_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_tracer_rejects_sinks(self):
        with pytest.raises(ValueError):
            NULL_TRACER.add_sink(MemorySink())

    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer


class TestCrossThreadParentage:
    def test_worker_spans_nest_under_explicit_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("race") as parent:
            threads = [
                threading.Thread(
                    target=lambda i=i: tracer.span(
                        f"attempt{i}", parent=parent
                    ).__enter__().__exit__(None, None, None)
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        ends = span_ends(sink)
        attempts = [e for e in ends if e["name"].startswith("attempt")]
        assert len(attempts) == 4
        assert all(e["parent_id"] == parent.span_id for e in attempts)

    @settings(max_examples=25, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=6),
        depth=st.integers(min_value=1, max_value=4),
    )
    def test_concurrent_span_trees_nest_correctly(self, workers, depth):
        """Property: spans opened on portfolio-style worker threads form a
        correct tree — every worker's chain hangs off the shared parent,
        ids never collide, and per-thread nesting is preserved."""
        sink = MemorySink()
        tracer = Tracer(sink)
        barrier = threading.Barrier(workers)

        def work(i: int, parent) -> None:
            barrier.wait()
            stack = []
            for level in range(depth):
                span = tracer.span(
                    f"w{i}-d{level}", parent=parent if level == 0 else None
                )
                span.__enter__()
                stack.append(span)
            while stack:
                stack.pop().__exit__(None, None, None)

        with tracer.span("root") as root:
            threads = [
                threading.Thread(target=work, args=(i, root))
                for i in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        ends = span_ends(sink)
        assert len(ends) == workers * depth + 1
        ids = [e["span_id"] for e in ends]
        assert len(set(ids)) == len(ids)
        by_name = {e["name"]: e for e in ends}
        for i in range(workers):
            # Chain base hangs off the root...
            assert by_name[f"w{i}-d0"]["parent_id"] == root.span_id
            # ...and each deeper level off its own thread's previous one,
            # never off another worker's span.
            for level in range(1, depth):
                assert (
                    by_name[f"w{i}-d{level}"]["parent_id"]
                    == by_name[f"w{i}-d{level - 1}"]["span_id"]
                )
