"""Prometheus text exposition: rendering and structural validation."""

from __future__ import annotations

import urllib.request

from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    render_promtext,
    validate_promtext,
)
from repro.obs.promtext import CONTENT_TYPE


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_window_solves_total", "Window solves.", ("backend", "status")
    ).labels("highs", "feasible").inc(3)
    registry.gauge("repro_cut_pool_size", "Pooled cuts.").set(7)
    registry.histogram(
        "repro_window_solve_seconds", "Solve wall time.", buckets=(0.1, 1.0)
    ).observe(0.5)
    return registry


class TestRender:
    def test_families_carry_help_type_and_samples(self):
        text = render_promtext(sample_registry().snapshot())
        assert "# HELP repro_window_solves_total Window solves." in text
        assert "# TYPE repro_window_solves_total counter" in text
        assert (
            'repro_window_solves_total{backend="highs",status="feasible"} 3'
            in text
        )
        assert "# TYPE repro_cut_pool_size gauge" in text
        assert "repro_cut_pool_size 7" in text

    def test_histogram_renders_cumulative_buckets_sum_count(self):
        text = render_promtext(sample_registry().snapshot())
        lines = text.splitlines()
        assert 'repro_window_solve_seconds_bucket{le="0.1"} 0' in lines
        assert 'repro_window_solve_seconds_bucket{le="1"} 1' in lines
        assert 'repro_window_solve_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_window_solve_seconds_sum 0.5" in lines
        assert "repro_window_solve_seconds_count 1" in lines

    def test_output_is_deterministic_and_sorted(self):
        a = render_promtext(sample_registry().snapshot())
        b = render_promtext(sample_registry().snapshot())
        assert a == b
        names = [
            line.split()[2]
            for line in a.splitlines()
            if line.startswith("# TYPE")
        ]
        assert names == sorted(names)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "weird", ("p",)).labels('a"b\\c\nd').inc()
        text = render_promtext(registry.snapshot())
        assert 'x_total{p="a\\"b\\\\c\\nd"} 1' in text
        assert validate_promtext(text) == []

    def test_render_validates_clean(self):
        text = render_promtext(sample_registry().snapshot())
        assert validate_promtext(text) == []


class TestValidate:
    def test_missing_required_metric_reported(self):
        text = render_promtext(sample_registry().snapshot())
        problems = validate_promtext(text, require=("repro_absent_total",))
        assert any("repro_absent_total" in p for p in problems)

    def test_sample_without_type_header_reported(self):
        problems = validate_promtext("orphan_total 1\n")
        assert any("TYPE" in p for p in problems)

    def test_counter_name_convention_enforced(self):
        problems = validate_promtext(
            "# HELP bad counter\n# TYPE bad counter\nbad 1\n"
        )
        assert any("_total" in p for p in problems)

    def test_negative_counter_reported(self):
        problems = validate_promtext(
            "# HELP x_total c\n# TYPE x_total counter\nx_total -1\n"
        )
        assert any("negative" in p for p in problems)

    def test_histogram_without_inf_bucket_reported(self):
        problems = validate_promtext(
            "# HELP h_seconds h\n# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 1\n'
            "h_seconds_sum 0.5\nh_seconds_count 1\n"
        )
        assert any("+Inf" in p for p in problems)

    def test_non_monotone_histogram_reported(self):
        problems = validate_promtext(
            "# HELP h_seconds h\n# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 2\n'
            'h_seconds_bucket{le="+Inf"} 1\n'
            "h_seconds_sum 0.5\nh_seconds_count 1\n"
        )
        assert any("monoton" in p or "cumulative" in p for p in problems)

    def test_malformed_line_reported(self):
        problems = validate_promtext("!!! not a metric line\n")
        assert problems


class TestMetricsServer:
    def test_scrape_metrics_json_and_health(self):
        registry = sample_registry()
        with MetricsServer(registry, port=0) as server:
            text = (
                urllib.request.urlopen(server.url, timeout=5).read().decode()
            )
            assert validate_promtext(
                text, require=("repro_window_solves_total",)
            ) == []
            base = server.url.rsplit("/", 1)[0]
            body = urllib.request.urlopen(
                base + "/metrics.json", timeout=5
            ).read()
            assert b'"schema_version"' in body
            health = urllib.request.urlopen(base + "/healthz", timeout=5)
            assert health.read() == b"ok\n"

    def test_content_type_is_prometheus_text(self):
        with MetricsServer(sample_registry(), port=0) as server:
            response = urllib.request.urlopen(server.url, timeout=5)
            assert response.headers["Content-Type"] == CONTENT_TYPE

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("live_total", "live")
        with MetricsServer(registry, port=0) as server:
            counter.inc()

            def scrape() -> str:
                return (
                    urllib.request.urlopen(server.url, timeout=5)
                    .read()
                    .decode()
                )

            assert "live_total 1" in scrape()
            counter.inc()
            assert "live_total 2" in scrape()

    def test_unknown_path_is_404(self):
        import urllib.error

        with MetricsServer(sample_registry(), port=0) as server:
            base = server.url.rsplit("/", 1)[0]
            try:
                urllib.request.urlopen(base + "/nope", timeout=5)
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:  # pragma: no cover - failure path
                raise AssertionError("expected a 404")

    def test_callable_provider(self):
        from repro.obs import MetricsSnapshot

        snapshot = sample_registry().snapshot()
        with MetricsServer(lambda: snapshot, port=0) as server:
            text = (
                urllib.request.urlopen(server.url, timeout=5).read().decode()
            )
        assert "repro_window_solves_total" in text
        assert isinstance(snapshot, MetricsSnapshot)
