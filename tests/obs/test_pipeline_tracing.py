"""End-to-end tracing of the solve pipeline.

Runs the real combined search with a tracer attached and checks the
promises the observability layer makes: complete span coverage of every
layer, a valid Chrome export, profile times that reconcile with the
always-on telemetry, and — crucially — that tracing changes nothing
about the search itself.
"""

from __future__ import annotations

import pytest

from repro.core import (
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.obs import (
    MemorySink,
    PhaseProfile,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.solve.executor import SolveExecutor


def traced_run(ar_graph, ar_device, **settings_kwargs):
    sink = MemorySink()
    tracer = Tracer(sink)
    settings = SolverSettings(
        time_limit=10.0, tracer=tracer, **settings_kwargs
    )
    result = refine_partitions_bound(
        ar_graph,
        ar_device,
        config=RefinementConfig(gamma=1),
        settings=settings,
    )
    tracer.close()
    return result, sink.events


class TestPipelineSpans:
    def test_every_layer_contributes_spans(self, ar_graph, ar_device):
        result, events = traced_run(ar_graph, ar_device)
        assert result.feasible
        names = {e["name"] for e in events if e["type"] == "span_end"}
        for expected in (
            "refine_partitions",
            "partition_bound",
            "reduce_latency",
            "iteration",
            "solve_window",
            "template_build",
            "template_instantiate",
            "attempt:highs",
            "ilp:highs",
        ):
            assert expected in names, f"missing span {expected!r}"
        event_names = {e["name"] for e in events if e["type"] == "event"}
        assert "window_verdict" in event_names
        assert "backend_win" in event_names

    def test_iteration_count_matches_search_trace(self, ar_graph, ar_device):
        result, events = traced_run(ar_graph, ar_device)
        iteration_spans = [
            e for e in events
            if e["type"] == "span_end" and e["name"] == "iteration"
        ]
        assert len(iteration_spans) == len(result.trace)

    def test_chrome_export_of_real_run_validates(self, ar_graph, ar_device):
        _result, events = traced_run(ar_graph, ar_device)
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_profile_reconciles_with_telemetry(self, ar_graph, ar_device):
        result, events = traced_run(ar_graph, ar_device)
        profile = PhaseProfile.from_events(events)
        traced = profile.inclusive("solve_window")
        measured = result.telemetry.total_wall_time
        # Same interval, measured by two independent clocks layers apart.
        assert traced == pytest.approx(measured, rel=0.05)

    def test_portfolio_attempts_nest_under_their_window(
        self, ar_graph, ar_device
    ):
        _result, events = traced_run(
            ar_graph, ar_device, portfolio=("highs", "bnb")
        )
        ends = {
            e["span_id"]: e for e in events if e["type"] == "span_end"
        }
        attempts = [
            e for e in ends.values() if e["name"].startswith("attempt:")
        ]
        assert {e["name"] for e in attempts} >= {
            "attempt:highs", "attempt:bnb",
        }
        for attempt in attempts:
            parent = ends.get(attempt["parent_id"])
            assert parent is not None, "attempt span has no recorded parent"
            assert parent["name"] == "solve_window"

    def test_cache_hits_are_visible(self, ar_graph, ar_device):
        sink = MemorySink()
        tracer = Tracer(sink)
        settings = SolverSettings(time_limit=10.0, tracer=tracer)
        executor = SolveExecutor(settings)
        from repro.core.reduce_latency import reduce_latency

        first = reduce_latency(
            ar_graph, ar_device, 4, 640.0, 460.0, 50.0,
            settings=settings, executor=executor,
        )
        assert first.feasible
        # Identical windows replay from the cache.
        reduce_latency(
            ar_graph, ar_device, 4, 640.0, 460.0, 50.0,
            settings=settings, executor=executor,
        )
        tracer.close()
        event_names = [
            e["name"] for e in sink.events if e["type"] == "event"
        ]
        assert "cache_miss" in event_names
        assert "cache_hit" in event_names


class TestTracingIsInert:
    def test_trajectory_identical_with_and_without_tracer(
        self, ar_graph, ar_device
    ):
        plain = refine_partitions_bound(
            ar_graph,
            ar_device,
            config=RefinementConfig(gamma=1),
            settings=SolverSettings(time_limit=10.0),
        )
        traced, _events = traced_run(ar_graph, ar_device)
        assert plain.achieved == traced.achieved
        assert plain.explored_partitions == traced.explored_partitions
        assert [
            (r.num_partitions, r.iteration, r.d_max, r.d_min, r.achieved)
            for r in plain.trace
        ] == [
            (r.num_partitions, r.iteration, r.d_max, r.d_min, r.achieved)
            for r in traced.trace
        ]

    def test_default_settings_use_the_null_tracer(self, ar_graph, ar_device):
        from repro.obs import NULL_TRACER

        executor = SolveExecutor(SolverSettings())
        assert executor.tracer is NULL_TRACER
