"""Span trees and phase profiles reconstructed from event streams."""

from __future__ import annotations

import pytest

from repro.obs import (
    MemorySink,
    PhaseProfile,
    Tracer,
    build_span_tree,
    load_events,
    render_span_tree,
)


def end(span_id, name, t_start, dur, parent=None, status="ok", attrs=None):
    return {
        "type": "span_end", "span_id": span_id, "parent_id": parent,
        "name": name, "thread": "main", "status": status,
        "t_start": t_start, "dur": dur, "process_dur": dur,
        "ts": t_start + dur, "attrs": attrs or {},
    }


class TestLoadEvents:
    def test_reads_lines_and_skips_blanks(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert load_events(path) == [{"a": 1}, {"b": 2}]

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_events(path)


class TestBuildSpanTree:
    def test_builds_parent_child_links(self):
        roots = build_span_tree([
            end(1, "root", 0.0, 1.0),
            end(2, "child", 0.1, 0.3, parent=1),
            end(3, "child", 0.5, 0.4, parent=1),
        ])
        assert len(roots) == 1
        assert [c.name for c in roots[0].children] == ["child", "child"]
        assert roots[0].children[0].t_start == 0.1  # ordered by start

    def test_orphans_become_roots(self):
        roots = build_span_tree([
            end(2, "lost", 0.0, 0.5, parent=99),
            end(3, "normal", 1.0, 0.5),
        ])
        assert {r.name for r in roots} == {"lost", "normal"}

    def test_span_starts_are_ignored(self):
        roots = build_span_tree([
            {"type": "span_start", "span_id": 1, "name": "open"},
            end(2, "done", 0.0, 1.0),
        ])
        assert [r.name for r in roots] == ["done"]

    def test_exclusive_subtracts_direct_children_only(self):
        roots = build_span_tree([
            end(1, "root", 0.0, 1.0),
            end(2, "mid", 0.0, 0.6, parent=1),
            end(3, "leaf", 0.0, 0.5, parent=2),
        ])
        root = roots[0]
        assert root.exclusive == pytest.approx(0.4)
        assert root.children[0].exclusive == pytest.approx(0.1)
        assert root.children[0].children[0].exclusive == pytest.approx(0.5)

    def test_exclusive_clamps_at_zero(self):
        # Concurrent children can sum past the parent's wall time.
        roots = build_span_tree([
            end(1, "race", 0.0, 1.0),
            end(2, "a", 0.0, 0.9, parent=1),
            end(3, "b", 0.0, 0.9, parent=1),
        ])
        assert roots[0].exclusive == 0.0


class TestPhaseProfile:
    def events(self):
        return [
            end(1, "search", 0.0, 2.0),
            end(2, "solve", 0.0, 0.8, parent=1),
            end(3, "solve", 1.0, 0.6, parent=1),
            end(4, "compile", 0.1, 0.2, parent=2),
        ]

    def test_aggregates_by_name(self):
        profile = PhaseProfile.from_events(self.events())
        solve = profile.phases["solve"]
        assert solve.count == 2
        assert solve.inclusive == pytest.approx(1.4)
        assert solve.exclusive == pytest.approx(1.2)
        assert solve.max_duration == pytest.approx(0.8)
        assert solve.mean_inclusive == pytest.approx(0.7)

    def test_exclusive_times_partition_the_total(self):
        profile = PhaseProfile.from_events(self.events())
        total_exclusive = sum(
            s.exclusive for s in profile.phases.values()
        )
        assert total_exclusive == pytest.approx(profile.total_time)

    def test_top_orders_by_exclusive(self):
        profile = PhaseProfile.from_events(self.events())
        names = [s.name for s in profile.top()]
        assert names[0] == "solve"
        assert profile.top(1) == profile.top()[:1]

    def test_lookup_helpers(self):
        profile = PhaseProfile.from_events(self.events())
        assert profile.inclusive("search") == pytest.approx(2.0)
        assert profile.exclusive("missing") == 0.0

    def test_report_renders_table(self):
        report = PhaseProfile.from_events(self.events()).report()
        assert "phase" in report
        assert "solve" in report
        assert "total root wall time" in report

    def test_percentiles_use_nearest_rank(self):
        events = [
            end(i, "solve", float(i), (i + 1) / 100.0) for i in range(100)
        ]
        stat = PhaseProfile.from_events(events).phases["solve"]
        assert stat.p50 == pytest.approx(0.50)
        assert stat.p95 == pytest.approx(0.95)
        assert stat.p99 == pytest.approx(0.99)

    def test_percentiles_of_single_span_are_its_duration(self):
        stat = PhaseProfile.from_events(
            [end(1, "solve", 0.0, 0.25)]
        ).phases["solve"]
        assert stat.p50 == stat.p95 == stat.p99 == pytest.approx(0.25)

    def test_report_shows_percentile_columns(self):
        report = PhaseProfile.from_events(self.events()).report()
        header = report.splitlines()[0]
        for column in ("p50 (ms)", "p95 (ms)", "p99 (ms)"):
            assert column in header
        # solve durations 0.8 and 0.6 -> p50 600ms, p95/p99 800ms
        solve_row = next(
            line for line in report.splitlines() if line.startswith("solve")
        )
        assert "600.00" in solve_row
        assert "800.00" in solve_row

    def test_report_on_empty_trace(self):
        assert "empty trace" in PhaseProfile.from_events([]).report()

    def test_report_collapses_phases_past_top(self):
        report = PhaseProfile.from_events(self.events()).report(top=1)
        assert "more phases" in report


class TestRenderSpanTree:
    def test_tree_shows_nesting_durations_and_attrs(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", num_partitions=4):
            with tracer.span("inner", backend="highs"):
                pass
        rendered = render_span_tree(sink.events)
        lines = rendered.splitlines()
        assert lines[0].startswith("outer")
        assert "num_partitions=4" in lines[0]
        assert lines[1].startswith("  inner")
        assert "backend=highs" in lines[1]
        assert "ms" in lines[0]

    def test_max_depth_collapses_children(self):
        rendered = render_span_tree(
            [
                end(1, "root", 0.0, 1.0),
                end(2, "child", 0.0, 0.5, parent=1),
            ],
            max_depth=1,
        )
        assert "collapsed" in rendered
        assert "child" not in rendered.splitlines()[0]

    def test_error_spans_are_marked(self):
        rendered = render_span_tree([end(1, "bad", 0.0, 1.0, status="error")])
        assert rendered.startswith("bad!")

    def test_empty_trace(self):
        assert "empty trace" in render_span_tree([])
