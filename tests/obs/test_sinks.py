"""Event sinks: protocol conformance, JSONL round-trip, error behavior."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import EventSink, JsonlSink, MemorySink, Tracer, load_events


class TestMemorySink:
    def test_collects_events_in_order(self):
        sink = MemorySink()
        sink.emit({"type": "event", "name": "a"})
        sink.emit({"type": "event", "name": "b"})
        assert [e["name"] for e in sink] == ["a", "b"]
        assert len(sink) == 2

    def test_satisfies_the_protocol(self):
        assert isinstance(MemorySink(), EventSink)

    def test_concurrent_emits_do_not_lose_events(self):
        sink = MemorySink()

        def emit_many(i: int) -> None:
            for j in range(200):
                sink.emit({"i": i, "j": j})

        threads = [
            threading.Thread(target=emit_many, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink) == 8 * 200


class TestJsonlSink:
    def test_round_trip_through_load_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("outer", n=1):
            tracer.event("ping", x=2.5)
        tracer.close()
        events = load_events(path)
        assert [e["type"] for e in events] == [
            "span_start", "event", "span_end",
        ]
        assert events[1]["attrs"] == {"x": 2.5}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "a"})
        sink.close()
        assert path.exists()

    def test_satisfies_the_protocol(self, tmp_path):
        assert isinstance(JsonlSink(tmp_path / "x.jsonl"), EventSink)

    def test_unwritable_path_fails_at_construction(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(OSError):
            JsonlSink(blocker / "events.jsonl")  # parent is a file

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.close()
        sink.close()
        sink.emit({"n": 2})  # silently dropped, no crash
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1

    def test_non_serializable_values_are_stringified(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"obj": object()})
        sink.close()
        record = json.loads(path.read_text())
        assert "object" in record["obj"]

    def test_flush_every_bounds_loss_without_close(self, tmp_path):
        # A hard-killed process never reaches close(); periodic flushing
        # bounds the loss to flush_every events.  Read the file while
        # the sink is still open to prove the flush happened.
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.emit({"n": 1})
        sink.emit({"n": 2})
        sink.emit({"n": 3})  # not yet flushed
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 2
        sink.close()
        assert len(path.read_text().strip().splitlines()) == 3

    def test_flush_every_one_persists_each_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=1)
        for n in range(5):
            sink.emit({"n": n})
            lines = path.read_text().strip().splitlines()
            assert len(lines) == n + 1
        sink.close()

    def test_flush_every_zero_disables_periodic_flush(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=0)
        for n in range(100):
            sink.emit({"n": n})
        sink.close()  # close still flushes everything
        assert len(path.read_text().strip().splitlines()) == 100

    def test_negative_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", flush_every=-1)

    def test_multi_sink_tracer_feeds_both(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "e.jsonl")
        tracer = Tracer(memory, jsonl)
        with tracer.span("s"):
            pass
        tracer.close()
        assert len(memory) == 2
        assert len(load_events(tmp_path / "e.jsonl")) == 2
