"""Chrome trace-event export and its structural validator."""

from __future__ import annotations

import json

from repro.obs import (
    JsonlSink,
    MemorySink,
    Tracer,
    chrome_trace,
    jsonl_to_chrome,
    load_events,
    validate_chrome_trace,
    write_chrome_trace,
)


def recorded_events() -> list[dict]:
    sink = MemorySink()
    tracer = Tracer(sink)
    with tracer.span("outer", n=2) as outer:
        tracer.event("marker", k=1)
        with tracer.span("inner"):
            pass
    assert outer.duration >= 0
    return sink.events


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        payload = chrome_trace(recorded_events())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"]["n"] == 2
        inner = next(e for e in complete if e["name"] == "inner")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_events_become_instants(self):
        payload = chrome_trace(recorded_events())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "marker"
        assert instants[0]["s"] == "t"

    def test_metadata_names_process_and_threads(self):
        payload = chrome_trace(recorded_events())
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}

    def test_microsecond_conversion(self):
        events = [
            {
                "type": "span_end", "span_id": 1, "parent_id": None,
                "name": "s", "thread": "main", "status": "ok",
                "t_start": 0.5, "dur": 0.25, "process_dur": 0.2,
                "ts": 0.75, "attrs": {},
            }
        ]
        payload = chrome_trace(events)
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 0.5e6
        assert span["dur"] == 0.25e6

    def test_error_status_lands_in_args(self):
        events = [
            {
                "type": "span_end", "span_id": 1, "parent_id": None,
                "name": "s", "thread": "main", "status": "error",
                "t_start": 0.0, "dur": 0.1, "process_dur": 0.1,
                "ts": 0.1, "attrs": {},
            }
        ]
        payload = chrome_trace(events)
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["args"]["status"] == "error"

    def test_write_and_jsonl_conversion_agree(self, tmp_path):
        jsonl_path = tmp_path / "run.jsonl"
        sink = JsonlSink(jsonl_path)
        tracer = Tracer(sink)
        with tracer.span("a"):
            tracer.event("e")
        tracer.close()
        direct = tmp_path / "direct.json"
        converted = tmp_path / "converted.json"
        write_chrome_trace(direct, load_events(jsonl_path))
        jsonl_to_chrome(jsonl_path, converted)
        assert json.loads(direct.read_text()) == json.loads(
            converted.read_text()
        )

    def test_write_creates_parent_directories(self, tmp_path):
        out = tmp_path / "sub" / "dir" / "trace.json"
        write_chrome_trace(out, recorded_events())
        assert out.exists()


class TestValidator:
    def test_exported_payload_validates_clean(self):
        assert validate_chrome_trace(chrome_trace(recorded_events())) == []

    def test_rejects_non_object_top_level(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_flags_empty_trace(self):
        problems = validate_chrome_trace({"traceEvents": []})
        assert problems == ["traceEvents is empty"]

    def test_flags_unknown_phase(self):
        payload = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]}
        assert any("unknown phase" in p for p in validate_chrome_trace(payload))

    def test_flags_negative_timestamps_and_durations(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1,
                 "ts": -5.0, "dur": 1.0},
                {"ph": "X", "name": "y", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": -1.0},
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)

    def test_flags_missing_name_pid_tid(self):
        payload = {
            "traceEvents": [{"ph": "X", "ts": 0.0, "dur": 0.0}]
        }
        problems = validate_chrome_trace(payload)
        assert any("name" in p for p in problems)
        assert any("pid" in p for p in problems)
        assert any("tid" in p for p in problems)

    def test_flags_bad_instant_scope_and_args(self):
        payload = {
            "traceEvents": [
                {"ph": "i", "name": "e", "pid": 1, "tid": 1,
                 "ts": 0.0, "s": "w"},
                {"ph": "i", "name": "e", "pid": 1, "tid": 1,
                 "ts": 0.0, "args": [1]},
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("instant scope" in p for p in problems)
        assert any("args" in p for p in problems)

    def test_metadata_rows_need_no_timestamp(self):
        payload = {
            "traceEvents": [{"ph": "M", "name": "process_name", "pid": 1}]
        }
        assert validate_chrome_trace(payload) == []
