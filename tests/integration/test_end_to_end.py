"""Integration tests: full pipeline, HLS -> graph -> partition -> replay."""

import pytest

from repro import (
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import ReconfigurableProcessor, simulate, time_multiplexed
from repro.core import greedy_partition, solve_optimal
from repro.hls import estimate_task, vector_product_dfg
from repro.taskgraph import TaskGraph, layered_graph, load_json, save_json


def quick(processor, **search):
    search.setdefault("delta_fraction", 0.05)
    search.setdefault("time_budget", 60.0)
    return TemporalPartitioner(
        processor,
        PartitionerConfig(
            search=RefinementConfig(**search),
            solver=SolverSettings(time_limit=15.0),
        ),
    )


class TestHlsToPartition:
    def test_estimated_pipeline_partitions_and_replays(self):
        graph = TaskGraph("mini_pipeline")
        estimate_task(graph, "front", vector_product_dfg(3))
        estimate_task(graph, "mid", vector_product_dfg(4))
        estimate_task(graph, "back", vector_product_dfg(3, data_width=12))
        graph.add_edge("front", "mid", 4)
        graph.add_edge("mid", "back", 4)
        graph.set_env_input("front", 8)
        graph.set_env_output("back", 4)

        processor = time_multiplexed(
            resource_capacity=220, memory_capacity=64
        )
        outcome = quick(processor, gamma=1).partition(graph)
        assert outcome.feasible
        assert outcome.design.audit(processor) == []
        report = simulate(outcome.design, processor)
        assert report.makespan == pytest.approx(outcome.total_latency)


class TestSerializedWorkflow:
    def test_partition_graph_loaded_from_json(self, tmp_path, ar_graph,
                                              ar_device):
        path = tmp_path / "ar.json"
        save_json(ar_graph, path)
        loaded = load_json(path)
        outcome = quick(ar_device, delta=10.0, gamma=1).partition(loaded)
        assert outcome.feasible
        assert outcome.total_latency == pytest.approx(510.0)


class TestIlpBeatsGreedy:
    def test_ilp_never_worse_than_greedy_baselines(self, ar_graph,
                                                   ar_device):
        outcome = quick(ar_device, delta=10.0, gamma=1).partition(ar_graph)
        for policy in ("min_area", "balanced", "min_latency"):
            result = greedy_partition(ar_graph, ar_device, policy)
            if result.memory_feasible:
                greedy_latency = result.design.total_latency(ar_device)
                assert outcome.total_latency <= greedy_latency + 1e-6

    def test_ilp_matches_oracle_on_synthetic_graph(self):
        graph = layered_graph(2, 2, seed=11)
        processor = ReconfigurableProcessor(700, 512, 40)
        outcome = quick(processor, gamma=2, delta=5.0).partition(graph)
        oracle = solve_optimal(graph, processor, time_limit_per_solve=60.0)
        assert outcome.feasible and oracle.feasible
        if oracle.proven_optimal:
            # delta=5 on latencies of hundreds: near-exact convergence.
            assert outcome.total_latency <= oracle.latency + 5.0 + 1e-6


class TestReconfigurationRegimes:
    def test_large_ct_uses_fewer_partitions_than_small_ct(self):
        graph = layered_graph(3, 2, seed=5)
        base = ReconfigurableProcessor(500, 512, 0.0)
        small = quick(base.with_reconfiguration_time(1.0), gamma=2)
        large = quick(base.with_reconfiguration_time(1e6), gamma=2)
        small_outcome = small.partition(graph)
        large_outcome = large.partition(graph)
        assert small_outcome.feasible and large_outcome.feasible
        assert (
            large_outcome.num_partitions <= small_outcome.num_partitions
        ) or large_outcome.total_latency < small_outcome.total_latency
