"""Property-based invariants across the whole pipeline.

Random synthetic task graphs are partitioned and the results are checked
against the independent oracles:

* every returned design passes the audit (no shared code with the ILP),
* the execution-timeline simulator reproduces the reported latency,
* bounds bracket the achieved latency,
* the ILP and CP solvers agree on feasibility of the same question.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ReconfigurableProcessor, simulate
from repro.core import (
    FormulationOptions,
    SolverSettings,
    bounds,
    build_model,
    cp_solve,
    reduce_latency,
)
from repro.taskgraph import random_dag

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def graph_for(seed: int):
    return random_dag(
        num_tasks=5 + seed % 4,
        seed=seed,
        edge_probability=0.3,
    )


def processor_for(seed: int):
    return ReconfigurableProcessor(
        resource_capacity=600 + 50 * (seed % 5),
        memory_capacity=512,
        reconfiguration_time=float(10 * (seed % 4)),
        name=f"prop{seed}",
    )


class TestPipelineInvariants:
    @given(st.integers(0, 10_000))
    @SLOW
    def test_feasible_designs_audit_clean_and_simulate_exactly(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = bounds.min_area_partitions(graph, processor.resource_capacity)
        d_max = bounds.max_latency(
            graph, n, processor.reconfiguration_time
        )
        tp = build_model(graph, processor, n, d_max)
        solution = tp.solve(
            backend="highs", first_feasible=True, time_limit=20.0
        )
        if not solution.status.has_solution:
            return  # fragmentation can make N_min^l infeasible: fine
        design = tp.design_from(solution)
        assert design.audit(processor) == []
        report = simulate(design, processor)
        assert report.makespan == pytest.approx(
            design.total_latency(processor)
        )
        assert design.total_latency(processor) <= d_max + 1e-6
        assert design.total_latency(processor) >= bounds.min_latency(
            graph, 1, 0.0
        ) - 1e-6

    @given(st.integers(0, 10_000))
    @SLOW
    def test_reduce_latency_result_within_bounds(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = bounds.min_area_partitions(
            graph, processor.resource_capacity
        ) + 1
        d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
        d_min = bounds.min_latency(graph, n, processor.reconfiguration_time)
        result = reduce_latency(
            graph, processor, n, d_max, d_min, delta=d_max * 0.05,
            settings=SolverSettings(time_limit=15.0),
        )
        if not result.feasible:
            return
        assert d_min - 1e-6 <= result.achieved <= d_max + 1e-6
        assert result.design.audit(processor) == []

    @given(st.integers(0, 10_000))
    @SLOW
    def test_cp_and_ilp_feasibility_agree(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = bounds.min_area_partitions(graph, processor.resource_capacity)
        d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
        cp_design = cp_solve(
            graph, processor, n, d_max, node_limit=500_000,
        )
        tp = build_model(graph, processor, n, d_max)
        ilp = tp.solve(backend="highs", first_feasible=True, time_limit=20.0)
        assert (cp_design is not None) == ilp.status.has_solution
        if cp_design is not None:
            assert cp_design.audit(processor) == []

    @given(st.integers(0, 10_000))
    @SLOW
    def test_symmetry_breaking_preserves_feasibility(self, seed):
        graph = graph_for(seed)
        processor = processor_for(seed)
        n = bounds.min_area_partitions(
            graph, processor.resource_capacity
        ) + 1
        d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
        plain = build_model(graph, processor, n, d_max).solve(
            backend="highs", first_feasible=True, time_limit=20.0
        )
        broken = build_model(
            graph, processor, n, d_max,
            options=FormulationOptions(symmetry_breaking=True),
        ).solve(backend="highs", first_feasible=True, time_limit=20.0)
        assert plain.status.has_solution == broken.status.has_solution
