"""Failure injection: malformed inputs and hostile budgets.

Every failure mode must surface as a typed exception or a clean
infeasible/limited outcome — never a crash or a silently wrong answer.
"""

import pytest

from repro import (
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import ReconfigurableProcessor
from repro.core import SolverSettings as CoreSolverSettings
from repro.core import bounds, reduce_latency
from repro.ilp import SolveStatus
from repro.taskgraph import (
    DesignPoint,
    GraphValidationError,
    TaskGraph,
    dct_4x4,
)


def device(r=400, m=128, c_t=20.0):
    return ReconfigurableProcessor(r, m, c_t)


class TestHostileGraphs:
    def test_cyclic_graph_rejected_before_solving(self):
        graph = TaskGraph("cycle")
        graph.add_task("a", (DesignPoint(10, 10),))
        graph.add_task("b", (DesignPoint(10, 10),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        with pytest.raises(GraphValidationError):
            TemporalPartitioner(device()).partition(graph)

    def test_task_larger_than_any_device(self):
        graph = TaskGraph("giant")
        graph.add_task("g", (DesignPoint(10_000, 10),))
        with pytest.raises(GraphValidationError) as err:
            TemporalPartitioner(device()).partition(graph)
        assert "exceeds the device capacity" in str(err.value)

    def test_disconnected_components_still_partition(self):
        graph = TaskGraph("islands")
        for i in range(4):
            graph.add_task(f"t{i}", (DesignPoint(100, 10, name="dp1"),))
        graph.add_edge("t0", "t1", 1)
        graph.add_edge("t2", "t3", 1)
        graph.set_env_input("t0", 1)
        graph.set_env_input("t2", 1)
        outcome = TemporalPartitioner(
            device(),
            PartitionerConfig(
                search=RefinementConfig(delta=10.0),
                solver=SolverSettings(time_limit=15.0),
            ),
        ).partition(graph)
        assert outcome.feasible

    def test_single_task_graph(self):
        graph = TaskGraph("solo")
        graph.add_task("only", (DesignPoint(100, 42, name="dp1"),))
        outcome = TemporalPartitioner(device()).partition(graph)
        assert outcome.feasible
        assert outcome.num_partitions == 1
        assert outcome.total_latency == pytest.approx(42 + 20)


class TestHostileBudgets:
    def test_memory_zero_forces_single_partition_or_infeasible(self):
        graph = TaskGraph("mem0")
        graph.add_task("a", (DesignPoint(100, 10, name="dp1"),))
        graph.add_task("b", (DesignPoint(100, 10, name="dp1"),))
        graph.add_edge("a", "b", 5)
        processor = ReconfigurableProcessor(250, 0, 10)
        outcome = TemporalPartitioner(
            processor,
            PartitionerConfig(
                search=RefinementConfig(
                    delta=5.0, infeasible_escalation_limit=2
                ),
                solver=SolverSettings(time_limit=10.0),
            ),
        ).partition(graph)
        # Both tasks fit one partition: feasible with zero memory.
        assert outcome.feasible
        assert outcome.num_partitions == 1

    def test_zero_time_budget_returns_cleanly(self, ar_graph):
        outcome = TemporalPartitioner(
            device(),
            PartitionerConfig(
                search=RefinementConfig(delta=10.0, time_budget=0.0),
            ),
        ).partition(ar_graph)
        # Either it squeezed one solve in or it reports the stop cleanly.
        assert outcome.feasible or outcome.stopped_by_time

    def test_tiny_solver_time_limit_degrades_to_heuristic(self):
        graph = dct_4x4()
        processor = ReconfigurableProcessor(576, 2048, 30)
        d_max = bounds.max_latency(graph, 8, 30)
        d_min = bounds.min_latency(graph, 8, 30)
        result = reduce_latency(
            graph, processor, 8, d_max, d_min, delta=200.0,
            settings=CoreSolverSettings(
                time_limit=1e-3, use_lp_bound=False
            ),
        )
        # The budget is too small for any backend, but the executor falls
        # back to the greedy heuristics: a valid design, flagged degraded.
        assert result.feasible
        assert result.degraded
        assert result.design.audit(processor) == []

    def test_tiny_time_limit_without_fallback_is_infeasible(self):
        graph = dct_4x4()
        processor = ReconfigurableProcessor(576, 2048, 30)
        d_max = bounds.max_latency(graph, 8, 30)
        d_min = bounds.min_latency(graph, 8, 30)
        result = reduce_latency(
            graph, processor, 8, d_max, d_min, delta=200.0,
            settings=CoreSolverSettings(
                time_limit=1e-3, use_lp_bound=False,
                heuristic_fallback=False,
            ),
        )
        # Opting out of the fallback restores the paper's pragmatic
        # convention: a timed-out window counts as infeasible.
        assert not result.feasible

    def test_solver_statuses_on_budget_exhaustion(self):
        from repro.core import build_model

        graph = dct_4x4()
        processor = ReconfigurableProcessor(576, 2048, 30)
        tp = build_model(
            graph, processor, 8, bounds.max_latency(graph, 8, 30)
        )
        solution = tp.solve(backend="highs", time_limit=1e-3)
        assert solution.status in (
            SolveStatus.TIME_LIMIT,
            SolveStatus.FEASIBLE,
            SolveStatus.NODE_LIMIT,
        )


class TestDesignPointEdgeCases:
    def test_identical_design_points(self):
        graph = TaskGraph("dup")
        graph.add_task(
            "a",
            (
                DesignPoint(100, 10, name="dp1"),
                DesignPoint(100, 10, name="dp2"),
            ),
        )
        outcome = TemporalPartitioner(device()).partition(graph)
        assert outcome.feasible

    def test_extreme_area_latency_ratio(self):
        graph = TaskGraph("extreme")
        graph.add_task(
            "a",
            (
                DesignPoint(1, 1e9, name="tiny_slow"),
                DesignPoint(399, 1e-3, name="big_fast"),
            ),
        )
        outcome = TemporalPartitioner(device()).partition(graph)
        assert outcome.feasible
        # The fast point wins: reconfiguration (20) dominates latency.
        assert outcome.design.design_point_of("a").name == "big_fast"
