"""The workflows documented in docs/cookbook.md must keep working.

Each test is a (budget-trimmed) executable version of one cookbook
recipe; if a recipe's API drifts, this file fails before a user does.
"""

import pytest

from repro import PartitionerConfig, RefinementConfig, SolverSettings, TemporalPartitioner
from repro.arch import ReconfigurableProcessor, simulate
from repro.core import (
    build_model,
    diagnose_infeasibility,
    utilization_report,
)
from repro.hls import estimate_task, vector_product_dfg
from repro.ilp import lp_string
from repro.taskgraph import DesignPoint, TaskGraph, cluster_chains


@pytest.fixture
def device():
    return ReconfigurableProcessor(
        resource_capacity=512, memory_capacity=256,
        reconfiguration_time=50.0,
    )


@pytest.fixture
def fft_graph():
    graph = TaskGraph("my_design")
    graph.add_task("fft", (
        DesignPoint(area=220, latency=900, name="serial"),
        DesignPoint(area=410, latency=480, name="radix4"),
    ))
    graph.add_task("eq", (DesignPoint(area=150, latency=300, name="only"),))
    graph.add_edge("fft", "eq", data_units=64)
    graph.set_env_input("fft", 64)
    graph.set_env_output("eq", 64)
    return graph


def partitioner_for(device):
    return TemporalPartitioner(
        device,
        PartitionerConfig(
            search=RefinementConfig(gamma=1, delta=25.0, time_budget=60.0),
            solver=SolverSettings(time_limit=15.0),
        ),
    )


class TestCookbookRecipes:
    def test_partition_hand_written_tables(self, device, fft_graph):
        outcome = partitioner_for(device).partition(fft_graph)
        assert outcome.feasible
        assert "partition" in outcome.design.summary(device)

    def test_hls_derived_design_points(self):
        graph = TaskGraph("from_hls")
        estimate_task(graph, "dot", vector_product_dfg(8, data_width=12))
        points = graph.task("dot").design_points
        assert len(points) >= 2

    def test_diagnose_recipe(self, fft_graph, device):
        tp = build_model(fft_graph, device, num_partitions=1, d_max=100.0)
        solution = tp.solve(first_feasible=True)
        assert not solution.status.has_solution
        message = diagnose_infeasibility(tp).message
        assert message

    def test_cluster_and_expand_recipe(self, device, fft_graph):
        clustering = cluster_chains(fft_graph)
        outcome = partitioner_for(device).partition(clustering.graph)
        assert outcome.feasible
        design = clustering.expand(outcome.design)
        assert set(design.placements) == {"fft", "eq"}
        assert design.audit(device) == []

    def test_trace_and_chart_recipe(self, device, fft_graph):
        outcome = partitioner_for(device).partition(fft_graph)
        rows = [
            record.row(device.reconfiguration_time)
            for record in outcome.trace
        ]
        assert rows
        assert "|" in outcome.trace.convergence_chart()

    def test_audit_and_replay_recipe(self, device, fft_graph):
        outcome = partitioner_for(device).partition(fft_graph)
        assert outcome.design.audit(device) == []
        report = simulate(outcome.design, device)
        assert abs(report.makespan - outcome.total_latency) < 1e-9
        table = utilization_report(outcome.design, device).table()
        assert "Partition utilization" in table.render()

    def test_lp_export_recipe(self, device, fft_graph, tmp_path):
        tp = build_model(fft_graph, device, num_partitions=2, d_max=5_000.0)
        text = lp_string(tp.model)
        assert text.startswith("\\ Model:")
        path = tmp_path / "model.lp"
        path.write_text(text)
        assert path.stat().st_size > 100
