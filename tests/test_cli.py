"""Tests for the repro-tp command-line interface."""

import json

import pytest

from repro.cli import main
from repro.taskgraph import ar_filter, save_json


@pytest.fixture
def ar_json(tmp_path):
    path = tmp_path / "ar.json"
    save_json(ar_filter(), path)
    return str(path)


class TestGenerate:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main([
            "generate", "layered", "--levels", "2", "--per-level", "2",
            "--seed", "3", "-o", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["tasks"]) == 4

    def test_generate_to_stdout(self, capsys):
        code = main(["generate", "random", "--tasks", "5", "--seed", "1"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 5

    @pytest.mark.parametrize("kind", ["fork-join", "series-parallel"])
    def test_other_kinds(self, kind, capsys):
        assert main(["generate", kind]) == 0


class TestBounds:
    def test_bounds_output(self, ar_json, capsys):
        code = main(["bounds", ar_json, "--r-max", "400", "--ct", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N_min^l (min-area partitions): 3" in out
        assert "N=3:" in out


class TestPartition:
    def test_partition_ar(self, ar_json, tmp_path, capsys):
        out_json = tmp_path / "assignment.json"
        out_dot = tmp_path / "design.dot"
        code = main([
            "partition", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--gamma", "1", "--delta", "10",
            "--trace",
            "--out-json", str(out_json),
            "--out-dot", str(out_dot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "total latency: 510" in out
        assert "Inf." in out               # trace printed
        assignment = json.loads(out_json.read_text())
        assert set(assignment) == {"T1", "T2", "T3", "T4", "T5", "T6"}
        assert "cluster_p1" in out_dot.read_text()

    def test_partition_report_flag(self, ar_json, capsys):
        code = main([
            "partition", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--gamma", "1", "--delta", "10", "--report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Partition utilization" in out
        assert "design points chosen:" in out

    def test_partition_infeasible_exit_code(self, tmp_path, capsys):
        from repro.taskgraph import DesignPoint, TaskGraph

        graph = TaskGraph("stuck")
        graph.add_task("a", (DesignPoint(300, 10, name="dp1"),))
        graph.add_task("b", (DesignPoint(300, 10, name="dp1"),))
        graph.add_edge("a", "b", 9999)
        path = tmp_path / "stuck.json"
        save_json(graph, path)
        code = main([
            "partition", str(path),
            "--r-max", "400", "--m-max", "16", "--ct", "10",
            "--time-budget", "20",
        ])
        assert code == 1
        assert "no feasible" in capsys.readouterr().err


class TestEstimate:
    def test_estimate_vector_product(self, capsys):
        code = main([
            "estimate", "vector-product", "--length", "3",
            "--data-width", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "operations" in out
        assert "area=" in out

    def test_estimate_fir(self, capsys):
        assert main(["estimate", "fir", "--length", "3"]) == 0


class TestTable:
    def test_table1(self, capsys):
        code = main(["table", "1", "--solve-limit", "15"])
        assert code == 0
        assert "match" in capsys.readouterr().out

    def test_table2(self, capsys):
        code = main(["table", "2"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out


class TestDiagnose:
    def test_diagnose_feasible(self, ar_json, capsys):
        code = main([
            "diagnose", ar_json, "--r-max", "400", "--m-max", "128",
            "--ct", "20", "-n", "3",
        ])
        assert code == 0
        assert "feasible at N=3" in capsys.readouterr().out

    def test_diagnose_resource_culprit(self, ar_json, capsys):
        code = main([
            "diagnose", ar_json, "--r-max", "400", "--m-max", "128",
            "--ct", "20", "-n", "1",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "infeasible at N=1" in out
        assert "CULPRIT" in out

    def test_diagnose_latency_window(self, ar_json, capsys):
        code = main([
            "diagnose", ar_json, "--r-max", "400", "--m-max", "128",
            "--ct", "20", "-n", "3", "--d-max", "100",
        ])
        assert code == 1
        assert "latency_window" in capsys.readouterr().out


class TestCurve:
    def test_curve_on_ar(self, ar_json, capsys):
        code = main([
            "curve", ar_json, "--r-max", "400", "--m-max", "128",
            "--ct", "20", "--min-n", "3", "--max-n", "4",
            "--delta", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trade-off" in out
        assert "best:" in out

    def test_curve_infeasible_range_exit_code(self, ar_json, capsys):
        code = main([
            "curve", ar_json, "--r-max", "400", "--m-max", "128",
            "--ct", "20", "--min-n", "1", "--max-n", "2",
        ])
        assert code == 1


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])


class TestAnalyze:
    def test_clean_model_exits_0(self, ar_json, capsys):
        code = main([
            "analyze", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20", "-n", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_defective_model_exits_3(self, ar_json, capsys):
        # d_max below C_T makes the latency_ub row trivially infeasible.
        code = main([
            "analyze", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20", "-n", "3",
            "--d-max", "1",
        ])
        assert code == 3
        out = capsys.readouterr().out
        assert "row-infeasible" in out
        assert "(9)" in out

    def test_json_output(self, ar_json, capsys):
        code = main([
            "analyze", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20", "-n", "3",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["num_partitions"] == 3
        assert payload["diagnostics"] == []

    def test_missing_graph_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "analyze", str(tmp_path / "nope.json"),
                "--r-max", "400", "-n", "3",
            ])
        assert excinfo.value.code == 2
        assert "cannot load graph" in capsys.readouterr().err

    def test_invalid_graph_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"tasks": "not-a-list"}')
        with pytest.raises(SystemExit) as excinfo:
            main([
                "analyze", str(bad),
                "--r-max", "400", "-n", "3",
            ])
        assert excinfo.value.code == 2

    def test_usage_error_exits_2(self, ar_json):
        # argparse exits 2 on missing required arguments (-n).
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", ar_json, "--r-max", "400"])
        assert excinfo.value.code == 2

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "exit codes" in capsys.readouterr().out


class TestScenarioFlag:
    def test_analyze_slot_scenario_is_clean(self, ar_json, capsys):
        code = main([
            "analyze", ar_json,
            "--r-max", "800", "--m-max", "256", "--ct", "20", "-n", "4",
            "--scenario", "slot_coresident", "--strict",
        ])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_analyze_json_reports_the_scenario(self, ar_json, capsys):
        code = main([
            "analyze", ar_json,
            "--r-max", "800", "--m-max", "256", "--ct", "20", "-n", "4",
            "--scenario", "slot_coresident", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "slot_coresident"
        assert payload["ok"] is True

    def test_unknown_scenario_exits_2(self, ar_json, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "analyze", ar_json,
                "--r-max", "400", "-n", "3", "--scenario", "nope",
            ])
        assert excinfo.value.code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_malformed_scenario_param_exits_2(self, ar_json, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "analyze", ar_json,
                "--r-max", "400", "-n", "3",
                "--scenario", "slot_coresident",
                "--scenario-param", "num_slots",
            ])
        assert excinfo.value.code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_partition_slot_scenario_end_to_end(self, ar_json, capsys):
        code = main([
            "partition", ar_json,
            "--r-max", "800", "--m-max", "256", "--ct", "20",
            "--delta", "100", "--no-cache",
            "--scenario", "slot_coresident",
            "--scenario-param", "num_slots=2",
        ])
        assert code == 0
        assert "total latency" in capsys.readouterr().out


class TestBatch:
    def _write_batch(self, tmp_path, ar_json, n=2):
        entries = [{"graph": "ar.json"} for _ in range(n)]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(entries))
        return str(path)

    def test_batch_inline_workers(self, tmp_path, ar_json, capsys):
        batch = self._write_batch(tmp_path, ar_json)
        code = main([
            "batch", batch,
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--workers", "0", "--solve-limit", "10",
        ])
        assert code == 0
        captured = capsys.readouterr()
        results = json.loads(captured.out)
        assert len(results) == 2
        assert all(r["feasible"] for r in results)
        assert all("schema_version" in r for r in results)
        assert "2/2 feasible" in captured.err

    def test_batch_to_file_with_cache(self, tmp_path, ar_json, capsys):
        batch = self._write_batch(tmp_path, ar_json, n=1)
        out = tmp_path / "results.json"
        cache = tmp_path / "solves.sqlite"
        code = main([
            "batch", batch,
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--workers", "0", "--solve-limit", "10",
            "--cache", str(cache), "-o", str(out),
        ])
        assert code == 0
        assert cache.exists()
        assert json.loads(out.read_text())[0]["feasible"]

    def test_batch_inline_graph_payload(self, tmp_path, capsys):
        from repro.taskgraph import ar_filter
        from repro.taskgraph import io as graph_io

        entries = [{"graph": graph_io.to_dict(ar_filter())}]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(entries))
        code = main([
            "batch", str(path),
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--workers", "0", "--solve-limit", "10",
        ])
        assert code == 0

    def test_batch_bad_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        code = main([
            "batch", str(bad),
            "--r-max", "400", "--workers", "0",
        ])
        assert code == 2
        assert "cannot read batch file" in capsys.readouterr().err

    def test_batch_non_list_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"graph": "x.json"}')
        code = main([
            "batch", str(bad),
            "--r-max", "400", "--workers", "0",
        ])
        assert code == 2
        assert "JSON list" in capsys.readouterr().err

    def test_batch_entry_without_graph_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('[{"processor": null}]')
        with pytest.raises(SystemExit) as excinfo:
            main([
                "batch", str(bad),
                "--r-max", "400", "--workers", "0",
            ])
        assert excinfo.value.code == 2


class TestServe:
    def test_serve_round_trip(self, monkeypatch, capsys):
        import io

        from repro.taskgraph import ar_filter
        from repro.taskgraph import io as graph_io

        line = json.dumps({"graph": graph_io.to_dict(ar_filter())})
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n\n"))
        code = main([
            "serve",
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--workers", "0", "--solve-limit", "10",
        ])
        assert code == 0
        captured = capsys.readouterr()
        outcome = json.loads(captured.out.strip().splitlines()[0])
        assert outcome["feasible"] is True
        assert "served 1 requests" in captured.err

    def test_serve_invalid_line_reports_error_and_continues(
        self, monkeypatch, capsys
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("not json\n\n"))
        code = main([
            "serve",
            "--r-max", "400", "--workers", "0",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.strip().splitlines()[0]) == {
            "error": "invalid request"
        }
        assert "served 0 requests" in captured.err


class TestMetricsFlags:
    def test_partition_metrics_json(self, ar_json, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main([
            "partition", ar_json,
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--solve-limit", "10", "--metrics-json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        names = [m["name"] for m in payload["metrics"]]
        assert "repro_window_solves_total" in names
        assert f"metrics written to {out}" in capsys.readouterr().out

    def test_serve_metrics_port_scrapes_and_dumps(
        self, monkeypatch, tmp_path, capsys
    ):
        import io
        import re
        import urllib.request

        from repro.taskgraph import io as graph_io

        dump = tmp_path / "metrics.json"
        line = json.dumps({"graph": graph_io.to_dict(ar_filter())})

        scraped = {}
        real_stdin = io.StringIO(line + "\n\n")

        class ScrapingStdin:
            """Scrape the live endpoint between request lines."""

            def __iter__(self):
                for text in real_stdin:
                    yield text
                    err = capsys.readouterr().err
                    match = re.search(r"metrics at (\S+)", err)
                    if match and "body" not in scraped:
                        scraped["body"] = urllib.request.urlopen(
                            match.group(1), timeout=5
                        ).read().decode()

        monkeypatch.setattr("sys.stdin", ScrapingStdin())
        code = main([
            "serve",
            "--r-max", "400", "--m-max", "128", "--ct", "20",
            "--workers", "0", "--solve-limit", "10",
            "--metrics-port", "0", "--metrics-json", str(dump),
        ])
        assert code == 0
        payload = json.loads(dump.read_text())
        names = [m["name"] for m in payload["metrics"]]
        assert "repro_service_requests_total" in names
        assert "repro_window_solves_total" in names

    def test_metrics_report_merges_and_prints(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "repro_window_solves_total", "solves", ("backend", "status")
        ).labels("highs", "feasible").inc(3)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(registry.snapshot().to_dict()))
        b.write_text(json.dumps(registry.snapshot().to_dict()))
        code = main(["metrics", "report", str(a), str(b)])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_window_solves_total" in out
        assert "6" in out  # 3 + 3 merged

    def test_metrics_report_prom_output_validates(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry, validate_promtext

        registry = MetricsRegistry()
        registry.histogram(
            "repro_window_solve_seconds", "wall", buckets=(0.1, 1.0)
        ).observe(0.5)
        path = tmp_path / "m.json"
        path.write_text(json.dumps(registry.snapshot().to_dict()))
        code = main(["metrics", "report", str(path), "--prom"])
        assert code == 0
        assert validate_promtext(capsys.readouterr().out) == []

    def test_metrics_report_empty_exits_one(self, tmp_path, capsys):
        from repro.obs import MetricsSnapshot

        path = tmp_path / "empty.json"
        path.write_text(json.dumps(MetricsSnapshot.empty().to_dict()))
        assert main(["metrics", "report", str(path)]) == 1
        assert "no metrics recorded" in capsys.readouterr().err

    def test_metrics_report_bad_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{]")
        with pytest.raises(SystemExit) as excinfo:
            main(["metrics", "report", str(path)])
        assert excinfo.value.code == 2
