"""Property-based tests for chain clustering."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ReconfigurableProcessor
from repro.core import bounds, build_model
from repro.taskgraph import cluster_chains, compute_metrics, random_dag

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestClusteringProperties:
    @given(st.integers(0, 10_000))
    @SLOW
    def test_clustered_graph_is_valid_dag(self, seed):
        graph = random_dag(8, seed=seed, edge_probability=0.25)
        result = cluster_chains(graph)
        assert result.graph.is_acyclic()
        # Members partition the original task set.
        covered = [
            name
            for components in result.members.values()
            for name in components
        ]
        assert sorted(covered) == sorted(graph.task_names)

    @given(st.integers(0, 10_000))
    @SLOW
    def test_clustering_never_grows_the_graph(self, seed):
        graph = random_dag(8, seed=seed, edge_probability=0.25)
        result = cluster_chains(graph)
        assert len(result.graph) <= len(graph)
        assert result.graph.num_edges <= graph.num_edges

    @given(st.integers(0, 10_000))
    @SLOW
    def test_min_latency_bound_preserved(self, seed):
        """Serial chains keep the critical path identical."""
        graph = random_dag(8, seed=seed, edge_probability=0.25)
        result = cluster_chains(graph)
        original = bounds.min_latency(graph, 1, 0.0)
        clustered = bounds.min_latency(result.graph, 1, 0.0)
        assert clustered == pytest.approx(original)

    @given(st.integers(0, 2_000))
    @SLOW
    def test_expanded_designs_audit_clean(self, seed):
        graph = random_dag(7, seed=seed, edge_probability=0.3)
        result = cluster_chains(graph)
        processor = ReconfigurableProcessor(900, 4096, 10)
        n = bounds.min_area_partitions(result.graph, 900) + 1
        tp = build_model(
            result.graph, processor, n,
            bounds.max_latency(result.graph, n, 10),
        )
        solution = tp.solve(
            backend="highs", first_feasible=True, time_limit=20.0
        )
        if not solution.status.has_solution:
            return
        expanded = result.expand(tp.design_from(solution))
        assert expanded.audit(processor) == []
        # Total latency is preserved by expansion.
        assert expanded.total_latency(processor) == pytest.approx(
            tp.design_from(solution).total_latency(processor)
        )

    @given(st.integers(0, 10_000))
    @SLOW
    def test_chainlike_graphs_collapse_fully(self, seed):
        graph = random_dag(6, seed=seed, edge_probability=0.0)
        # No edges: every task is its own chain; nothing merges.
        result = cluster_chains(graph)
        assert len(result.graph) == 6
        metrics = compute_metrics(result.graph)
        assert metrics.is_embarrassingly_parallel or len(graph) == 1
