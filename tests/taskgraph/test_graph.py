"""Unit tests for the TaskGraph container."""

import pytest

from repro.taskgraph import DesignPoint, GraphValidationError, TaskGraph


def dp(area=10, latency=5, name="dp1"):
    return DesignPoint(area=area, latency=latency, name=name)


def two_tasks():
    graph = TaskGraph("g")
    graph.add_task("a", (dp(),))
    graph.add_task("b", (dp(),))
    return graph


class TestConstruction:
    def test_duplicate_task_rejected(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.add_task("a", (dp(),))

    def test_task_without_design_points_rejected(self):
        graph = TaskGraph()
        with pytest.raises(GraphValidationError):
            graph.add_task("a", ())

    def test_edge_to_unknown_task_rejected(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.add_edge("a", "zzz", 1)

    def test_self_loop_rejected(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.add_edge("a", "a", 1)

    def test_duplicate_edge_rejected(self):
        graph = two_tasks()
        graph.add_edge("a", "b", 1)
        with pytest.raises(GraphValidationError):
            graph.add_edge("a", "b", 2)

    def test_negative_volume_rejected(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.add_edge("a", "b", -1)

    def test_negative_env_rejected(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.set_env_input("a", -1)


class TestQueries:
    def test_membership_and_len(self):
        graph = two_tasks()
        assert "a" in graph
        assert "c" not in graph
        assert len(graph) == 2

    def test_neighbors(self):
        graph = two_tasks()
        graph.add_edge("a", "b", 7)
        assert graph.successors("a") == ("b",)
        assert graph.predecessors("b") == ("a",)
        assert graph.data_volume("a", "b") == 7

    def test_missing_edge_volume(self):
        graph = two_tasks()
        with pytest.raises(GraphValidationError):
            graph.data_volume("a", "b")

    def test_env_defaults_to_zero(self):
        graph = two_tasks()
        assert graph.env_input("a") == 0.0
        graph.set_env_input("a", 4)
        assert graph.env_input("a") == 4.0

    def test_sources_and_sinks(self):
        graph = two_tasks()
        graph.add_edge("a", "b", 1)
        assert graph.sources() == ("a",)
        assert graph.sinks() == ("b",)

    def test_edges_listing(self):
        graph = two_tasks()
        graph.add_edge("a", "b", 3)
        assert graph.edges == (("a", "b", 3.0),)
        assert graph.num_edges == 1


class TestTopology:
    def test_topological_order_respects_edges(self):
        graph = TaskGraph()
        for name in "abcd":
            graph.add_task(name, (dp(),))
        graph.add_edge("a", "c", 1)
        graph.add_edge("b", "c", 1)
        graph.add_edge("c", "d", 1)
        order = graph.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_cycle_detected(self):
        graph = two_tasks()
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        with pytest.raises(GraphValidationError):
            graph.topological_order()
        assert not graph.is_acyclic()

    def test_levels(self):
        graph = TaskGraph()
        for name in "abc":
            graph.add_task(name, (dp(),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "c", 1)
        assert graph.level_of() == {"a": 0, "b": 1, "c": 2}


class TestAggregates:
    def test_min_max_area_and_latency(self):
        graph = TaskGraph()
        graph.add_task(
            "a",
            (dp(area=10, latency=100), dp(area=20, latency=50, name="dp2")),
        )
        graph.add_task("b", (dp(area=5, latency=30),))
        assert graph.total_min_area() == 15
        assert graph.total_max_area() == 25
        assert graph.total_max_latency() == 130

    def test_task_accessors(self):
        graph = TaskGraph()
        task = graph.add_task(
            "a",
            (dp(area=10, latency=100), dp(area=20, latency=50, name="dp2")),
        )
        assert task.min_area == 10
        assert task.max_area == 20
        assert task.min_latency == 50
        assert task.max_latency == 100
        assert task.design_point("dp2").latency == 50
        with pytest.raises(KeyError):
            task.design_point("nope")
