"""Unit and property tests for the synthetic task-graph generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgraph import (
    DesignSpaceSpec,
    fork_join_graph,
    layered_graph,
    pareto_filter,
    random_dag,
    random_design_points,
    series_parallel_graph,
)


class TestDesignPoints:
    def test_points_are_pareto_front(self):
        rng = random.Random(0)
        for _ in range(20):
            points = random_design_points(rng, DesignSpaceSpec())
            assert list(points) == pareto_filter(points)

    def test_labels_dense(self):
        rng = random.Random(1)
        points = random_design_points(rng, DesignSpaceSpec())
        assert [p.name for p in points] == [
            f"dp{i + 1}" for i in range(len(points))
        ]

    def test_deterministic_for_seed(self):
        a = random_design_points(random.Random(42), DesignSpaceSpec())
        b = random_design_points(random.Random(42), DesignSpaceSpec())
        assert [(p.area, p.latency) for p in a] == [
            (p.area, p.latency) for p in b
        ]


class TestLayered:
    def test_structure(self):
        graph = layered_graph(3, 4, seed=5)
        assert len(graph) == 12
        assert graph.is_acyclic()
        # Non-source tasks have at least one predecessor.
        levels = graph.level_of()
        for task in graph:
            if levels[task.name] > 0:
                assert graph.predecessors(task.name)

    def test_env_io_on_boundary_tasks(self):
        graph = layered_graph(3, 2, seed=1)
        assert all(graph.env_input(t) > 0 for t in graph.sources())
        assert all(graph.env_output(t) > 0 for t in graph.sinks())

    def test_determinism(self):
        a = layered_graph(4, 3, seed=9)
        b = layered_graph(4, 3, seed=9)
        assert a.edges == b.edges

    def test_seed_changes_structure(self):
        a = layered_graph(4, 3, seed=1)
        b = layered_graph(4, 3, seed=2)
        assert a.edges != b.edges

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            layered_graph(0, 3)


class TestForkJoin:
    def test_structure(self):
        graph = fork_join_graph(3, 2, seed=0)
        assert len(graph) == 2 + 3 * 2
        assert graph.sources() == ("fork",)
        assert graph.sinks() == ("join",)
        assert graph.is_acyclic()

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            fork_join_graph(0, 1)


class TestSeriesParallel:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_acyclic_at_any_depth(self, depth):
        graph = series_parallel_graph(depth, seed=3)
        assert graph.is_acyclic()
        assert len(graph) >= 1

    def test_single_entry_exit_env(self):
        graph = series_parallel_graph(3, seed=4)
        assert sum(1 for t in graph if graph.env_input(t.name) > 0) == 1
        assert sum(1 for t in graph if graph.env_output(t.name) > 0) == 1


class TestRandomDag:
    @given(
        st.integers(1, 20),
        st.integers(0, 10_000),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_acyclic(self, n, seed, p):
        graph = random_dag(n, seed=seed, edge_probability=p)
        assert len(graph) == n
        assert graph.is_acyclic()

    def test_every_task_has_design_points(self):
        graph = random_dag(15, seed=2, edge_probability=0.3)
        for task in graph:
            assert len(task.design_points) >= 1
            assert task.min_area <= task.max_area
