"""Hypothesis properties of the TaskGraph container itself."""

from hypothesis import given, settings, strategies as st

from repro.taskgraph import (
    DesignPoint,
    TaskGraph,
    count_paths,
    longest_path_latency,
    random_dag,
)
from repro.taskgraph.paths import transitive_predecessors

QUICK = settings(max_examples=60, deadline=None)


@st.composite
def any_dag(draw):
    n = draw(st.integers(1, 15))
    seed = draw(st.integers(0, 100_000))
    p = draw(st.floats(0.0, 0.6))
    return random_dag(n, seed=seed, edge_probability=p)


class TestTopology:
    @given(any_dag())
    @QUICK
    def test_topological_order_is_a_permutation(self, graph):
        order = graph.topological_order()
        assert sorted(order) == sorted(graph.task_names)

    @given(any_dag())
    @QUICK
    def test_every_edge_respects_order(self, graph):
        position = {n: i for i, n in enumerate(graph.topological_order())}
        for src, dst, _v in graph.edges:
            assert position[src] < position[dst]

    @given(any_dag())
    @QUICK
    def test_levels_increase_along_edges(self, graph):
        levels = graph.level_of()
        for src, dst, _v in graph.edges:
            assert levels[dst] >= levels[src] + 1

    @given(any_dag())
    @QUICK
    def test_sources_and_sinks_consistent(self, graph):
        for source in graph.sources():
            assert graph.predecessors(source) == ()
        for sink in graph.sinks():
            assert graph.successors(sink) == ()
        assert graph.sources() and graph.sinks()

    @given(any_dag())
    @QUICK
    def test_transitive_predecessors_contain_direct(self, graph):
        ancestors = transitive_predecessors(graph)
        for name in graph.task_names:
            for pred in graph.predecessors(name):
                assert pred in ancestors[name]
                assert ancestors[pred] <= ancestors[name]


class TestPathInvariants:
    @given(any_dag())
    @QUICK
    def test_path_count_at_least_sink_count(self, graph):
        assert count_paths(graph) >= len(graph.sinks())

    @given(any_dag())
    @QUICK
    def test_longest_path_bounds(self, graph):
        latency = longest_path_latency(
            graph, lambda t: graph.task(t).min_latency
        )
        single_max = max(t.min_latency for t in graph)
        total = sum(t.min_latency for t in graph)
        assert single_max - 1e-9 <= latency <= total + 1e-9

    @given(any_dag())
    @QUICK
    def test_uniform_latency_equals_depth(self, graph):
        depth_tasks = longest_path_latency(graph, lambda t: 1.0)
        assert depth_tasks == max(graph.level_of().values()) + 1


class TestEdgeMutationSafety:
    def test_edges_tuple_is_a_snapshot(self):
        graph = TaskGraph()
        graph.add_task("a", (DesignPoint(1, 1),))
        graph.add_task("b", (DesignPoint(1, 1),))
        snapshot = graph.edges
        graph.add_edge("a", "b", 1)
        assert snapshot == ()
        assert graph.edges == (("a", "b", 1.0),)
