"""Unit tests for path utilities."""

import pytest

from repro.taskgraph import (
    DesignPoint,
    TaskGraph,
    count_paths,
    critical_path,
    enumerate_paths,
    longest_path_latency,
)
from repro.taskgraph.paths import (
    PathLimitExceeded,
    restrict_path_latency,
    transitive_predecessors,
)


def dp(latency, area=10):
    return DesignPoint(area=area, latency=latency, name="dp1")


def diamond():
    graph = TaskGraph("diamond")
    graph.add_task("a", (dp(10),))
    graph.add_task("b", (dp(20),))
    graph.add_task("c", (dp(5),))
    graph.add_task("d", (dp(1),))
    graph.add_edge("a", "b", 1)
    graph.add_edge("a", "c", 1)
    graph.add_edge("b", "d", 1)
    graph.add_edge("c", "d", 1)
    return graph


class TestCounting:
    def test_diamond_has_two_paths(self):
        assert count_paths(diamond()) == 2

    def test_isolated_task_counts_one(self):
        graph = TaskGraph()
        graph.add_task("solo", (dp(1),))
        assert count_paths(graph) == 1

    def test_wide_bipartite(self):
        graph = TaskGraph()
        for i in range(3):
            graph.add_task(f"s{i}", (dp(1),))
        for i in range(3):
            graph.add_task(f"t{i}", (dp(1),))
        for i in range(3):
            for j in range(3):
                graph.add_edge(f"s{i}", f"t{j}", 1)
        assert count_paths(graph) == 9


class TestEnumeration:
    def test_paths_of_diamond(self):
        paths = enumerate_paths(diamond())
        assert ("a", "b", "d") in paths
        assert ("a", "c", "d") in paths
        assert len(paths) == 2

    def test_limit_enforced_before_enumeration(self):
        graph = TaskGraph()
        # 2^10 paths through 10 diamond stages.
        graph.add_task("n0", (dp(1),))
        for stage in range(10):
            top, bottom, joint = (
                f"t{stage}", f"b{stage}", f"n{stage + 1}"
            )
            graph.add_task(top, (dp(1),))
            graph.add_task(bottom, (dp(1),))
            graph.add_task(joint, (dp(1),))
            graph.add_edge(f"n{stage}", top, 1)
            graph.add_edge(f"n{stage}", bottom, 1)
            graph.add_edge(top, joint, 1)
            graph.add_edge(bottom, joint, 1)
        assert count_paths(graph) == 2 ** 10
        with pytest.raises(PathLimitExceeded):
            enumerate_paths(graph, limit=100)

    def test_every_enumerated_path_runs_source_to_sink(self):
        graph = diamond()
        for path in enumerate_paths(graph):
            assert path[0] in graph.sources()
            assert path[-1] in graph.sinks()
            for src, dst in zip(path, path[1:]):
                assert dst in graph.successors(src)


class TestLongestPath:
    def test_longest_path_latency(self):
        graph = diamond()
        latency = longest_path_latency(
            graph, lambda t: graph.task(t).design_points[0].latency
        )
        assert latency == 31  # a + b + d

    def test_critical_path_returns_path(self):
        graph = diamond()
        latency, path = critical_path(
            graph, lambda t: graph.task(t).design_points[0].latency
        )
        assert latency == 31
        assert path == ("a", "b", "d")

    def test_empty_graph_critical_path(self):
        graph = TaskGraph()
        assert critical_path(graph, lambda t: 0.0) == (0.0, ())

    def test_custom_latency_function(self):
        graph = diamond()
        latency = longest_path_latency(graph, lambda t: 1.0)
        assert latency == 3  # three tasks on the longest path


class TestHelpers:
    def test_restrict_path_latency_skips_none(self):
        total = restrict_path_latency(
            ["a", "b", "c"],
            lambda t: {"a": 5.0, "b": None, "c": 2.0}[t],
        )
        assert total == 7.0

    def test_transitive_predecessors(self):
        graph = diamond()
        ancestors = transitive_predecessors(graph)
        assert ancestors["a"] == frozenset()
        assert ancestors["d"] == frozenset({"a", "b", "c"})
        assert ancestors["b"] == frozenset({"a"})
