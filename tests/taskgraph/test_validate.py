"""Unit tests for task-graph validation."""

import pytest

from repro.taskgraph import (
    DesignPoint,
    GraphValidationError,
    TaskGraph,
    ar_filter,
    validate_graph,
)


def dp(area=10, latency=5, name="dp1"):
    return DesignPoint(area=area, latency=latency, name=name)


class TestErrors:
    def test_empty_graph(self):
        report = validate_graph(TaskGraph())
        assert not report.ok
        assert "no tasks" in report.errors[0]

    def test_cycle_reported(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("b", (dp(),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        report = validate_graph(graph)
        assert not report.ok
        assert "cycle" in report.errors[0]

    def test_oversized_task_with_capacity(self):
        graph = TaskGraph()
        graph.add_task("huge", (dp(area=1000),))
        report = validate_graph(graph, resource_capacity=500)
        assert not report.ok
        assert "exceeds the device capacity" in report.errors[0]

    def test_raise_if_failed(self):
        report = validate_graph(TaskGraph())
        with pytest.raises(GraphValidationError):
            report.raise_if_failed()


class TestWarnings:
    def test_dominated_design_point_warned(self):
        graph = TaskGraph()
        graph.add_task(
            "a",
            (dp(area=10, latency=10), dp(area=20, latency=20, name="dp2")),
        )
        report = validate_graph(graph)
        assert report.ok
        assert any("dominated" in w for w in report.warnings)

    def test_isolated_task_warned(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("island", (dp(),))
        graph.add_task("b", (dp(),))
        graph.add_edge("a", "b", 1)
        report = validate_graph(graph)
        assert any("isolated" in w for w in report.warnings)

    def test_isolated_with_env_io_not_warned(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("b", (dp(),))
        graph.set_env_input("a", 1)
        graph.set_env_output("a", 1)
        graph.add_edge("a", "b", 1)  # keep b connected
        report = validate_graph(graph)
        assert report.warnings == []

    def test_strict_promotes_warnings(self):
        graph = TaskGraph()
        graph.add_task(
            "a",
            (dp(area=10, latency=10), dp(area=20, latency=20, name="dp2")),
        )
        report = validate_graph(graph, strict=True)
        assert not report.ok


class TestCleanGraphs:
    def test_paper_graph_clean(self):
        report = validate_graph(ar_filter(), resource_capacity=400)
        assert report.ok
        assert report.warnings == []
