"""Unit tests for task-graph validation."""

import pytest

from repro.taskgraph import (
    DesignPoint,
    GraphValidationError,
    TaskGraph,
    ar_filter,
    validate_graph,
)


def dp(area=10, latency=5, name="dp1"):
    return DesignPoint(area=area, latency=latency, name=name)


class TestErrors:
    def test_empty_graph(self):
        report = validate_graph(TaskGraph())
        assert not report.ok
        assert "no tasks" in report.errors[0]

    def test_cycle_reported(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("b", (dp(),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        report = validate_graph(graph)
        assert not report.ok
        assert "cycle" in report.errors[0]

    def test_oversized_task_with_capacity(self):
        graph = TaskGraph()
        graph.add_task("huge", (dp(area=1000),))
        report = validate_graph(graph, resource_capacity=500)
        assert not report.ok
        assert "exceeds the device capacity" in report.errors[0]

    def test_raise_if_failed(self):
        report = validate_graph(TaskGraph())
        with pytest.raises(GraphValidationError):
            report.raise_if_failed()


class TestWarnings:
    def test_dominated_design_point_warned(self):
        graph = TaskGraph()
        graph.add_task(
            "a",
            (dp(area=10, latency=10), dp(area=20, latency=20, name="dp2")),
        )
        report = validate_graph(graph)
        assert report.ok
        assert any("dominated" in w for w in report.warnings)

    def test_isolated_task_warned(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("island", (dp(),))
        graph.add_task("b", (dp(),))
        graph.add_edge("a", "b", 1)
        report = validate_graph(graph)
        assert any("isolated" in w for w in report.warnings)

    def test_isolated_with_env_io_not_warned(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("b", (dp(),))
        graph.set_env_input("a", 1)
        graph.set_env_output("a", 1)
        graph.add_edge("a", "b", 1)  # keep b connected
        report = validate_graph(graph)
        assert report.warnings == []

    def test_strict_promotes_warnings(self):
        graph = TaskGraph()
        graph.add_task(
            "a",
            (dp(area=10, latency=10), dp(area=20, latency=20, name="dp2")),
        )
        report = validate_graph(graph, strict=True)
        assert not report.ok


class TestCleanGraphs:
    def test_paper_graph_clean(self):
        report = validate_graph(ar_filter(), resource_capacity=400)
        assert report.ok
        assert report.warnings == []


class TestEdgeCases:
    def test_single_task_graph_is_clean(self):
        graph = TaskGraph()
        graph.add_task("only", (dp(),))
        report = validate_graph(graph, resource_capacity=100)
        assert report.ok
        # A lone task has no neighbors by definition; that is not an
        # "isolated fragment" worth warning about.
        assert report.warnings == []

    def test_single_oversized_task(self):
        graph = TaskGraph()
        graph.add_task("only", (dp(area=1000),))
        report = validate_graph(graph, resource_capacity=100)
        assert not report.ok

    def test_task_with_zero_design_points_rejected_at_construction(self):
        graph = TaskGraph()
        with pytest.raises(GraphValidationError, match="no design points"):
            graph.add_task("empty", ())

    def test_cycle_through_longer_path(self):
        graph = TaskGraph()
        for name in ("a", "b", "c"):
            graph.add_task(name, (dp(),))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "c", 1)
        graph.add_edge("c", "a", 1)
        report = validate_graph(graph)
        assert not report.ok
        assert "cycle" in report.errors[0]

    def test_empty_graph_short_circuits_before_other_checks(self):
        report = validate_graph(TaskGraph(), resource_capacity=1.0)
        assert report.errors == ["task graph has no tasks"]
        assert report.warnings == []

    def test_strict_on_clean_graph_stays_ok(self):
        graph = TaskGraph()
        graph.add_task("a", (dp(),))
        graph.add_task("b", (dp(),))
        graph.add_edge("a", "b", 1)
        report = validate_graph(graph, strict=True)
        assert report.ok
        assert report.warnings == []
