"""Unit tests for graph metrics."""

import pytest

from repro.taskgraph import (
    DesignPoint,
    TaskGraph,
    ar_filter,
    compute_metrics,
    dct_4x4,
    parallelism_profile,
)


class TestParallelismProfile:
    def test_chain(self, chain_graph):
        assert parallelism_profile(chain_graph) == {0: 1, 1: 1, 2: 1}

    def test_dct_profile(self):
        # 16 sources at level 0, 16 consumers at level 1.
        assert parallelism_profile(dct_4x4()) == {0: 16, 1: 16}

    def test_ar_profile(self):
        profile = parallelism_profile(ar_filter())
        assert profile == {0: 1, 1: 1, 2: 2, 3: 1, 4: 1}


class TestComputeMetrics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(TaskGraph())

    def test_dct_metrics(self):
        metrics = compute_metrics(dct_4x4())
        assert metrics.num_tasks == 32
        assert metrics.num_edges == 64
        assert metrics.depth == 2
        assert metrics.width == 16
        assert metrics.num_paths == 64
        assert metrics.avg_design_points == pytest.approx(3.0)
        assert metrics.total_data_volume == pytest.approx(64.0)
        # Critical path 795 over total min work (16*375 + 16*420).
        assert metrics.serialization_ratio == pytest.approx(
            795 / (16 * 375 + 16 * 420)
        )
        assert not metrics.is_chainlike

    def test_chain_metrics(self, chain_graph):
        metrics = compute_metrics(chain_graph)
        assert metrics.is_chainlike
        assert metrics.serialization_ratio == pytest.approx(1.0)
        assert not metrics.is_embarrassingly_parallel

    def test_parallel_metrics(self):
        graph = TaskGraph("par")
        for i in range(4):
            graph.add_task(f"t{i}", (DesignPoint(10, 10, name="dp1"),))
        metrics = compute_metrics(graph)
        assert metrics.is_embarrassingly_parallel
        assert metrics.density == 0.0
        assert metrics.serialization_ratio == pytest.approx(0.25)

    def test_single_task(self):
        graph = TaskGraph("one")
        graph.add_task("t", (DesignPoint(10, 10, name="dp1"),))
        metrics = compute_metrics(graph)
        assert metrics.depth == 1
        assert metrics.width == 1
        assert not metrics.is_embarrassingly_parallel
