"""Unit tests for design points, module sets, and Pareto filtering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgraph import DesignPoint, ModuleSet, pareto_filter


class TestModuleSet:
    def test_from_mapping_sorts_and_drops_zeros(self):
        ms = ModuleSet.from_mapping({"mul": 2, "add": 1, "sub": 0})
        assert ms.counts == (("add", 1), ("mul", 2))

    def test_as_dict_round_trip(self):
        ms = ModuleSet.from_mapping({"mul": 2, "add": 1})
        assert ms.as_dict() == {"mul": 2, "add": 1}

    def test_count_accessor(self):
        ms = ModuleSet.from_mapping({"mul": 2})
        assert ms.count("mul") == 2
        assert ms.count("add") == 0

    def test_total_units(self):
        ms = ModuleSet.from_mapping({"mul": 2, "add": 3})
        assert ms.total_units == 5

    def test_str(self):
        assert str(ModuleSet()) == "{}"
        assert "mul x2" in str(ModuleSet.from_mapping({"mul": 2}))

    def test_hashable_and_equal(self):
        a = ModuleSet.from_mapping({"mul": 1})
        b = ModuleSet.from_mapping({"mul": 1})
        assert a == b
        assert len({a, b}) == 1


class TestDesignPoint:
    def test_positive_area_required(self):
        with pytest.raises(ValueError):
            DesignPoint(area=0, latency=10)

    def test_positive_latency_required(self):
        with pytest.raises(ValueError):
            DesignPoint(area=10, latency=-1)

    def test_dominates(self):
        small_fast = DesignPoint(area=10, latency=10)
        big_slow = DesignPoint(area=20, latency=20)
        assert small_fast.dominates(big_slow)
        assert not big_slow.dominates(small_fast)

    def test_equal_points_do_not_dominate(self):
        a = DesignPoint(area=10, latency=10)
        b = DesignPoint(area=10, latency=10)
        assert not a.dominates(b)

    def test_incomparable_points(self):
        small_slow = DesignPoint(area=10, latency=20)
        big_fast = DesignPoint(area=20, latency=10)
        assert not small_slow.dominates(big_fast)
        assert not big_fast.dominates(small_slow)

    def test_label(self):
        assert DesignPoint(1, 1, name="dpX").label() == "dpX"
        assert DesignPoint(1, 1).label(3) == "dp3"


class TestParetoFilter:
    def test_dominated_points_removed(self):
        points = [
            DesignPoint(10, 100),
            DesignPoint(20, 50),
            DesignPoint(15, 120),   # dominated by (10, 100)
        ]
        front = pareto_filter(points)
        assert len(front) == 2
        assert all(p.latency in (100, 50) for p in front)

    def test_front_sorted_by_area(self):
        points = [DesignPoint(30, 10), DesignPoint(10, 30), DesignPoint(20, 20)]
        front = pareto_filter(points)
        assert [p.area for p in front] == [10, 20, 30]

    def test_duplicates_collapse(self):
        points = [DesignPoint(10, 10), DesignPoint(10, 10)]
        assert len(pareto_filter(points)) == 1

    def test_empty_input(self):
        assert pareto_filter([]) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 100), st.integers(1, 100)
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_front_is_mutually_non_dominating(self, pairs):
        points = [DesignPoint(a, l) for a, l in pairs]
        front = pareto_filter(points)
        for p in front:
            for q in front:
                if p is not q:
                    assert not p.dominates(q)

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(1, 100)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_every_point_dominated_by_or_on_front(self, pairs):
        points = [DesignPoint(a, l) for a, l in pairs]
        front = pareto_filter(points)
        for p in points:
            covered = any(
                q.dominates(p) or (q.area == p.area and q.latency == p.latency)
                for q in front
            )
            assert covered
