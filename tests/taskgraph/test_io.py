"""Unit tests for JSON round-trip and DOT export."""

import json

import pytest

from repro.taskgraph import (
    GraphValidationError,
    ar_filter,
    dct_4x4,
    from_dict,
    layered_graph,
    load_json,
    save_json,
    to_dict,
    to_dot,
)


def graphs_equal(a, b) -> bool:
    if a.task_names != b.task_names:
        return False
    for task_a in a:
        task_b = b.task(task_a.name)
        points_a = [(p.area, p.latency, p.module_set) for p in task_a.design_points]
        points_b = [(p.area, p.latency, p.module_set) for p in task_b.design_points]
        if points_a != points_b or task_a.kind != task_b.kind:
            return False
    return (
        a.edges == b.edges
        and dict(a.env_inputs) == dict(b.env_inputs)
        and dict(a.env_outputs) == dict(b.env_outputs)
    )


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [ar_filter, dct_4x4, lambda: layered_graph(3, 3, seed=1)],
    )
    def test_round_trip(self, factory):
        graph = factory()
        rebuilt = from_dict(to_dict(graph))
        assert graphs_equal(graph, rebuilt)

    def test_file_round_trip(self, tmp_path):
        graph = ar_filter()
        path = tmp_path / "graph.json"
        save_json(graph, path)
        rebuilt = load_json(path)
        assert graphs_equal(graph, rebuilt)
        # And the file is actual JSON.
        payload = json.loads(path.read_text())
        assert payload["version"] == 1

    def test_unsupported_version_rejected(self):
        payload = to_dict(ar_filter())
        payload["version"] = 99
        with pytest.raises(GraphValidationError):
            from_dict(payload)

    def test_dict_is_json_serializable(self):
        text = json.dumps(to_dict(dct_4x4()))
        assert "Y00" in text


class TestDot:
    def test_plain_dot(self):
        dot = to_dot(ar_filter())
        assert dot.startswith('digraph "ar_filter"')
        assert '"T1" -> "T2"' in dot
        assert dot.rstrip().endswith("}")

    def test_clustered_dot(self):
        graph = ar_filter()
        partition_of = {name: 1 + (i // 3) for i, name in enumerate(graph.task_names)}
        dot = to_dot(graph, partition_of)
        assert "cluster_p1" in dot
        assert "cluster_p2" in dot
        assert 'label="partition 1"' in dot

    def test_edge_volumes_labeled(self):
        dot = to_dot(ar_filter())
        assert '[label="8"]' in dot
