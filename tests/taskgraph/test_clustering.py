"""Tests for chain clustering and design expansion."""

import pytest

from repro.arch import ReconfigurableProcessor
from repro.core import PartitionedDesign, bounds, build_model
from repro.taskgraph import (
    DesignPoint,
    TaskGraph,
    ar_filter,
    cluster_chains,
    dct_4x4,
    layered_graph,
)


def chain_graph():
    """a -> b -> c -> d, with a diamond hanging off c? No: pure chain."""
    graph = TaskGraph("chain4")
    specs = {
        "a": ((100, 40), (160, 20)),
        "b": ((80, 30),),
        "c": ((120, 50), (200, 25)),
        "d": ((90, 10),),
    }
    for name, points in specs.items():
        graph.add_task(
            name,
            tuple(
                DesignPoint(area, lat, name=f"dp{i+1}")
                for i, (area, lat) in enumerate(points)
            ),
        )
    graph.add_edge("a", "b", 4)
    graph.add_edge("b", "c", 4)
    graph.add_edge("c", "d", 4)
    graph.set_env_input("a", 8)
    graph.set_env_output("d", 2)
    return graph


class TestChainDetection:
    def test_pure_chain_collapses_to_one_task(self):
        result = cluster_chains(chain_graph())
        assert len(result.graph) == 1
        (cluster,) = result.graph.tasks
        assert result.members[cluster.name] == ("a", "b", "c", "d")
        assert result.graph.num_edges == 0

    def test_env_io_accumulated(self):
        result = cluster_chains(chain_graph())
        (cluster,) = result.graph.tasks
        assert result.graph.env_input(cluster.name) == 8
        assert result.graph.env_output(cluster.name) == 2

    def test_diamond_not_merged_through_branch(self, diamond_graph):
        result = cluster_chains(diamond_graph)
        # a has two successors, d two predecessors: nothing merges.
        assert len(result.graph) == 4
        assert result.num_merged == 0

    def test_dct_has_no_chains(self):
        result = cluster_chains(dct_4x4())
        assert len(result.graph) == 32

    def test_ar_filter_merges_tail(self):
        result = cluster_chains(ar_filter())
        # T1->T2 is a chain head (T2 forks after), T5->T6 merges.
        names = set(result.graph.task_names)
        assert any("T5" in n and "T6" in n for n in names)
        assert len(result.graph) < 6


class TestMergedDesignPoints:
    def test_points_are_pareto_and_sane(self):
        result = cluster_chains(chain_graph())
        (cluster,) = result.graph.tasks
        areas = [dp.area for dp in cluster.design_points]
        latencies = [dp.latency for dp in cluster.design_points]
        assert areas == sorted(areas)
        assert latencies == sorted(latencies, reverse=True)
        # Cheapest combo: 100+80+120+90; fastest: 160+80+200+90.
        assert min(areas) == pytest.approx(390)
        assert min(latencies) == pytest.approx(20 + 30 + 25 + 10)

    def test_combination_bookkeeping(self):
        result = cluster_chains(chain_graph())
        (cluster,) = result.graph.tasks
        for i, dp in enumerate(cluster.design_points, start=1):
            labels = result.combination[(cluster.name, dp.label(i))]
            assert len(labels) == 4


class TestExpansion:
    def test_expanded_design_is_valid_and_equivalent(self):
        graph = chain_graph()
        result = cluster_chains(graph)
        processor = ReconfigurableProcessor(600, 64, 10)
        n = bounds.min_area_partitions(result.graph, 600)
        tp = build_model(
            result.graph, processor, n,
            bounds.max_latency(result.graph, n, 10),
        )
        solution = tp.solve(backend="highs", first_feasible=True)
        clustered_design = tp.design_from(solution)
        expanded = result.expand(clustered_design)
        assert isinstance(expanded, PartitionedDesign)
        assert expanded.graph is graph
        assert expanded.audit(processor) == []
        # Serial chain in one partition: latency identical by construction.
        assert expanded.total_latency(processor) == pytest.approx(
            clustered_design.total_latency(processor)
        )

    def test_expand_on_layered_graph_end_to_end(self):
        graph = layered_graph(4, 1, seed=6)   # a 4-chain
        result = cluster_chains(graph)
        assert len(result.graph) <= len(graph)
        processor = ReconfigurableProcessor(900, 512, 10)
        n = bounds.min_area_partitions(result.graph, 900)
        tp = build_model(
            result.graph, processor, n,
            bounds.max_latency(result.graph, n, 10),
        )
        solution = tp.solve(backend="highs", first_feasible=True)
        expanded = result.expand(tp.design_from(solution))
        assert expanded.audit(processor) == []
        assert set(expanded.placements) == set(graph.task_names)

    def test_expand_without_original_rejected(self):
        result = cluster_chains(chain_graph())
        result.original = None
        with pytest.raises(ValueError):
            result.expand(None)  # type: ignore[arg-type]
