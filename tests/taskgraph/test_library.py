"""Tests pinning the paper's benchmark graphs to their calibrated figures.

These assertions encode the derived quantities the reproduction relies on
(see DESIGN.md, "Calibrated DCT numbers"); changing the library values
without updating the experiments would break the table reproductions, and
these tests catch that immediately.
"""


import pytest

from repro.core import bounds
from repro.taskgraph import (
    ar_filter,
    count_paths,
    dct_4x4,
    longest_path_latency,
    validate_graph,
)


class TestArFilter:
    def test_six_tasks(self):
        assert len(ar_filter()) == 6

    def test_design_point_counts_follow_paper(self):
        graph = ar_filter()
        counts = {t.name: len(t.design_points) for t in graph}
        assert counts == {
            "T1": 3, "T2": 1, "T3": 2, "T4": 2, "T5": 1, "T6": 1
        }

    def test_structure(self):
        graph = ar_filter()
        assert graph.sources() == ("T1",)
        assert graph.sinks() == ("T6",)
        assert count_paths(graph) == 2
        assert graph.is_acyclic()

    def test_kinds(self):
        graph = ar_filter()
        assert graph.task("T1").kind == "A"
        assert graph.task("T2").kind == "B"

    def test_validates_cleanly(self):
        report = validate_graph(ar_filter(), resource_capacity=400)
        assert report.ok


class TestDct:
    def test_thirty_two_tasks_sixty_four_edges(self):
        graph = dct_4x4()
        assert len(graph) == 32
        assert graph.num_edges == 64

    def test_three_design_points_each(self):
        graph = dct_4x4()
        assert all(len(t.design_points) == 3 for t in graph)

    def test_kind_split(self):
        graph = dct_4x4()
        kinds = [t.kind for t in graph]
        assert kinds.count("T1") == 16
        assert kinds.count("T2") == 16

    def test_four_collections_of_eight(self):
        graph = dct_4x4()
        # Stage-2 task Zrc depends exactly on the four Yr* of its row.
        for row in range(4):
            for col in range(4):
                preds = set(graph.predecessors(f"Z{row}{col}"))
                assert preds == {f"Y{row}{k}" for k in range(4)}

    def test_calibrated_min_area_sum(self):
        assert dct_4x4().total_min_area() == 4160

    def test_calibrated_max_area_sum(self):
        assert dct_4x4().total_max_area() == 6336

    def test_partition_bounds_match_paper(self):
        graph = dct_4x4()
        # Table 4 starts at 8 partitions; Tables 6/8 start at 5.
        assert bounds.min_area_partitions(graph, 576) == 8
        assert bounds.min_area_partitions(graph, 1024) == 5
        # gamma = 1 stops the R=576 search at 12 ("stop our search at 12").
        assert bounds.max_area_partitions(graph, 576) == 11

    def test_min_critical_path_is_795(self):
        graph = dct_4x4()
        latency = longest_path_latency(
            graph, lambda t: graph.task(t).min_latency
        )
        assert latency == pytest.approx(795.0)

    def test_serial_worst_case(self):
        assert dct_4x4().total_max_latency() == pytest.approx(26_880.0)

    def test_path_count_is_tractable(self):
        assert count_paths(dct_4x4()) == 64

    def test_validates_cleanly(self):
        report = validate_graph(dct_4x4(), resource_capacity=576)
        assert report.ok
        assert report.warnings == []

    def test_env_io(self):
        graph = dct_4x4()
        assert graph.env_input("Y00") == 4
        assert graph.env_output("Z33") == 1
        assert graph.env_input("Z00") == 0
