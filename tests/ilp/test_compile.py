"""The sparse compiled standard form: correctness, views, fingerprints."""

import numpy as np
import pytest

from repro.ilp import (
    Model,
    ModelError,
    SolveStatus,
    VarType,
    compile_model,
    ensure_compiled,
    solve_compiled,
)


def mixed_model() -> Model:
    """A small model exercising LE, GE and EQ rows plus MAXIMIZE."""
    m = Model("mixed")
    x = m.add_var("x", ub=4, vtype=VarType.INTEGER)
    y = m.add_binary("y")
    z = m.add_var("z", lb=-1.0, ub=3.0)
    m.add_constr(2 * x + y <= 7, name="cap")
    m.add_constr(x + z >= 1, name="floor")
    m.add_constr(y + z == 2, name="link")
    m.set_objective(3 * x + 2 * y - z, sense="maximize")
    return m


class TestCompileCorrectness:
    def test_matches_dense_standard_form(self):
        model = mixed_model()
        compiled = compile_model(model)
        form = model.to_standard_form()
        assert np.array_equal(compiled.a_ub, form.a_ub)
        assert np.array_equal(compiled.b_ub, form.b_ub)
        assert np.array_equal(compiled.a_eq, form.a_eq)
        assert np.array_equal(compiled.b_eq, form.b_eq)
        assert np.array_equal(compiled.c, form.c)
        assert compiled.c0 == form.c0
        assert np.array_equal(compiled.lb, form.lb)
        assert np.array_equal(compiled.ub, form.ub)
        assert np.array_equal(compiled.is_integral, form.is_integral)

    def test_ge_row_is_negated(self):
        compiled = compile_model(mixed_model())
        kind, row = compiled.row_position("floor")
        assert kind == "ub"
        assert compiled.b_ub[row] == -1.0  # x + z >= 1  ->  -x - z <= -1

    def test_round_trip_to_standard_form(self):
        model = mixed_model()
        direct = model.to_standard_form()
        via_compiled = compile_model(model).to_standard_form()
        assert np.array_equal(direct.a_ub, via_compiled.a_ub)
        assert np.array_equal(direct.a_eq, via_compiled.a_eq)

    def test_csr_views_match_dense(self):
        compiled = compile_model(mixed_model())
        assert np.array_equal(compiled.a_ub_csr().toarray(), compiled.a_ub)
        assert np.array_equal(compiled.a_eq_csr().toarray(), compiled.a_eq)

    def test_var_index_is_insertion_order(self):
        compiled = compile_model(mixed_model())
        assert compiled.var_index == {"x": 0, "y": 1, "z": 2}

    def test_model_compile_is_cached(self):
        model = mixed_model()
        assert model.compile() is model.compile()

    def test_mutation_invalidates_compile_cache(self):
        model = mixed_model()
        first = model.compile()
        model.add_var("extra")
        assert model.compile() is not first


class TestEnsureCompiled:
    def test_idempotent_on_compiled(self):
        compiled = compile_model(mixed_model())
        assert ensure_compiled(compiled) is compiled

    def test_coerces_model(self):
        model = mixed_model()
        assert ensure_compiled(model) is model.compile()

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_compiled(object())


class TestIncrementalViews:
    def test_with_b_ub_patches_only_rhs(self):
        base = compile_model(mixed_model())
        kind, row = base.row_position("cap")
        patched = base.with_b_ub({row: 5.0})
        assert patched.b_ub[row] == 5.0
        assert base.b_ub[row] == 7.0  # original untouched
        # Structure and view caches are shared, not copied.
        assert patched.ub_data is base.ub_data
        assert patched.a_ub_csr() is base.a_ub_csr()

    def test_truncate_drops_trailing_rows_zero_copy(self):
        base = compile_model(mixed_model())
        short = base.truncate_ub_rows(base.num_ub_rows - 1)
        assert short.num_ub_rows == base.num_ub_rows - 1
        assert short.ub_names == base.ub_names[:-1]
        assert short.b_ub.base is base.b_ub  # numpy slice view
        assert np.array_equal(short.a_ub, base.a_ub[:-1])

    def test_truncate_bounds_checked(self):
        base = compile_model(mixed_model())
        with pytest.raises(ValueError):
            base.truncate_ub_rows(base.num_ub_rows + 1)


class TestFingerprint:
    def test_stable_across_identical_builds(self):
        assert (
            compile_model(mixed_model()).fingerprint()
            == compile_model(mixed_model()).fingerprint()
        )

    def test_rhs_change_alters_digest(self):
        base = compile_model(mixed_model())
        kind, row = base.row_position("cap")
        patched = base.with_b_ub({row: 5.0})
        assert base.fingerprint() != patched.fingerprint()

    def test_skip_rows_makes_digest_window_invariant(self):
        base = compile_model(mixed_model())
        kind, row = base.row_position("cap")
        patched = base.with_b_ub({row: 5.0})
        skip = ("cap",)
        assert base.fingerprint(skip) == patched.fingerprint(skip)


class TestModelIncrementalEdits:
    def test_set_rhs_patches_cached_compiled_without_recompiling(self):
        model = mixed_model()
        compiled = model.compile()
        model.set_rhs("cap", 6.0)
        kind, row = compiled.row_position("cap")
        patched = model.compile()
        assert patched.b_ub[row] == 6.0
        # No recompilation: every structure array is shared verbatim;
        # only the RHS vector was copied.
        assert patched.ub_data is compiled.ub_data
        assert patched.eq_data is compiled.eq_data
        assert patched.variables is compiled.variables
        # Previously-handed-out compiled forms are never retargeted:
        # the old handle still describes the old model.
        assert compiled.b_ub[row] == 7.0

    def test_set_rhs_negates_ge_rows(self):
        model = mixed_model()
        compiled = model.compile()
        model.set_rhs("floor", 2.0)
        kind, row = compiled.row_position("floor")
        assert model.compile().b_ub[row] == -2.0

    def test_set_rhs_patches_equality_rows(self):
        model = mixed_model()
        compiled = model.compile()
        model.set_rhs("link", 3.0)
        kind, row = compiled.row_position("link")
        assert kind == "eq"
        patched = model.compile()
        assert patched.b_eq[row] == 3.0
        assert patched.ub_data is compiled.ub_data

    def test_set_rhs_unknown_name(self):
        with pytest.raises(ModelError):
            mixed_model().set_rhs("nope", 1.0)

    def test_remove_constr(self):
        model = mixed_model()
        removed = model.remove_constr("cap")
        assert removed.name == "cap"
        assert all(c.name != "cap" for c in model.constraints)
        with pytest.raises(ModelError):
            model.remove_constr("cap")


class TestSolveCompiled:
    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    def test_matches_model_solve(self, backend):
        model = mixed_model()
        direct = model.solve(backend=backend)
        compiled = solve_compiled(model.compile(), backend=backend)
        assert direct.status is SolveStatus.OPTIMAL
        assert compiled.status is SolveStatus.OPTIMAL
        assert compiled.objective == pytest.approx(direct.objective)
        assert compiled.values == pytest.approx(direct.values)

    def test_simplex_relaxation(self):
        model = mixed_model()
        direct = model.solve(backend="simplex")
        compiled = solve_compiled(model.compile(), backend="simplex")
        assert compiled.objective == pytest.approx(direct.objective)


class TestFrozenArrays:
    """Compiled arrays are read-only: aliased siblings fail loudly."""

    def test_every_array_is_read_only(self):
        compiled = compile_model(mixed_model())
        for attr in (
            "c", "ub_indptr", "ub_indices", "ub_data", "b_ub",
            "eq_indptr", "eq_indices", "eq_data", "b_eq",
            "lb", "ub", "is_integral",
        ):
            assert not getattr(compiled, attr).flags.writeable, attr

    def test_in_place_write_raises(self):
        compiled = compile_model(mixed_model())
        with pytest.raises(ValueError):
            compiled.b_ub[0] = 99.0  # repro-lint: ignore[RL001]
        with pytest.raises(ValueError):
            compiled.ub_data[0] = 99.0  # repro-lint: ignore[RL001]

    def test_sibling_rhs_copies_are_read_only_too(self):
        compiled = compile_model(mixed_model())
        kind, row = compiled.row_position("cap")
        sibling = compiled.with_b_ub({row: 5.0})
        with pytest.raises(ValueError):
            sibling.b_ub[row] = 1.0  # repro-lint: ignore[RL001]
        truncated = compiled.truncate_ub_rows(1)
        with pytest.raises(ValueError):
            truncated.b_ub[0] = 1.0  # repro-lint: ignore[RL001]

    def test_dense_views_are_read_only(self):
        compiled = compile_model(mixed_model())
        with pytest.raises(ValueError):
            compiled.a_ub[0, 0] = 1.0
        with pytest.raises(ValueError):
            compiled.a_eq[0, 0] = 1.0
