"""Unit and property tests for the from-scratch two-phase simplex."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import Model, SolveStatus
from repro.ilp.simplex import solve_lp
from repro.ilp.scipy_backend import solve_relaxation


def arrays(*rows):
    return np.array(rows, dtype=float)


def empty(n):
    return np.zeros((0, n)), np.zeros(0)


class TestSolveLp:
    def test_simple_maximization(self):
        # min -x - 2y st x + y <= 4, x <= 3, y <= 2 -> (2, 2), obj -6.
        a_ub, b_ub = arrays([1, 1]), np.array([4.0])
        a_eq, b_eq = empty(2)
        result = solve_lp(
            np.array([-1.0, -2.0]), a_ub, b_ub, a_eq, b_eq,
            np.zeros(2), np.array([3.0, 2.0]),
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-6.0)
        assert result.x == pytest.approx([2.0, 2.0])

    def test_equality_constraints(self):
        # min x + y st x + y == 5, x <= 2 -> obj 5.
        a_eq, b_eq = arrays([1, 1]), np.array([5.0])
        a_ub, b_ub = empty(2)
        result = solve_lp(
            np.ones(2), a_ub, b_ub, a_eq, b_eq,
            np.zeros(2), np.array([2.0, np.inf]),
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(5.0)

    def test_infeasible(self):
        # x <= 1 and x >= 2 (as -x <= -2).
        a_ub = arrays([1.0], [-1.0])
        b_ub = np.array([1.0, -2.0])
        a_eq, b_eq = empty(1)
        result = solve_lp(
            np.array([1.0]), a_ub, b_ub, a_eq, b_eq,
            np.zeros(1), np.array([np.inf]),
        )
        assert result.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        a_ub, b_ub = empty(1)
        a_eq, b_eq = empty(1)
        result = solve_lp(
            np.array([-1.0]), a_ub, b_ub, a_eq, b_eq,
            np.zeros(1), np.array([np.inf]),
        )
        assert result.status is SolveStatus.UNBOUNDED

    def test_negative_lower_bounds(self):
        # min x with x in [-5, 5].
        a_ub, b_ub = empty(1)
        a_eq, b_eq = empty(1)
        result = solve_lp(
            np.array([1.0]), a_ub, b_ub, a_eq, b_eq,
            np.array([-5.0]), np.array([5.0]),
        )
        assert result.objective == pytest.approx(-5.0)

    def test_free_variable_split(self):
        # min x st x >= -7 encoded via a row, x totally free in bounds.
        a_ub = arrays([-1.0])
        b_ub = np.array([7.0])
        a_eq, b_eq = empty(1)
        result = solve_lp(
            np.array([1.0]), a_ub, b_ub, a_eq, b_eq,
            np.array([-np.inf]), np.array([np.inf]),
        )
        assert result.objective == pytest.approx(-7.0)

    def test_mirror_variable(self):
        # min -x with x <= 3 and lb = -inf: optimum at 3.
        a_ub, b_ub = empty(1)
        a_eq, b_eq = empty(1)
        result = solve_lp(
            np.array([-1.0]), a_ub, b_ub, a_eq, b_eq,
            np.array([-np.inf]), np.array([3.0]),
        )
        assert result.objective == pytest.approx(-3.0)

    def test_degenerate_problem(self):
        # Multiple redundant rows meeting at one vertex.
        a_ub = arrays([1, 0], [1, 0], [0, 1], [1, 1])
        b_ub = np.array([1.0, 1.0, 1.0, 2.0])
        a_eq, b_eq = empty(2)
        result = solve_lp(
            np.array([-1.0, -1.0]), a_ub, b_ub, a_eq, b_eq,
            np.zeros(2), np.full(2, np.inf),
        )
        assert result.objective == pytest.approx(-2.0)

    def test_empty_variable_domain(self):
        a_ub, b_ub = empty(1)
        a_eq, b_eq = empty(1)
        with pytest.raises(ValueError):
            solve_lp(
                np.array([1.0]), a_ub, b_ub, a_eq, b_eq,
                np.array([2.0]), np.array([1.0]),
            )


@st.composite
def random_lp(draw):
    """A random bounded-feasible LP: bounds keep it bounded, x=lb feasible?

    Feasibility is not guaranteed; the property below compares statuses
    with scipy either way.
    """
    n = draw(st.integers(1, 5))
    m = draw(st.integers(0, 5))
    # Snap near-zero draws to exact zero: at magnitudes below the solvers'
    # feasibility tolerances (e.g. 0.5*x <= -6e-08 with x >= 0), simplex
    # and HiGHS legitimately disagree on feasible-vs-infeasible.
    finite = st.floats(-10, 10, allow_nan=False, width=32).map(
        lambda v: 0.0 if abs(v) < 1e-6 else v
    )
    c = draw(st.lists(finite, min_size=n, max_size=n))
    rows = draw(
        st.lists(
            st.lists(finite, min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    rhs = draw(st.lists(finite, min_size=m, max_size=m))
    lb = draw(st.lists(st.floats(-5, 0, allow_nan=False, width=32),
                       min_size=n, max_size=n))
    width = draw(st.lists(st.floats(0, 10, allow_nan=False, width=32),
                          min_size=n, max_size=n))
    ub = [l + w for l, w in zip(lb, width)]
    return (
        np.array(c), np.array(rows).reshape(m, n), np.array(rhs),
        np.array(lb), np.array(ub),
    )


class TestAgainstScipy:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_linprog(self, lp):
        c, a_ub, b_ub, lb, ub = lp
        n = len(c)
        ours = solve_lp(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), lb, ub
        )

        from scipy import optimize
        ref = optimize.linprog(
            c,
            A_ub=a_ub if len(b_ub) else None,
            b_ub=b_ub if len(b_ub) else None,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )
        if ref.status == 0:
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-5, rel=1e-5)
        elif ref.status == 2:
            assert ours.status is SolveStatus.INFEASIBLE


class TestBackendAdapter:
    def test_simplex_backend_on_model(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constr(x + y <= 12)
        m.add_constr(x - y <= 2)
        m.set_objective(-(x + 2 * y))
        solution = m.solve(backend="simplex")
        assert solution.status is SolveStatus.OPTIMAL
        assert m.check_point(solution.values) == []

    def test_relaxation_helper_matches_simplex(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y <= 1)
        m.set_objective(-(x + y))
        form = m.to_standard_form()
        status, _x, objective, _n = solve_relaxation(form)
        assert status is SolveStatus.OPTIMAL
        simplex_solution = m.solve(backend="simplex")
        assert simplex_solution.objective == pytest.approx(objective)


class TestBasisWarmStart:
    """Crash onto a previous optimal basis; fall back cold on garbage."""

    def _problem(self, rhs=4.0):
        # min -x - 2y st x + y <= rhs, x <= 3, y <= 2.
        a_ub, b_ub = arrays([1, 1]), np.array([float(rhs)])
        a_eq, b_eq = empty(2)
        return (
            np.array([-1.0, -2.0]), a_ub, b_ub, a_eq, b_eq,
            np.zeros(2), np.array([3.0, 2.0]),
        )

    def test_warm_resolve_matches_cold(self):
        cold = solve_lp(*self._problem(rhs=4.0))
        assert cold.status is SolveStatus.OPTIMAL
        assert cold.basis is not None
        # Patch the RHS (the shape of a window re-solve) and restart
        # from the previous optimal basis.
        warm = solve_lp(*self._problem(rhs=4.5), start_basis=cold.basis)
        reference = solve_lp(*self._problem(rhs=4.5))
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.warm
        assert warm.objective == pytest.approx(reference.objective)
        assert warm.x == pytest.approx(reference.x)

    def test_same_problem_warm_restart(self):
        cold = solve_lp(*self._problem())
        warm = solve_lp(*self._problem(), start_basis=cold.basis)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.warm
        assert warm.objective == pytest.approx(cold.objective)

    def test_garbage_basis_falls_back_cold(self):
        # Out-of-range column indices: the crash must refuse and the
        # cold phase I must still produce the right answer.
        bad = np.array([999, 998])
        result = solve_lp(*self._problem(), start_basis=bad)
        assert result.status is SolveStatus.OPTIMAL
        assert not result.warm
        assert result.objective == pytest.approx(-6.0)

    def test_mismatched_shape_basis_falls_back_cold(self):
        cold = solve_lp(*self._problem())
        bad = np.append(cold.basis, 0)
        result = solve_lp(*self._problem(), start_basis=bad)
        assert result.status is SolveStatus.OPTIMAL
        assert not result.warm
        assert result.objective == pytest.approx(-6.0)
