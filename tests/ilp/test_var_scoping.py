"""Regression tests for variable identity and per-model ordering.

Variable ordering used to lean on a process-global counter: two
structurally identical models built at different points of the process
lifetime ordered (and therefore printed and compiled) their expressions
differently, and a model's column order depended on how many unrelated
variables had ever been created.  ``index`` is now assigned per model by
``Model.add_var``; only the hash uid stays process-global (object
identity must never collide, because ``Variable.__eq__`` builds
constraints instead of comparing).
"""

import numpy as np

from repro.ilp import Model, Variable, lp_string


def build(tag: str) -> Model:
    m = Model(f"scoped_{tag}")
    x = m.add_var("x", ub=9)
    y = m.add_binary("y")
    z = m.add_var("z", ub=5)
    m.add_constr(z + 3 * x + y <= 7, name="row")
    m.set_objective(y + 2 * x)
    return m


class TestPerModelIndices:
    def test_indices_restart_per_model(self):
        a = build("a")
        # Unrelated variables created in between must not shift model b.
        for i in range(25):
            Variable(f"junk{i}")
        b = build("b")
        assert [v.index for v in a.variables] == [0, 1, 2]
        assert [v.index for v in b.variables] == [0, 1, 2]

    def test_identical_builds_print_identically(self):
        a = build("x")
        for i in range(10):
            Variable(f"noise{i}")
        b = build("x")
        assert lp_string(a) == lp_string(b)
        assert repr(a.constraints[0]) == repr(b.constraints[0])

    def test_identical_builds_compile_identically(self):
        a = build("x").compile()
        for i in range(10):
            Variable(f"noise{i}")
        b = build("x").compile()
        assert np.array_equal(a.ub_indices, b.ub_indices)
        assert np.array_equal(a.ub_data, b.ub_data)
        assert np.array_equal(a.c, b.c)
        assert a.fingerprint() == b.fingerprint()


class TestHashIdentity:
    def test_same_index_different_models_stay_distinct_keys(self):
        # Variables from different models share indices (both 0); if the
        # hash were the index, dict lookups would conflate them because
        # Variable.__eq__ returns a (truthy) Constraint for variables.
        a = build("a").variables[0]
        b = build("b").variables[0]
        assert a.index == b.index == 0
        assert hash(a) != hash(b)
        terms = {a: 1.0, b: 2.0}
        assert len(terms) == 2

    def test_expression_on_mixed_models_keeps_both(self):
        a = build("a").variables[0]
        b = build("b").variables[0]
        expr = a + b
        assert len(expr.terms) == 2
