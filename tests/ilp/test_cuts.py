"""Tests for knapsack cover cuts."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import Model
from repro.ilp.cuts import CoverCut, apply_cuts, find_cover_cuts


def knapsack_arrays(weights, capacity):
    a_ub = np.array([weights], dtype=float)
    b_ub = np.array([float(capacity)])
    is_binary = np.ones(len(weights), dtype=bool)
    return a_ub, b_ub, is_binary


class TestSeparation:
    def test_violated_cover_found(self):
        # x* = (0.9, 0.9, 0.9), weights (4, 4, 4), capacity 10:
        # any two fit, three do not -> cover {0,1,2}: sum x <= 2,
        # violated by 0.7.
        a_ub, b_ub, is_binary = knapsack_arrays([4, 4, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        )
        assert len(cuts) == 1
        assert cuts[0].cover == (0, 1, 2)
        assert cuts[0].violation(np.array([0.9, 0.9, 0.9])) == (
            pytest.approx(0.7)
        )

    def test_integer_point_never_separated(self):
        a_ub, b_ub, is_binary = knapsack_arrays([4, 4, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([1.0, 1.0, 0.0])
        )
        assert cuts == []

    def test_rows_with_negative_coefficients_skipped(self):
        a_ub = np.array([[4.0, -4.0, 4.0]])
        b_ub = np.array([10.0])
        is_binary = np.ones(3, dtype=bool)
        assert find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        ) == []

    def test_non_binary_columns_skipped(self):
        a_ub, b_ub, _ = knapsack_arrays([4, 4, 4], 10)
        is_binary = np.array([True, True, False])
        assert find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        ) == []

    def test_cover_is_minimal(self):
        # Weights (6, 5, 4), cap 10: {0,1} is already a cover; greedy
        # must not return a superset.
        a_ub, b_ub, is_binary = knapsack_arrays([6, 5, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.95, 0.95, 0.95])
        )
        assert cuts
        cover = cuts[0].cover
        weights = [6, 5, 4]
        total = sum(weights[j] for j in cover)
        assert total > 10
        for j in cover:
            assert total - weights[j] <= 10


class TestValidity:
    @given(
        st.lists(st.integers(1, 9), min_size=3, max_size=6),
        st.integers(5, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_cuts_never_remove_integer_points(self, weights, capacity):
        a_ub, b_ub, is_binary = knapsack_arrays(weights, capacity)
        x_star = np.full(len(weights), 0.9)
        cuts = find_cover_cuts(a_ub, b_ub, is_binary, x_star)
        for bits in itertools.product([0, 1], repeat=len(weights)):
            point = np.array(bits, dtype=float)
            if float(a_ub[0] @ point) <= capacity + 1e-9:
                for cut in cuts:
                    assert cut.violation(point) <= 1e-9


class TestApplyAndSolve:
    def test_apply_appends_rows(self):
        a_ub, b_ub, _ = knapsack_arrays([4, 4, 4], 10)
        cut = CoverCut(row_index=0, cover=(0, 1, 2))
        a2, b2 = apply_cuts(a_ub, b_ub, [cut], 3)
        assert a2.shape == (2, 3)
        assert b2[-1] == 2.0
        assert a2[-1].tolist() == [1.0, 1.0, 1.0]

    def test_bnb_with_root_cuts_same_optimum(self):
        m = Model("ks")
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        weights = [4, 4, 4, 5, 5, 5]
        values = [7, 7, 7, 8, 8, 8]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 13)
        m.set_objective(-sum(v * x for v, x in zip(values, xs)))
        plain = m.solve(backend="bnb")
        cut = m.solve(backend="bnb", root_cuts=3)
        assert cut.objective == pytest.approx(plain.objective)
        assert m.check_point(cut.values) == []

    def test_root_cuts_do_not_hurt_node_count(self):
        m = Model("ks2")
        xs = [m.add_binary(f"x{i}") for i in range(10)]
        weights = [3 + (i % 4) for i in range(10)]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 17)
        m.set_objective(-sum((i + 2) * x for i, x in enumerate(xs)))
        plain = m.solve(backend="bnb")
        cut = m.solve(backend="bnb", root_cuts=5)
        assert cut.objective == pytest.approx(plain.objective)


class TestValidityRandomPoints:
    @given(
        st.lists(st.integers(1, 9), min_size=3, max_size=6),
        st.integers(5, 25),
        st.lists(st.floats(0.0, 1.0), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_cuts_from_random_fractional_points_valid(
        self, weights, capacity, fractions
    ):
        # Every cut separated from *any* fractional point must hold at
        # every integer point of the knapsack — the soundness property
        # the persistent pool relies on when replaying cuts across
        # windows.
        a_ub, b_ub, is_binary = knapsack_arrays(weights, capacity)
        x_star = np.array(fractions[: len(weights)])
        cuts = find_cover_cuts(a_ub, b_ub, is_binary, x_star)
        for bits in itertools.product([0, 1], repeat=len(weights)):
            point = np.array(bits, dtype=float)
            if float(a_ub[0] @ point) <= capacity + 1e-9:
                for cut in cuts:
                    assert cut.violation(point) <= 1e-9


class TestRowRestriction:
    def test_cuts_only_from_requested_rows(self):
        # Two separable rows; restricting to row 0 must never emit a
        # cut derived from row 1.
        a_ub = np.array([[4.0, 4.0, 4.0], [5.0, 5.0, 5.0]])
        b_ub = np.array([10.0, 12.0])
        is_binary = np.ones(3, dtype=bool)
        x_star = np.array([0.9, 0.9, 0.9])
        unrestricted = find_cover_cuts(a_ub, b_ub, is_binary, x_star)
        assert {c.row_index for c in unrestricted} == {0, 1}
        restricted = find_cover_cuts(
            a_ub, b_ub, is_binary, x_star, rows=[0]
        )
        assert restricted
        assert all(c.row_index == 0 for c in restricted)

    def test_template_pool_never_separates_window_rows(self):
        # The persistent pool separates on ModelTemplate's
        # window-independent resource rows only: the latency window rows
        # (whose RHS changes every bisection iteration) must never be a
        # cut's origin, or a pooled cut could wrongly exclude designs of
        # later windows.
        from repro.arch import ReconfigurableProcessor
        from repro.core.formulation import FormulationOptions, ModelTemplate
        from repro.taskgraph.library import ar_filter

        processor = ReconfigurableProcessor(400.0, 128.0, 20.0)
        template = ModelTemplate(
            ar_filter(), processor, 3, FormulationOptions()
        )
        tp = template.instantiate(d_min=460.0, d_max=640.0)
        names = tp.compiled.ub_names
        for i in template.resource_row_indices:
            assert names[i] is not None
            assert names[i].startswith("resource")
            assert names[i] not in ("latency_ub", "latency_lb")
        x_star = np.full(tp.compiled.num_vars, 0.9)
        is_binary = (
            tp.compiled.is_integral
            & (tp.compiled.lb >= 0.0)
            & (tp.compiled.ub <= 1.0)
        )
        cuts = find_cover_cuts(
            np.asarray(tp.compiled.a_ub), np.asarray(tp.compiled.b_ub),
            is_binary, x_star, rows=template.resource_row_indices,
        )
        for cut in cuts:
            assert names[cut.row_index].startswith("resource")
