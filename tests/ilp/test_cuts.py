"""Tests for knapsack cover cuts."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import Model
from repro.ilp.cuts import CoverCut, apply_cuts, find_cover_cuts


def knapsack_arrays(weights, capacity):
    a_ub = np.array([weights], dtype=float)
    b_ub = np.array([float(capacity)])
    is_binary = np.ones(len(weights), dtype=bool)
    return a_ub, b_ub, is_binary


class TestSeparation:
    def test_violated_cover_found(self):
        # x* = (0.9, 0.9, 0.9), weights (4, 4, 4), capacity 10:
        # any two fit, three do not -> cover {0,1,2}: sum x <= 2,
        # violated by 0.7.
        a_ub, b_ub, is_binary = knapsack_arrays([4, 4, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        )
        assert len(cuts) == 1
        assert cuts[0].cover == (0, 1, 2)
        assert cuts[0].violation(np.array([0.9, 0.9, 0.9])) == (
            pytest.approx(0.7)
        )

    def test_integer_point_never_separated(self):
        a_ub, b_ub, is_binary = knapsack_arrays([4, 4, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([1.0, 1.0, 0.0])
        )
        assert cuts == []

    def test_rows_with_negative_coefficients_skipped(self):
        a_ub = np.array([[4.0, -4.0, 4.0]])
        b_ub = np.array([10.0])
        is_binary = np.ones(3, dtype=bool)
        assert find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        ) == []

    def test_non_binary_columns_skipped(self):
        a_ub, b_ub, _ = knapsack_arrays([4, 4, 4], 10)
        is_binary = np.array([True, True, False])
        assert find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.9, 0.9, 0.9])
        ) == []

    def test_cover_is_minimal(self):
        # Weights (6, 5, 4), cap 10: {0,1} is already a cover; greedy
        # must not return a superset.
        a_ub, b_ub, is_binary = knapsack_arrays([6, 5, 4], 10)
        cuts = find_cover_cuts(
            a_ub, b_ub, is_binary, np.array([0.95, 0.95, 0.95])
        )
        assert cuts
        cover = cuts[0].cover
        weights = [6, 5, 4]
        total = sum(weights[j] for j in cover)
        assert total > 10
        for j in cover:
            assert total - weights[j] <= 10


class TestValidity:
    @given(
        st.lists(st.integers(1, 9), min_size=3, max_size=6),
        st.integers(5, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_cuts_never_remove_integer_points(self, weights, capacity):
        a_ub, b_ub, is_binary = knapsack_arrays(weights, capacity)
        x_star = np.full(len(weights), 0.9)
        cuts = find_cover_cuts(a_ub, b_ub, is_binary, x_star)
        for bits in itertools.product([0, 1], repeat=len(weights)):
            point = np.array(bits, dtype=float)
            if float(a_ub[0] @ point) <= capacity + 1e-9:
                for cut in cuts:
                    assert cut.violation(point) <= 1e-9


class TestApplyAndSolve:
    def test_apply_appends_rows(self):
        a_ub, b_ub, _ = knapsack_arrays([4, 4, 4], 10)
        cut = CoverCut(row_index=0, cover=(0, 1, 2))
        a2, b2 = apply_cuts(a_ub, b_ub, [cut], 3)
        assert a2.shape == (2, 3)
        assert b2[-1] == 2.0
        assert a2[-1].tolist() == [1.0, 1.0, 1.0]

    def test_bnb_with_root_cuts_same_optimum(self):
        m = Model("ks")
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        weights = [4, 4, 4, 5, 5, 5]
        values = [7, 7, 7, 8, 8, 8]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 13)
        m.set_objective(-sum(v * x for v, x in zip(values, xs)))
        plain = m.solve(backend="bnb")
        cut = m.solve(backend="bnb", root_cuts=3)
        assert cut.objective == pytest.approx(plain.objective)
        assert m.check_point(cut.values) == []

    def test_root_cuts_do_not_hurt_node_count(self):
        m = Model("ks2")
        xs = [m.add_binary(f"x{i}") for i in range(10)]
        weights = [3 + (i % 4) for i in range(10)]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 17)
        m.set_objective(-sum((i + 2) * x for i, x in enumerate(xs)))
        plain = m.solve(backend="bnb")
        cut = m.solve(backend="bnb", root_cuts=5)
        assert cut.objective == pytest.approx(plain.objective)
