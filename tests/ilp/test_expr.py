"""Unit tests for the linear-expression algebra."""

import math

import pytest

from repro.ilp import ExpressionError, LinExpr, Sense, VarType, lin_sum
from repro.ilp.expr import Constraint, Variable


def var(name="x", **kwargs):
    return Variable(name, **kwargs)


class TestVariable:
    def test_defaults(self):
        x = var()
        assert x.lb == 0.0
        assert x.ub == math.inf
        assert x.vtype is VarType.CONTINUOUS

    def test_binary_clamps_bounds(self):
        b = var("b", lb=-5, ub=9, vtype=VarType.BINARY)
        assert (b.lb, b.ub) == (0.0, 1.0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ExpressionError):
            var(lb=3, ub=2)

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            Variable("")

    def test_unique_indices(self):
        a, b = var("a"), var("b")
        assert a.index != b.index

    def test_hashable_by_identity(self):
        a = var("a")
        b = var("a")
        assert len({a, b}) == 2


class TestAlgebra:
    def test_addition(self):
        x, y = var("x"), var("y")
        expr = x + 2 * y + 3
        assert expr.coefficient(x) == 1
        assert expr.coefficient(y) == 2
        assert expr.constant == 3

    def test_subtraction_and_negation(self):
        x, y = var("x"), var("y")
        expr = -(x - y) - 1
        assert expr.coefficient(x) == -1
        assert expr.coefficient(y) == 1
        assert expr.constant == -1

    def test_rsub(self):
        x = var("x")
        expr = 5 - x
        assert expr.coefficient(x) == -1
        assert expr.constant == 5

    def test_scalar_multiplication_both_sides(self):
        x = var("x")
        assert (3 * x).coefficient(x) == 3
        assert (x * 3).coefficient(x) == 3

    def test_division(self):
        x = var("x")
        assert (x / 4).coefficient(x) == 0.25

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            _ = var("x").to_expr() / 0

    def test_product_of_variables_rejected(self):
        x, y = var("x"), var("y")
        with pytest.raises(ExpressionError):
            _ = x.to_expr() * y.to_expr()

    def test_product_with_constant_expr_allowed(self):
        x = var("x")
        two = LinExpr(constant=2.0)
        assert (x.to_expr() * two).coefficient(x) == 2

    def test_terms_cancel_to_zero_are_dropped(self):
        x = var("x")
        expr = x - x
        assert expr.is_constant

    def test_evaluate(self):
        x, y = var("x"), var("y")
        expr = 2 * x - y + 1
        assert expr.evaluate({"x": 3.0, "y": 4.0}) == 3.0

    def test_lin_sum_matches_naive_sum(self):
        xs = [var(f"x{i}") for i in range(10)]
        fast = lin_sum(2 * x for x in xs)
        slow = sum((2 * x for x in xs), LinExpr())
        assert {v.name: c for v, c in fast.terms.items()} == {
            v.name: c for v, c in slow.terms.items()
        }

    def test_lin_sum_with_constants(self):
        x = var("x")
        expr = lin_sum([x, 5, 2 * x, -1])
        assert expr.coefficient(x) == 3
        assert expr.constant == 4

    def test_simplified_drops_small_terms(self):
        x, y = var("x"), var("y")
        expr = 1e-12 * x + y
        cleaned = expr.simplified(tol=1e-9)
        assert x not in cleaned.terms
        assert cleaned.coefficient(y) == 1


class TestConstraints:
    def test_le_moves_constant_to_rhs(self):
        x = var("x")
        constraint = x + 3 <= 10
        assert constraint.sense is Sense.LE
        assert constraint.rhs == 7
        assert constraint.expr.constant == 0

    def test_ge(self):
        x = var("x")
        constraint = x >= 4
        assert constraint.sense is Sense.GE
        assert constraint.rhs == 4

    def test_eq_between_expressions(self):
        x, y = var("x"), var("y")
        constraint = x + 1 == y
        assert constraint.sense is Sense.EQ
        assert constraint.expr.coefficient(y) == -1

    def test_violation_le(self):
        x = var("x")
        constraint = x <= 5
        assert constraint.violation({"x": 7.0}) == pytest.approx(2.0)
        assert constraint.violation({"x": 4.0}) == 0.0

    def test_violation_ge(self):
        x = var("x")
        constraint = x >= 5
        assert constraint.violation({"x": 3.0}) == pytest.approx(2.0)

    def test_violation_eq(self):
        x = var("x")
        constraint = x.to_expr() == 5
        assert constraint.violation({"x": 3.0}) == pytest.approx(2.0)
        assert constraint.violation({"x": 7.0}) == pytest.approx(2.0)

    def test_is_satisfied_with_tolerance(self):
        x = var("x")
        constraint = x <= 5
        assert constraint.is_satisfied({"x": 5.0 + 1e-9})
        assert not constraint.is_satisfied({"x": 5.1})

    def test_named(self):
        x = var("x")
        constraint = (x <= 1).named("cap")
        assert constraint.name == "cap"

    def test_variable_comparison_builds_constraint(self):
        x, y = var("x"), var("y")
        constraint = x <= y
        assert isinstance(constraint, Constraint)
        assert constraint.rhs == 0
