"""Unit tests for the from-scratch branch & bound."""

import numpy as np
import pytest

from repro.ilp import Model, SolveStatus, VarType


def knapsack_model(weights, values, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(weights))]
    m.add_constr(
        sum(w * x for w, x in zip(weights, xs)) <= capacity
    )
    m.set_objective(-sum(v * x for v, x in zip(values, xs)))
    return m


class TestCorrectness:
    @pytest.mark.parametrize("lp_engine", ["scipy", "own"])
    def test_knapsack_optimum(self, lp_engine):
        m = knapsack_model([2, 3, 4, 5, 6], [3, 4, 5, 8, 9], 10)
        solution = m.solve(backend="bnb", lp_engine=lp_engine)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-15.0)
        assert m.check_point(solution.values) == []

    def test_integer_variables(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(3 * x + 5 * y <= 17)
        m.set_objective(-(2 * x + 3 * y))
        solution = m.solve(backend="bnb")
        # Best: x=4, y=1 -> 11.
        assert solution.objective == pytest.approx(-11.0)

    def test_mixed_integer(self):
        m = Model()
        x = m.add_var("x", ub=10)          # continuous
        y = m.add_integer("y", ub=10)
        m.add_constr(x + y <= 7.5)
        m.set_objective(-(x + 2 * y))
        solution = m.solve(backend="bnb")
        # y=7, x=0.5 -> 14.5.
        assert solution.objective == pytest.approx(-14.5)

    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(3 * x >= 2)
        m.add_constr(x <= 0)
        solution = m.solve(backend="bnb")
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_integer("x")
        m.set_objective(-x)
        solution = m.solve(backend="bnb")
        assert solution.status is SolveStatus.UNBOUNDED

    def test_pure_lp_passthrough(self):
        m = Model()
        x = m.add_var("x", ub=3.5)
        m.set_objective(-x)
        solution = m.solve(backend="bnb")
        assert solution.objective == pytest.approx(-3.5)

    def test_equality_constrained_milp(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(x + y == 7)
        m.set_objective(x - y)
        solution = m.solve(backend="bnb")
        assert solution.objective == pytest.approx(-7.0)  # x=0, y=7


class TestModes:
    def test_first_feasible_stops_early(self):
        m = knapsack_model([2, 3, 4, 5, 6], [3, 4, 5, 8, 9], 10)
        solution = m.solve(backend="bnb", first_feasible=True)
        assert solution.status in (SolveStatus.FEASIBLE, SolveStatus.OPTIMAL)
        # Whatever it returned must satisfy the model.
        assert m.check_point(solution.values) == []

    def test_node_limit_respected(self):
        m = knapsack_model(
            list(range(3, 23)), list(range(5, 25)), 60
        )
        solution = m.solve(backend="bnb", node_limit=3)
        assert solution.iterations <= 4

    def test_bound_reported(self):
        m = knapsack_model([2, 3, 4], [3, 4, 5], 6)
        solution = m.solve(backend="bnb")
        assert solution.bound is not None
        # For minimization the proven bound never exceeds the objective.
        assert solution.bound <= solution.objective + 1e-6


class TestAgainstHighs:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_milps_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m_rows = int(rng.integers(1, 5))
        model = Model(f"rand{seed}")
        xs = [
            model.add_var(
                f"x{i}",
                ub=float(rng.integers(1, 8)),
                vtype=VarType.INTEGER if rng.random() < 0.7 else (
                    VarType.CONTINUOUS
                ),
            )
            for i in range(n)
        ]
        for r in range(m_rows):
            coefs = rng.integers(-4, 5, size=n)
            rhs = float(rng.integers(0, 20))
            model.add_constr(
                sum(int(c) * x for c, x in zip(coefs, xs)) <= rhs
            )
        obj_coefs = rng.integers(-5, 5, size=n)
        model.set_objective(sum(int(c) * x for c, x in zip(obj_coefs, xs)))

        ours = model.solve(backend="bnb")
        ref = model.solve(backend="highs")
        assert ours.status.has_solution == ref.status.has_solution
        if ref.status.has_solution:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            assert model.check_point(ours.values) == []
