"""Property-based cross-checks between the ILP backends.

The from-scratch stack (simplex + branch & bound) and scipy's HiGHS are
independent implementations; on random models they must agree on
feasibility and optimal objective value.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import Model, VarType


@st.composite
def random_milp(draw):
    """A small random MILP with bounded variables (always bounded)."""
    n = draw(st.integers(1, 4))
    m_rows = draw(st.integers(0, 4))
    model = Model("prop")
    variables = []
    for i in range(n):
        vtype = draw(
            st.sampled_from(
                [VarType.BINARY, VarType.INTEGER, VarType.CONTINUOUS]
            )
        )
        ub = 1 if vtype is VarType.BINARY else draw(st.integers(1, 6))
        variables.append(
            model.add_var(f"x{i}", ub=ub, vtype=vtype)
        )
    coef = st.integers(-4, 4)
    for r in range(m_rows):
        coefs = [draw(coef) for _ in range(n)]
        rhs = draw(st.integers(-5, 15))
        sense = draw(st.sampled_from(["le", "ge"]))
        expr = sum(c * v for c, v in zip(coefs, variables))
        if isinstance(expr, int):      # all-zero row
            continue
        model.add_constr(expr <= rhs if sense == "le" else expr >= rhs)
    obj = [draw(coef) for _ in range(n)]
    expr = sum(c * v for c, v in zip(obj, variables))
    if not isinstance(expr, int):
        model.set_objective(expr)
    return model


class TestBackendAgreement:
    @given(random_milp())
    @settings(max_examples=40, deadline=None)
    def test_bnb_agrees_with_highs(self, model):
        ours = model.solve(backend="bnb")
        ref = model.solve(backend="highs")
        assert ours.status.has_solution == ref.status.has_solution
        if ref.status.has_solution:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            # And the point itself must satisfy the model.
            assert model.check_point(ours.values) == []

    @given(random_milp())
    @settings(max_examples=25, deadline=None)
    def test_bnb_own_simplex_engine_agrees(self, model):
        ours = model.solve(backend="bnb", lp_engine="own")
        ref = model.solve(backend="highs")
        assert ours.status.has_solution == ref.status.has_solution
        if ref.status.has_solution:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-5)

    @given(random_milp())
    @settings(max_examples=25, deadline=None)
    def test_first_feasible_points_are_feasible(self, model):
        solution = model.solve(backend="bnb", first_feasible=True)
        if solution.status.has_solution:
            assert model.check_point(solution.values) == []

    @given(random_milp())
    @settings(max_examples=25, deadline=None)
    def test_presolve_preserves_value(self, model):
        from repro.ilp import presolve

        reference = model.solve(backend="highs")
        result = presolve(model)
        if result.proven_infeasible:
            assert not reference.status.has_solution
            return
        reduced = result.model.solve(backend="highs")
        assert reduced.status.has_solution == reference.status.has_solution
        if reference.status.has_solution:
            assert reduced.objective == pytest.approx(
                reference.objective, abs=1e-6
            )
