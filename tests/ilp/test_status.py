"""Unit tests for solve statuses and the Solution value object."""

import math

import pytest

from repro.ilp import Solution, SolveStatus


class TestSolveStatus:
    @pytest.mark.parametrize(
        "status,expected",
        [
            (SolveStatus.OPTIMAL, True),
            (SolveStatus.FEASIBLE, True),
            (SolveStatus.INFEASIBLE, False),
            (SolveStatus.UNBOUNDED, False),
            (SolveStatus.NODE_LIMIT, False),
            (SolveStatus.TIME_LIMIT, False),
            (SolveStatus.ERROR, False),
        ],
    )
    def test_has_solution(self, status, expected):
        assert status.has_solution is expected


class TestSolution:
    def test_truthiness_tracks_status(self):
        good = Solution(SolveStatus.FEASIBLE, 1.0, {"x": 1.0})
        bad = Solution(SolveStatus.INFEASIBLE)
        assert bool(good)
        assert not bool(bad)

    def test_value_accessor(self):
        solution = Solution(SolveStatus.OPTIMAL, 2.0, {"x": 2.0})
        assert solution.value("x") == 2.0
        with pytest.raises(KeyError):
            solution.value("y")

    def test_defaults(self):
        solution = Solution(SolveStatus.INFEASIBLE)
        assert math.isnan(solution.objective)
        assert solution.values == {}
        assert solution.bound is None

    def test_frozen(self):
        solution = Solution(SolveStatus.OPTIMAL)
        with pytest.raises(AttributeError):
            solution.objective = 5.0
