"""Unit tests for the CPLEX LP-format writer."""

import math

from repro.ilp import Model, ObjectiveSense, lp_string


def demo_model():
    m = Model("demo")
    x = m.add_var("x", lb=-1, ub=4)
    y = m.add_binary("y")
    k = m.add_integer("k", ub=7)
    m.add_constr(x + 2 * y - k <= 3, name="row one")
    m.add_constr(x - y >= -2, name="r2")
    m.add_constr(k.to_expr() == 5, name="fix")
    m.set_objective(x + y + k)
    return m


class TestStructure:
    def test_sections_present(self):
        text = lp_string(demo_model())
        for section in ("Minimize", "Subject To", "Bounds", "General",
                        "Binary", "End"):
            assert section in text

    def test_maximize_header(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.set_objective(x, sense=ObjectiveSense.MAXIMIZE)
        assert "Maximize" in lp_string(m)

    def test_constraint_senses(self):
        text = lp_string(demo_model())
        assert "<= 3" in text
        assert ">= -2" in text
        assert "= 5" in text

    def test_names_sanitized(self):
        m = Model()
        x = m.add_var("Y[a,1,2]", ub=1)
        m.add_constr(x <= 1, name="weird name!")
        text = lp_string(m)
        assert "Y_a_1_2_" in text
        assert "," not in text.split("Subject To")[1].split("Bounds")[0]

    def test_binary_vars_not_in_bounds_section(self):
        text = lp_string(demo_model())
        bounds_section = text.split("Bounds")[1].split("General")[0]
        assert "y" not in bounds_section

    def test_infinite_bounds_rendered(self):
        m = Model()
        m.add_var("free", lb=-math.inf)
        text = lp_string(m)
        assert "-inf <= free <= +inf" in text

    def test_unit_coefficients_have_no_number(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x - y <= 0, name="c")
        text = lp_string(m)
        assert "x - y <= 0" in text

    def test_empty_objective_renders_zero(self):
        m = Model()
        m.add_var("x", ub=1)
        assert " obj: 0" in lp_string(m)


class TestWriteToStream:
    def test_write_lp_file(self, tmp_path):
        from repro.ilp import write_lp

        path = tmp_path / "model.lp"
        with open(path, "w") as handle:
            write_lp(demo_model(), handle)
        content = path.read_text()
        assert content.startswith("\\ Model: demo")
        assert content.rstrip().endswith("End")
