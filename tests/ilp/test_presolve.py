"""Unit tests for the conservative presolver."""

import pytest

from repro.ilp import Model, presolve


class TestSingletonRows:
    def test_le_singleton_tightens_upper_bound(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.add_constr(2 * x <= 6)
        result = presolve(m)
        assert not result.proven_infeasible
        assert result.rows_removed == 1
        assert result.model.variable("x").ub == pytest.approx(3.0)

    def test_ge_singleton_tightens_lower_bound(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.add_constr(x >= 4)
        result = presolve(m)
        assert result.model.variable("x").lb == pytest.approx(4.0)

    def test_negative_coefficient_flips_direction(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.add_constr(-x <= -4)      # i.e. x >= 4
        result = presolve(m)
        assert result.model.variable("x").lb == pytest.approx(4.0)

    def test_eq_singleton_fixes_variable(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.add_constr(x.to_expr() == 5)
        result = presolve(m)
        assert result.fixed_variables == {"x": pytest.approx(5.0)}


class TestRedundancyAndInfeasibility:
    def test_redundant_row_removed(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x + y <= 5)    # can never bind
        result = presolve(m)
        assert result.rows_removed == 1
        assert result.model.num_constraints == 0

    def test_binding_row_kept(self):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constr(x + y <= 5)
        result = presolve(m)
        assert result.model.num_constraints == 1

    def test_infeasible_le_detected(self):
        m = Model()
        x = m.add_var("x", lb=2, ub=4)
        y = m.add_var("y", lb=2, ub=4)
        m.add_constr(x + y <= 3)
        result = presolve(m)
        assert result.proven_infeasible
        assert result.model is None

    def test_infeasible_bounds_from_singletons(self):
        m = Model()
        x = m.add_var("x", ub=10)
        m.add_constr(x <= 2)
        m.add_constr(x >= 5)
        result = presolve(m)
        assert result.proven_infeasible

    def test_infeasible_eq_detected(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x + y == 5)
        result = presolve(m)
        assert result.proven_infeasible


class TestEquivalence:
    def test_reduced_model_has_same_optimum(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constr(x <= 4)               # singleton
        m.add_constr(x + y <= 100)         # redundant
        m.add_constr(x + 2 * y <= 12)
        m.set_objective(-(x + y))
        result = presolve(m)
        original = m.solve(backend="highs")
        reduced = result.model.solve(backend="highs")
        assert reduced.objective == pytest.approx(original.objective)

    def test_objective_preserved(self):
        m = Model()
        x = m.add_var("x", ub=2)
        m.set_objective(3 * x + 1)
        result = presolve(m)
        solution = result.model.solve(backend="highs")
        assert solution.objective == pytest.approx(1.0)  # x = 0
