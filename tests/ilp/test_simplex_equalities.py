"""Property tests: the from-scratch simplex on LPs with equality rows.

The main property suite (`test_simplex.py`) fuzzes inequality-only LPs;
equality rows exercise phase I artificial handling and the
drive-artificials-out step, so they get their own generator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import SolveStatus
from repro.ilp.simplex import solve_lp


@st.composite
def lp_with_equalities(draw):
    n = draw(st.integers(2, 5))
    m_eq = draw(st.integers(1, 2))
    m_ub = draw(st.integers(0, 3))
    # Quantize draws: float32 can produce near-degenerate coefficients
    # (~1e-8) whose constraint violations fall inside HiGHS' feasibility
    # tolerance but outside our exact simplex's, making the objective
    # comparison a tolerance artifact rather than a correctness check.
    # Rounding keeps every coefficient either exactly 0 or >= 1e-3.
    finite = st.floats(-5, 5, allow_nan=False, width=32).map(
        lambda v: round(float(v), 3)
    )
    c = np.array(draw(st.lists(finite, min_size=n, max_size=n)))
    a_eq = np.array(
        draw(
            st.lists(
                st.lists(finite, min_size=n, max_size=n),
                min_size=m_eq, max_size=m_eq,
            )
        )
    ).reshape(m_eq, n)
    # Make the equalities consistent by construction: pick a point in
    # the box and use its image as the right-hand side.
    point = np.array(
        draw(
            st.lists(
                st.floats(0, 3, allow_nan=False, width=32),
                min_size=n, max_size=n,
            )
        )
    )
    b_eq = a_eq @ point
    a_ub = np.array(
        draw(
            st.lists(
                st.lists(finite, min_size=n, max_size=n),
                min_size=m_ub, max_size=m_ub,
            )
        )
    ).reshape(m_ub, n)
    # Slacken the inequalities at the same point so it stays feasible.
    slack = np.array(
        draw(
            st.lists(
                st.floats(0, 5, allow_nan=False, width=32),
                min_size=m_ub, max_size=m_ub,
            )
        )
    )
    b_ub = a_ub @ point + slack
    lb = np.zeros(n)
    ub = np.full(n, 10.0)
    return c, a_ub, b_ub, a_eq, b_eq, lb, ub


class TestEqualityLps:
    @given(lp_with_equalities())
    @settings(max_examples=50, deadline=None)
    def test_matches_scipy(self, lp):
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = lp
        ours = solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)

        from scipy import optimize
        ref = optimize.linprog(
            c,
            A_ub=a_ub if len(b_ub) else None,
            b_ub=b_ub if len(b_ub) else None,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )
        if ref.status == 0:
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(
                ref.fun, abs=1e-4, rel=1e-4
            )
            # And our point satisfies the rows we were given.
            x = ours.x
            assert np.all(a_eq @ x <= b_eq + 1e-5)
            assert np.all(a_eq @ x >= b_eq - 1e-5)
            if len(b_ub):
                assert np.all(a_ub @ x <= b_ub + 1e-5)
        elif ref.status == 2:
            assert ours.status is SolveStatus.INFEASIBLE
