"""Unit tests for the primal rounding/diving heuristics."""

import numpy as np
import pytest

from repro.ilp import Model
from repro.ilp.rounding import (
    dive,
    fractionality,
    is_integral,
    most_fractional_index,
    round_nearest,
)
from repro.ilp.scipy_backend import solve_relaxation
from repro.ilp.status import SolveStatus


def form_of(model):
    return model.to_standard_form()


class TestIsIntegral:
    def test_all_integral(self):
        x = np.array([1.0, 2.0, 0.5])
        mask = np.array([True, True, False])
        assert is_integral(x, mask)

    def test_fractional_detected(self):
        x = np.array([1.2, 2.0])
        mask = np.array([True, True])
        assert not is_integral(x, mask)

    def test_empty_mask(self):
        assert is_integral(np.array([0.7]), np.array([False]))


class TestFractionality:
    def test_values(self):
        x = np.array([1.25, 2.0, 3.5])
        mask = np.array([True, True, True])
        assert fractionality(x, mask) == pytest.approx([0.25, 0.0, 0.5])

    def test_most_fractional_picks_half(self):
        x = np.array([1.1, 2.5, 0.9])
        mask = np.array([True, True, True])
        assert most_fractional_index(x, mask) == 1

    def test_no_fractional_returns_none(self):
        x = np.array([1.0, 2.0])
        mask = np.array([True, True])
        assert most_fractional_index(x, mask) is None

    def test_tie_break_by_weights(self):
        x = np.array([0.5, 1.5])
        mask = np.array([True, True])
        weights = np.array([1.0, 100.0])
        assert most_fractional_index(x, mask, weights) == 1


class TestRoundNearest:
    def test_feasible_rounding_accepted(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y <= 2)
        form = form_of(m)
        rounded = round_nearest(form, np.array([0.6, 0.4]))
        assert rounded is not None
        assert rounded.tolist() == [1.0, 0.0]

    def test_infeasible_rounding_rejected(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y <= 1)
        form = form_of(m)
        assert round_nearest(form, np.array([0.6, 0.6])) is None


class TestDive:
    def test_dive_finds_feasible_point(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        m.add_constr(sum(xs) <= 2)
        m.set_objective(-sum((i + 1) * x for i, x in enumerate(xs)))
        form = form_of(m)

        def solve_node(lb, ub):
            status, x, objective, _ = solve_relaxation(
                form, extra_lb=lb, extra_ub=ub
            )
            return status, x, objective

        status, x0, _obj, _ = solve_relaxation(form)
        assert status is SolveStatus.OPTIMAL
        result = dive(form, x0, form.lb, form.ub, solve_node)
        assert result is not None
        x, objective = result
        assert is_integral(x, form.is_integral)
        assert float(x.sum()) <= 2 + 1e-9
