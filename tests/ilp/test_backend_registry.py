"""Tests for the solver backend registry."""


from repro.ilp import Model, Solution, SolveStatus, register_backend


class TestRegistry:
    def test_custom_backend_dispatch(self):
        calls = {}

        def stub(model, **options):
            calls["options"] = options
            return Solution(
                SolveStatus.FEASIBLE,
                objective=42.0,
                values={v.name: 0.0 for v in model.variables},
            )

        register_backend("stub-test", stub)
        m = Model()
        m.add_var("x", ub=1)
        solution = m.solve(
            backend="stub-test", first_feasible=True, time_limit=5.0
        )
        assert solution.objective == 42.0
        assert calls["options"]["first_feasible"] is True
        assert calls["options"]["time_limit"] == 5.0

    def test_custom_backend_maximize_negation(self):
        def stub(model, **options):
            return Solution(SolveStatus.OPTIMAL, objective=-10.0)

        register_backend("stub-max", stub)
        m = Model()
        x = m.add_var("x", ub=1)
        from repro.ilp import ObjectiveSense

        m.set_objective(x, sense=ObjectiveSense.MAXIMIZE)
        solution = m.solve(backend="stub-max")
        # Backends report in minimization direction; solve() flips back.
        assert solution.objective == 10.0

    def test_wall_time_measured_by_dispatcher(self):
        def stub(model, **options):
            return Solution(SolveStatus.OPTIMAL, objective=0.0)

        register_backend("stub-time", stub)
        m = Model()
        m.add_var("x", ub=1)
        solution = m.solve(backend="stub-time")
        assert solution.wall_time >= 0.0
