"""Tests for branch & bound warm starting."""

import pytest

from repro.ilp import Model, SolveStatus


def knapsack():
    m = Model("ks")
    xs = [m.add_binary(f"x{i}") for i in range(5)]
    weights, values = [2, 3, 4, 5, 6], [3, 4, 5, 8, 9]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 10)
    m.set_objective(-sum(v * x for v, x in zip(values, xs)))
    return m


class TestWarmStart:
    def test_feasible_warm_start_accepted(self):
        m = knapsack()
        warm = {"x0": 1, "x1": 1, "x2": 0, "x3": 1, "x4": 0}   # value 15
        solution = m.solve(backend="bnb", warm_start=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-15.0)

    def test_warm_start_with_first_feasible_returns_at_least_as_good(self):
        m = knapsack()
        warm = {"x0": 1, "x1": 1}   # value 7, feasible
        solution = m.solve(
            backend="bnb", warm_start=warm, first_feasible=True
        )
        assert solution.status.has_solution
        assert solution.objective <= -7.0 + 1e-9

    def test_infeasible_warm_start_ignored(self):
        m = knapsack()
        warm = {f"x{i}": 1 for i in range(5)}   # weight 20 > 10
        solution = m.solve(backend="bnb", warm_start=warm)
        assert solution.objective == pytest.approx(-15.0)

    def test_partial_warm_start_defaults_missing_to_lb(self):
        m = knapsack()
        solution = m.solve(backend="bnb", warm_start={"x3": 1})
        assert solution.objective == pytest.approx(-15.0)

    def test_unknown_names_ignored(self):
        m = knapsack()
        solution = m.solve(backend="bnb", warm_start={"ghost": 1})
        assert solution.objective == pytest.approx(-15.0)

    def test_warm_start_prunes_nodes(self):
        m = knapsack()
        cold = m.solve(backend="bnb")
        optimal_warm = {"x0": 1, "x1": 1, "x3": 1}
        warm = m.solve(backend="bnb", warm_start=optimal_warm)
        assert warm.iterations <= cold.iterations


class TestStrictValidation:
    """``_validate_warm_start`` rejects rather than repairs bad points.

    A warm point that needs clipping or rounding to become feasible is
    not a certificate: installing it as an incumbent could wrongly prune
    subtrees containing the true optimum.
    """

    def _form(self):
        return knapsack().compile()

    def _validate(self, point):
        import numpy as np

        from repro.ilp.branch_and_bound import _validate_warm_start

        return _validate_warm_start(
            self._form(), np.asarray(point, dtype=float), 1e-6
        )

    def test_out_of_bounds_point_rejected_not_clipped(self):
        # x0 = 2 exceeds the binary upper bound; clipping to 1 would
        # yield a feasible point, but the validator must refuse.
        assert self._validate([2, 0, 0, 0, 0]) is None

    def test_negative_point_rejected(self):
        assert self._validate([-1, 0, 0, 1, 0]) is None

    def test_fractional_point_rejected(self):
        # Well inside bounds and resource-feasible, but not integral.
        assert self._validate([0.5, 0.5, 0, 0, 0]) is None

    def test_constraint_violating_point_rejected(self):
        # Integral and within bounds, but weight 20 > capacity 10.
        assert self._validate([1, 1, 1, 1, 1]) is None

    def test_small_integer_drift_snapped(self):
        import numpy as np

        snapped = self._validate([1.0 + 1e-8, 1.0 - 1e-8, 0, 1e-9, 0])
        assert snapped is not None
        assert np.array_equal(snapped, [1, 1, 0, 0, 0])

    def test_wrong_shape_rejected(self):
        assert self._validate([1, 0, 0]) is None
