"""Tests for branch & bound warm starting."""

import pytest

from repro.ilp import Model, SolveStatus


def knapsack():
    m = Model("ks")
    xs = [m.add_binary(f"x{i}") for i in range(5)]
    weights, values = [2, 3, 4, 5, 6], [3, 4, 5, 8, 9]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 10)
    m.set_objective(-sum(v * x for v, x in zip(values, xs)))
    return m


class TestWarmStart:
    def test_feasible_warm_start_accepted(self):
        m = knapsack()
        warm = {"x0": 1, "x1": 1, "x2": 0, "x3": 1, "x4": 0}   # value 15
        solution = m.solve(backend="bnb", warm_start=warm)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-15.0)

    def test_warm_start_with_first_feasible_returns_at_least_as_good(self):
        m = knapsack()
        warm = {"x0": 1, "x1": 1}   # value 7, feasible
        solution = m.solve(
            backend="bnb", warm_start=warm, first_feasible=True
        )
        assert solution.status.has_solution
        assert solution.objective <= -7.0 + 1e-9

    def test_infeasible_warm_start_ignored(self):
        m = knapsack()
        warm = {f"x{i}": 1 for i in range(5)}   # weight 20 > 10
        solution = m.solve(backend="bnb", warm_start=warm)
        assert solution.objective == pytest.approx(-15.0)

    def test_partial_warm_start_defaults_missing_to_lb(self):
        m = knapsack()
        solution = m.solve(backend="bnb", warm_start={"x3": 1})
        assert solution.objective == pytest.approx(-15.0)

    def test_unknown_names_ignored(self):
        m = knapsack()
        solution = m.solve(backend="bnb", warm_start={"ghost": 1})
        assert solution.objective == pytest.approx(-15.0)

    def test_warm_start_prunes_nodes(self):
        m = knapsack()
        cold = m.solve(backend="bnb")
        optimal_warm = {"x0": 1, "x1": 1, "x3": 1}
        warm = m.solve(backend="bnb", warm_start=optimal_warm)
        assert warm.iterations <= cold.iterations
