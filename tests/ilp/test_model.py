"""Unit tests for the Model container and its standard-form view."""

import math

import numpy as np
import pytest

from repro.ilp import (
    BackendNotAvailableError,
    Model,
    ModelError,
    ObjectiveSense,
    SolveStatus,
    VarType,
)


def small_model():
    m = Model("small")
    x = m.add_var("x", ub=4)
    y = m.add_binary("y")
    m.add_constr(x + 2 * y <= 5, name="cap")
    m.add_constr(x - y >= 0, name="link")
    m.set_objective(-x - 3 * y)
    return m, x, y


class TestConstruction:
    def test_duplicate_names_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError):
            m.add_var("x")

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError):
            m2.add_constr(x <= 1)

    def test_non_constraint_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_constr(True)  # accidental bool from chained comparison

    def test_bad_objective_sense(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(ModelError):
            m.set_objective(x, sense="sideways")

    def test_counts(self):
        m, _x, _y = small_model()
        assert m.num_vars == 2
        assert m.num_integer_vars == 1
        assert m.num_constraints == 2

    def test_variable_lookup(self):
        m, x, _y = small_model()
        assert m.variable("x") is x
        with pytest.raises(KeyError):
            m.variable("nope")

    def test_add_integer(self):
        m = Model()
        k = m.add_integer("k", lb=2, ub=9)
        assert k.vtype is VarType.INTEGER
        assert (k.lb, k.ub) == (2, 9)


class TestStandardForm:
    def test_shapes_and_masks(self):
        m, _x, _y = small_model()
        form = m.to_standard_form()
        assert form.a_ub.shape == (2, 2)     # GE row is negated into UB
        assert form.a_eq.shape[0] == 0
        assert list(form.is_integral) == [False, True]
        assert form.lb.tolist() == [0.0, 0.0]
        assert form.ub.tolist() == [4.0, 1.0]

    def test_ge_rows_are_negated(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x >= 3)
        form = m.to_standard_form()
        assert form.a_ub[0, 0] == -1.0
        assert form.b_ub[0] == -3.0

    def test_eq_rows_separate(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x.to_expr() == 2)
        form = m.to_standard_form()
        assert form.a_eq.shape == (1, 1)
        assert form.b_eq[0] == 2.0

    def test_maximize_negates_objective(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.set_objective(5 * x, sense=ObjectiveSense.MAXIMIZE)
        form = m.to_standard_form()
        assert form.c[0] == -5.0

    def test_objective_constant_carried(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.set_objective(x + 7)
        form = m.to_standard_form()
        assert form.c0 == 7.0
        assert form.objective_at(np.array([1.0])) == 8.0


class TestSolveDispatch:
    def test_unknown_backend(self):
        m, _x, _y = small_model()
        with pytest.raises(BackendNotAvailableError):
            m.solve(backend="cplex")

    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    def test_milp_backends_agree(self, backend):
        m, _x, _y = small_model()
        solution = m.solve(backend=backend)
        assert solution.status.has_solution
        assert solution.objective == pytest.approx(-6.0)  # x=3, y=1

    def test_maximize_round_trip(self):
        m = Model()
        x = m.add_var("x", ub=3)
        m.set_objective(2 * x, sense=ObjectiveSense.MAXIMIZE)
        solution = m.solve(backend="highs")
        assert solution.objective == pytest.approx(6.0)

    def test_check_point_flags_violations(self):
        m, _x, _y = small_model()
        violated = m.check_point({"x": 10.0, "y": 0.5})
        kinds = {c.name for c in violated}
        assert "cap" in kinds
        assert any(name and name.startswith("bound[") for name in kinds)

    def test_check_point_accepts_solution(self):
        m, _x, _y = small_model()
        solution = m.solve(backend="highs")
        assert m.check_point(solution.values) == []

    def test_solution_value_accessor(self):
        m, _x, _y = small_model()
        solution = m.solve(backend="highs")
        assert solution.value("x") == pytest.approx(3.0)
        assert bool(solution)

    def test_infeasible_solution_is_falsy(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        solution = m.solve(backend="highs")
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution
        assert math.isnan(solution.objective)
