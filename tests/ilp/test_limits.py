"""Budget-exhaustion behaviour of the from-scratch solvers."""

import numpy as np

from repro.ilp import Model, SolveStatus
from repro.ilp.simplex import solve_lp


def big_knapsack(n=18):
    m = Model("bigks")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    weights = [3 + (i * 7) % 11 for i in range(n)]
    values = [5 + (i * 5) % 13 for i in range(n)]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 40)
    m.set_objective(-sum(v * x for v, x in zip(values, xs)))
    return m


class TestBnbLimits:
    def test_node_limit_with_incumbent_reports_feasible(self):
        m = big_knapsack()
        solution = m.solve(backend="bnb", node_limit=30)
        # The diving heuristic finds an incumbent quickly, so a truncated
        # search still returns something usable.
        if solution.status.has_solution:
            assert solution.status is SolveStatus.FEASIBLE
            assert m.check_point(solution.values) == []
        else:
            assert solution.status is SolveStatus.NODE_LIMIT

    def test_time_limit_zero(self):
        m = big_knapsack()
        solution = m.solve(backend="bnb", time_limit=0.0)
        assert solution.status in (
            SolveStatus.TIME_LIMIT,
            SolveStatus.FEASIBLE,
        )

    def test_bound_gap_sane_on_truncated_search(self):
        m = big_knapsack()
        solution = m.solve(backend="bnb", node_limit=50)
        if solution.status.has_solution and solution.bound is not None:
            assert solution.bound <= solution.objective + 1e-6


class TestSimplexLimits:
    def test_iteration_limit_reports_error(self):
        n = 12
        rng = np.random.default_rng(3)
        a_ub = rng.uniform(0, 1, size=(20, n))
        b_ub = rng.uniform(5, 10, size=20)
        c = rng.uniform(-1, 1, size=n)
        result = solve_lp(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0),
            np.zeros(n), np.full(n, 10.0),
            max_iters=1,
        )
        assert result.status in (SolveStatus.ERROR, SolveStatus.OPTIMAL)

    def test_time_limit_respected(self):
        n = 30
        rng = np.random.default_rng(4)
        a_ub = rng.uniform(0, 1, size=(60, n))
        b_ub = rng.uniform(5, 10, size=60)
        c = rng.uniform(-1, 1, size=n)
        result = solve_lp(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0),
            np.zeros(n), np.full(n, 10.0),
            time_limit=0.0,
        )
        assert result.status is SolveStatus.TIME_LIMIT
