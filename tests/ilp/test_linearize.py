"""Unit tests for binary-product linearization helpers."""

import itertools

import pytest

from repro.ilp import Model, product_binary, product_of_sums
from repro.ilp.linearize import big_m_upper, indicator_ge


class TestProductBinary:
    @pytest.mark.parametrize("x_val,y_val", itertools.product([0, 1], [0, 1]))
    def test_exact_for_all_corners(self, x_val, y_val):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        z = product_binary(m, x, y, "z")
        m.add_constr(x.to_expr() == x_val)
        m.add_constr(y.to_expr() == y_val)
        # Both extremes of z must coincide with the product.
        m.set_objective(z)
        low = m.solve(backend="highs")
        m.set_objective(-1 * z)
        high = m.solve(backend="highs")
        assert low.value("z") == pytest.approx(x_val * y_val)
        assert high.value("z") == pytest.approx(x_val * y_val)


class TestProductOfSums:
    def test_two_sided_is_exact(self):
        m = Model()
        a = m.add_binary("a")
        b = m.add_binary("b")
        c = m.add_binary("c")
        z = product_of_sums(m, [a, b], [c], "z")
        m.add_constr(a.to_expr() == 1)
        m.add_constr(b.to_expr() == 0)
        m.add_constr(c.to_expr() == 1)
        m.set_objective(z)      # push z down; exact form must hold it at 1
        solution = m.solve(backend="highs")
        assert solution.value("z") == pytest.approx(1.0)

    def test_one_sided_forces_up_but_not_down(self):
        m = Model()
        a = m.add_binary("a")
        c = m.add_binary("c")
        z = product_of_sums(m, [a], [c], "z", one_sided=True)
        m.add_constr(a.to_expr() == 1)
        m.add_constr(c.to_expr() == 1)
        m.set_objective(z)
        solution = m.solve(backend="highs")
        # Product is 1 -> even minimizing, z must be 1.
        assert solution.value("z") == pytest.approx(1.0)

    def test_one_sided_leaves_zero_when_product_zero(self):
        m = Model()
        a = m.add_binary("a")
        c = m.add_binary("c")
        z = product_of_sums(m, [a], [c], "z", one_sided=True)
        m.add_constr(a.to_expr() == 0)
        m.add_constr(c.to_expr() == 1)
        m.set_objective(z)
        solution = m.solve(backend="highs")
        assert solution.value("z") == pytest.approx(0.0)


class TestBigM:
    def test_indicator_ge_active(self):
        m = Model()
        flag = m.add_binary("flag")
        x = m.add_var("x", ub=10)
        indicator_ge(m, flag, x, threshold=5, big_m=100, name="ind")
        m.add_constr(flag.to_expr() == 1)
        m.set_objective(x)
        solution = m.solve(backend="highs")
        assert solution.value("x") == pytest.approx(5.0)

    def test_indicator_ge_inactive(self):
        m = Model()
        flag = m.add_binary("flag")
        x = m.add_var("x", ub=10)
        indicator_ge(m, flag, x, threshold=5, big_m=100, name="ind")
        m.add_constr(flag.to_expr() == 0)
        m.set_objective(x)
        solution = m.solve(backend="highs")
        assert solution.value("x") == pytest.approx(0.0)

    def test_big_m_upper_active(self):
        m = Model()
        switch = m.add_binary("s")
        x = m.add_var("x", ub=10)
        big_m_upper(m, x, bound_if_active=3, switch=switch, big_m=100,
                    name="cap")
        m.add_constr(switch.to_expr() == 1)
        m.set_objective(-x)
        solution = m.solve(backend="highs")
        assert solution.value("x") == pytest.approx(3.0)

    def test_big_m_upper_inactive(self):
        m = Model()
        switch = m.add_binary("s")
        x = m.add_var("x", ub=10)
        big_m_upper(m, x, bound_if_active=3, switch=switch, big_m=100,
                    name="cap")
        m.add_constr(switch.to_expr() == 0)
        m.set_objective(-x)
        solution = m.solve(backend="highs")
        assert solution.value("x") == pytest.approx(10.0)
