"""Unit tests for the design-point estimator."""

import pytest

from repro.hls import (
    Dfg,
    EstimatorConfig,
    estimate_design_points,
    estimate_task,
    filter_section_dfg,
    vector_product_dfg,
)
from repro.taskgraph import TaskGraph, pareto_filter


class TestEstimateDesignPoints:
    def test_returns_pareto_front(self):
        points = estimate_design_points(vector_product_dfg(4))
        assert list(points) == pareto_filter(points)

    def test_labels_dense_and_area_sorted(self):
        points = estimate_design_points(vector_product_dfg(4))
        assert [p.name for p in points] == [
            f"dp{i + 1}" for i in range(len(points))
        ]
        areas = [p.area for p in points]
        assert areas == sorted(areas)

    def test_max_points_respected(self):
        config = EstimatorConfig(max_points=2)
        points = estimate_design_points(vector_product_dfg(6), config=config)
        assert len(points) <= 2

    def test_monotone_tradeoff(self):
        points = estimate_design_points(vector_product_dfg(4))
        for smaller, larger in zip(points, points[1:]):
            assert larger.area > smaller.area
            assert larger.latency < smaller.latency

    def test_module_sets_populated(self):
        points = estimate_design_points(vector_product_dfg(4))
        assert all(p.module_set.total_units >= 1 for p in points)

    def test_bitwidth_affects_estimates(self):
        narrow = estimate_design_points(
            vector_product_dfg(4, data_width=8, accum_width=10)
        )
        wide = estimate_design_points(
            vector_product_dfg(4, data_width=16, accum_width=20)
        )
        assert wide[0].area > narrow[0].area
        assert wide[0].latency > narrow[0].latency

    def test_empty_dfg_rejected(self):
        with pytest.raises(ValueError):
            estimate_design_points(Dfg())

    def test_deterministic(self):
        a = estimate_design_points(filter_section_dfg(2))
        b = estimate_design_points(filter_section_dfg(2))
        assert [(p.area, p.latency) for p in a] == [
            (p.area, p.latency) for p in b
        ]


class TestEstimateTask:
    def test_adds_task_to_graph(self):
        graph = TaskGraph("g")
        task = estimate_task(graph, "vp", vector_product_dfg(4), kind="T1")
        assert "vp" in graph
        assert task.kind == "T1"
        assert len(task.design_points) >= 1

    def test_estimated_graph_is_partitionable(self):
        from repro.arch import ReconfigurableProcessor
        from repro.core import greedy_partition

        graph = TaskGraph("g")
        estimate_task(graph, "a", vector_product_dfg(3))
        estimate_task(graph, "b", vector_product_dfg(3))
        graph.add_edge("a", "b", 4)
        processor = ReconfigurableProcessor(400, 128, 10)
        result = greedy_partition(graph, processor, "min_area")
        assert result.design.is_valid(processor)
