"""Unit tests for the functional-unit library."""

import pytest

from repro.hls import FuLibrary, FuType, default_library


class TestFuType:
    def test_area_and_delay_scale_with_width(self):
        lib = default_library()
        mul = lib.unit("mul")
        assert mul.area(16) > mul.area(8)
        assert mul.delay(16) > mul.delay(8)

    def test_executes(self):
        lib = default_library()
        assert lib.unit("alu").executes("add")
        assert lib.unit("alu").executes("sub")
        assert not lib.unit("alu").executes("mul")

    def test_non_positive_model_rejected(self):
        bad = FuType(
            name="bad",
            kinds=frozenset({"add"}),
            area_fn=lambda bw: 0.0,
            delay_fn=lambda bw: 1.0,
        )
        with pytest.raises(ValueError):
            bad.area(8)


class TestLibrary:
    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            FuLibrary({})

    def test_units_for_kind(self):
        lib = default_library()
        add_units = {u.name for u in lib.units_for("add")}
        assert add_units == {"add", "alu"}

    def test_unknown_kind(self):
        lib = default_library()
        with pytest.raises(KeyError):
            lib.units_for("fft")

    def test_cheapest_for(self):
        lib = default_library()
        assert lib.cheapest_for("add", 16).name == "add"

    def test_multiplier_quadratic_growth(self):
        lib = default_library()
        mul = lib.unit("mul")
        # Doubling the width should much more than double the area.
        assert mul.area(16) > 3 * mul.area(8)

    def test_iteration(self):
        lib = default_library()
        assert {u.name for u in lib} == {"add", "sub", "alu", "mul"}
