"""Integration tests within the HLS substrate: allocation sharing, scaling."""

import pytest

from repro.hls import (
    Dfg,
    EstimatorConfig,
    default_library,
    enumerate_allocations,
    estimate_design_points,
    list_schedule,
)


def addsub_dfg():
    """A DFG mixing add and sub so ALU sharing becomes attractive."""
    dfg = Dfg("addsub")
    dfg.add_op("a0", "add", 12)
    dfg.add_op("s0", "sub", 12, depends_on=("a0",))
    dfg.add_op("a1", "add", 12, depends_on=("s0",))
    dfg.add_op("s1", "sub", 12, depends_on=("a1",))
    return dfg


class TestAluSharing:
    def test_alu_allocations_exist_and_schedule(self):
        dfg = addsub_dfg()
        lib = default_library()
        shared = [
            a
            for a in enumerate_allocations(dfg, lib)
            if a.unit_for("add")[0] == "alu"
            and a.unit_for("sub")[0] == "alu"
        ]
        assert shared, "ALU-shared allocations must be enumerated"
        schedule = list_schedule(dfg, lib, shared[0])
        assert schedule.is_consistent(dfg)
        # One shared ALU instance serializes everything.
        one_alu = next(
            a for a in shared if a.instances() == {"alu": 1}
        )
        serial = list_schedule(dfg, lib, one_alu)
        delays = 4 * lib.unit("alu").delay(12)
        assert serial.makespan == pytest.approx(delays)

    def test_estimator_offers_shared_and_dedicated_variants(self):
        points = estimate_design_points(
            addsub_dfg(), config=EstimatorConfig(max_points=8)
        )
        units_seen = set()
        for dp in points:
            units_seen |= set(dp.module_set.as_dict())
        # Pareto pruning keeps at least one of the unit-choice families.
        assert units_seen & {"alu", "add", "sub"}


class TestScalingBehaviour:
    @pytest.mark.parametrize("length", [2, 4, 8])
    def test_fastest_point_improves_with_parallelism(self, length):
        from repro.hls import vector_product_dfg

        points = estimate_design_points(
            vector_product_dfg(length),
            config=EstimatorConfig(max_points=8),
        )
        slowest = points[0].latency
        fastest = points[-1].latency
        if length > 2:
            assert fastest < slowest

    def test_latency_grows_with_problem_size(self):
        from repro.hls import vector_product_dfg

        small = estimate_design_points(vector_product_dfg(2))
        large = estimate_design_points(vector_product_dfg(8))
        assert large[0].latency > small[0].latency
        assert large[0].area > small[0].area
