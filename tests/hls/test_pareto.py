"""Unit and property tests for design-space pruning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import prune_design_space, subsample_front
from repro.taskgraph import DesignPoint, pareto_filter


def front_of(pairs):
    return pareto_filter(DesignPoint(a, l) for a, l in pairs)


class TestSubsample:
    def test_small_front_untouched(self):
        front = front_of([(10, 30), (20, 20), (30, 10)])
        assert subsample_front(front, 5) == front

    def test_extremes_always_kept(self):
        front = front_of([(i * 10 + 10, 200 - i * 10) for i in range(12)])
        picked = subsample_front(front, 4)
        assert picked[0] == front[0]
        assert picked[-1] == front[-1]
        assert len(picked) == 4

    def test_single_point_request(self):
        front = front_of([(10, 30), (20, 20), (30, 10)])
        assert subsample_front(front, 1) == [front[0]]

    def test_bad_count(self):
        with pytest.raises(ValueError):
            subsample_front([], 0)

    @given(
        st.lists(
            st.tuples(st.integers(1, 500), st.integers(1, 500)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_result_size_and_order(self, pairs, max_points):
        pruned = prune_design_space(
            (DesignPoint(a, l) for a, l in pairs), max_points
        )
        assert 1 <= len(pruned) <= max_points
        areas = [p.area for p in pruned]
        assert areas == sorted(areas)
        # Still mutually non-dominating.
        for p in pruned:
            for q in pruned:
                if p is not q:
                    assert not p.dominates(q)
