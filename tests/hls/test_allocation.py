"""Unit tests for module-set enumeration."""

import pytest

from repro.hls import default_library, enumerate_allocations, vector_product_dfg
from repro.hls.allocation import Allocation


class TestEnumeration:
    def test_covers_every_kind(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        for allocation in enumerate_allocations(dfg, lib):
            kinds = {kind for kind, _u, _c in allocation.assignments}
            assert kinds == {"mul", "add"}

    def test_counts_bounded_by_ops(self):
        dfg = vector_product_dfg(2)   # 2 muls, 1 add
        lib = default_library()
        for allocation in enumerate_allocations(dfg, lib):
            for kind, _unit, count in allocation.assignments:
                assert 1 <= count <= dfg.kinds()[kind]

    def test_limit_keeps_smallest(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        limited = enumerate_allocations(dfg, lib, limit=3)
        assert len(limited) == 3
        # The single-instance-everywhere allocation must survive.
        totals = [
            sum(c for _k, _u, c in a.assignments) for a in limited
        ]
        assert min(totals) == 2

    def test_alternative_units_enumerated(self):
        dfg = vector_product_dfg(2)
        lib = default_library()
        units_used = {
            unit
            for a in enumerate_allocations(dfg, lib)
            for kind, unit, _c in a.assignments
            if kind == "add"
        }
        assert units_used == {"add", "alu"}

    def test_empty_dfg(self):
        from repro.hls import Dfg

        assert enumerate_allocations(Dfg(), default_library()) == []

    def test_deterministic(self):
        dfg = vector_product_dfg(3)
        lib = default_library()
        a = enumerate_allocations(dfg, lib)
        b = enumerate_allocations(dfg, lib)
        assert a == b


class TestAllocation:
    def test_instances_merge_shared_units(self):
        allocation = Allocation(
            (("add", "alu", 2), ("sub", "alu", 3))
        )
        assert allocation.instances() == {"alu": 3}

    def test_unit_for(self):
        allocation = Allocation((("mul", "mul", 2),))
        assert allocation.unit_for("mul") == ("mul", 2)
        with pytest.raises(KeyError):
            allocation.unit_for("add")
