"""Unit and property tests for the HLS schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import (
    alap_times,
    asap_times,
    default_library,
    enumerate_allocations,
    list_schedule,
    vector_product_dfg,
    fir_dfg,
)
from repro.hls.allocation import Allocation


def delays_for(dfg, library, allocation):
    from repro.hls.scheduling import _delay_of

    return _delay_of(dfg, library, allocation)


def serial_allocation(dfg, library):
    """One instance of the cheapest unit per kind."""
    assignments = []
    for kind in sorted(dfg.kinds()):
        widest = max(
            op.bitwidth for op in dfg if op.kind == kind
        )
        unit = library.cheapest_for(kind, widest)
        assignments.append((kind, unit.name, 1))
    return Allocation(tuple(assignments))


class TestAsapAlap:
    def test_asap_respects_dependencies(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        alloc = serial_allocation(dfg, lib)
        delays = delays_for(dfg, lib, alloc)
        asap = asap_times(dfg, delays)
        for op in dfg:
            for pred in dfg.predecessors(op.name):
                assert asap[op.name] >= asap[pred] + delays[pred] - 1e-9

    def test_alap_never_earlier_than_asap(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        alloc = serial_allocation(dfg, lib)
        delays = delays_for(dfg, lib, alloc)
        asap = asap_times(dfg, delays)
        alap = alap_times(dfg, delays)
        for name in asap:
            assert alap[name] >= asap[name] - 1e-9

    def test_critical_ops_have_zero_slack(self):
        dfg = fir_dfg(3)
        lib = default_library()
        alloc = serial_allocation(dfg, lib)
        delays = delays_for(dfg, lib, alloc)
        asap = asap_times(dfg, delays)
        alap = alap_times(dfg, delays)
        slacks = [alap[n] - asap[n] for n in asap]
        assert min(slacks) == pytest.approx(0.0)


class TestListSchedule:
    def test_schedule_is_consistent(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        schedule = list_schedule(dfg, lib, serial_allocation(dfg, lib))
        assert schedule.is_consistent(dfg)

    def test_no_unit_overlap(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        schedule = list_schedule(dfg, lib, serial_allocation(dfg, lib))
        by_unit: dict = {}
        for name, key in schedule.unit_of.items():
            by_unit.setdefault(key, []).append(
                (schedule.start[name], schedule.finish[name])
            )
        for intervals in by_unit.values():
            intervals.sort()
            for (s1, f1), (s2, _f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9

    def test_more_units_never_slower(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        allocations = enumerate_allocations(dfg, lib)
        one_mul = next(
            a for a in allocations
            if dict(a.instances()).get("mul") == 1 and "add" in a.instances()
        )
        four_mul = next(
            (a for a in allocations
             if dict(a.instances()).get("mul") == 4
             and a.instances().get("add") == a.instances().get("add")),
            None,
        )
        slow = list_schedule(dfg, lib, one_mul).makespan
        if four_mul is not None:
            fast = list_schedule(dfg, lib, four_mul).makespan
            assert fast <= slow + 1e-9

    def test_makespan_at_least_critical_path(self):
        dfg = vector_product_dfg(4)
        lib = default_library()
        alloc = serial_allocation(dfg, lib)
        delays = delays_for(dfg, lib, alloc)
        asap = asap_times(dfg, delays)
        critical = max(asap[op.name] + delays[op.name] for op in dfg)
        schedule = list_schedule(dfg, lib, alloc)
        assert schedule.makespan >= critical - 1e-9

    @given(st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_property_all_allocations_consistent(self, length, max_inst):
        dfg = vector_product_dfg(length)
        lib = default_library()
        for allocation in enumerate_allocations(
            dfg, lib, max_instances_per_kind=max_inst, limit=20
        ):
            schedule = list_schedule(dfg, lib, allocation)
            assert schedule.is_consistent(dfg)
            assert len(schedule.start) == len(dfg)
