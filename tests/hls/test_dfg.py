"""Unit tests for operation data-flow graphs."""

import pytest

from repro.hls import Dfg, filter_section_dfg, fir_dfg, vector_product_dfg


class TestDfg:
    def test_add_and_query(self):
        dfg = Dfg("t")
        dfg.add_op("m", "mul", 8)
        dfg.add_op("a", "add", 12, depends_on=("m",))
        assert len(dfg) == 2
        assert dfg.predecessors("a") == ("m",)
        assert dfg.successors("m") == ("a",)
        assert dfg.operation("m").kind == "mul"

    def test_duplicate_rejected(self):
        dfg = Dfg()
        dfg.add_op("m", "mul", 8)
        with pytest.raises(ValueError):
            dfg.add_op("m", "mul", 8)

    def test_unknown_dependency_rejected(self):
        dfg = Dfg()
        with pytest.raises(ValueError):
            dfg.add_op("a", "add", 8, depends_on=("ghost",))

    def test_bad_bitwidth(self):
        dfg = Dfg()
        with pytest.raises(ValueError):
            dfg.add_op("a", "add", 0)

    def test_kinds_histogram(self):
        dfg = vector_product_dfg(4)
        assert dfg.kinds() == {"mul": 4, "add": 3}

    def test_topological_order(self):
        dfg = vector_product_dfg(4)
        order = dfg.topological_order()
        positions = {name: i for i, name in enumerate(order)}
        for op in dfg:
            for pred in dfg.predecessors(op.name):
                assert positions[pred] < positions[op.name]


class TestBuilders:
    @pytest.mark.parametrize("length,muls,adds", [(1, 1, 0), (2, 2, 1),
                                                  (4, 4, 3), (5, 5, 4)])
    def test_vector_product_counts(self, length, muls, adds):
        dfg = vector_product_dfg(length)
        kinds = dfg.kinds()
        assert kinds.get("mul", 0) == muls
        assert kinds.get("add", 0) == adds

    def test_vector_product_single_sink(self):
        dfg = vector_product_dfg(4)
        sinks = [op.name for op in dfg if not dfg.successors(op.name)]
        assert len(sinks) == 1

    def test_vector_product_bitwidths(self):
        dfg = vector_product_dfg(4, data_width=8, accum_width=12)
        assert dfg.operation("mul0").bitwidth == 8
        adds = [op for op in dfg if op.kind == "add"]
        assert all(op.bitwidth == 12 for op in adds)

    def test_filter_section(self):
        dfg = filter_section_dfg(taps=2, data_width=16)
        kinds = dfg.kinds()
        assert kinds == {"mul": 2, "add": 1, "sub": 1}

    def test_fir(self):
        dfg = fir_dfg(taps=4, data_width=12)
        assert dfg.kinds() == {"mul": 4, "add": 3}

    @pytest.mark.parametrize("builder", [
        vector_product_dfg, filter_section_dfg, fir_dfg
    ])
    def test_bad_size_rejected(self, builder):
        with pytest.raises(ValueError):
            builder(0)
