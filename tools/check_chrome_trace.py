#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by the tracing layer.

Usage::

    python tools/check_chrome_trace.py trace.json [more.json ...]

Exits non-zero and lists every structural problem if any file fails
``repro.obs.validate_chrome_trace`` — the same checks chrome://tracing
and Perfetto rely on (envelope shape, known phases, non-negative
timestamps, complete name/pid/tid fields).  Used by CI to smoke-test
the ``--trace-chrome`` export end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import validate_chrome_trace  # noqa: E402


def check_file(path: Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        return [f"cannot read file: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_chrome_trace(payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "traces", nargs="+", type=Path, help="Chrome trace JSON file(s)"
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.traces:
        problems = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            events = json.loads(path.read_text())["traceEvents"]
            print(f"{path}: ok ({len(events)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
