#!/usr/bin/env python
"""Capture golden identity artifacts for the paper_oneshot formulation.

Writes ``tests/golden/paper_oneshot_identity.json``: compiled-model
fingerprints (full window form, lower-bounded form, windowless template
base) and search trajectories for the AR filter and a reduced DCT across
order modes and ``two_sided_w``.  Run from the repo root::

    PYTHONPATH=src python tools/capture_goldens.py

The file is committed; ``tests/core/test_formulation_goldens.py``
recomputes every digest and trajectory against it, so any refactor of
the formulation stack must stay bit-identical for the default scenario.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.arch import ReconfigurableProcessor
from repro.core import (
    PartitionRequest,
    PartitionerConfig,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
    bounds,
    build_model,
)
from repro.core.formulation import FormulationOptions, ModelTemplate
from repro.solve.fingerprint import WINDOW_ROW_NAMES
from repro.taskgraph.library import ar_filter, dct_4x4

GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden"

CASES = {
    "ar": {
        "graph": ar_filter,
        "num_partitions": 3,
        "processor": dict(
            resource_capacity=400.0,
            memory_capacity=128.0,
            reconfiguration_time=20.0,
            name="xc6264",
        ),
    },
    "dct2": {
        "graph": lambda: dct_4x4(rows=2),
        "num_partitions": 4,
        "processor": dict(
            resource_capacity=576.0,
            memory_capacity=2048.0,
            reconfiguration_time=30.0,
            name="R576",
        ),
    },
}

OPTION_GRID = [
    ("pairwise", False),
    ("pairwise", True),
    ("index", False),
    ("index", True),
]


def fingerprints() -> dict:
    out: dict = {}
    for case, spec in CASES.items():
        graph = spec["graph"]()
        processor = ReconfigurableProcessor(**spec["processor"])
        n = spec["num_partitions"]
        d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
        entry: dict = {"num_partitions": n, "d_max": d_max}
        for order_mode, two_sided in OPTION_GRID:
            options = FormulationOptions(
                order_mode=order_mode, two_sided_w=two_sided
            )
            key = f"{order_mode}/two_sided={two_sided}"
            full = build_model(graph, processor, n, d_max, 0.0, options)
            with_lb = build_model(
                graph, processor, n, d_max, d_max / 2.0, options
            )
            template = ModelTemplate(graph, processor, n, options)
            entry[key] = {
                "full": full.model.compile().fingerprint(),
                "with_lb": with_lb.model.compile().fingerprint(),
                "base": template.base_fingerprint,
                "template_base_matches_fresh": (
                    template.base_fingerprint
                    == full.model.compile().fingerprint(
                        skip_rows=WINDOW_ROW_NAMES
                    )
                ),
            }
        out[case] = entry
    return out


def trajectories() -> dict:
    out: dict = {}
    for case, spec in CASES.items():
        graph = spec["graph"]()
        processor = ReconfigurableProcessor(**spec["processor"])
        config = PartitionerConfig(
            search=RefinementConfig(
                delta=10.0 if case == "ar" else 800.0, time_budget=120.0
            ),
            solver=SolverSettings(backend="highs", time_limit=30.0),
        )
        outcome = TemporalPartitioner(processor, config).solve(
            PartitionRequest(graph=graph)
        )
        out[case] = {
            "total_latency": outcome.total_latency,
            "num_partitions": outcome.num_partitions,
            "rows": [
                [
                    record.num_partitions,
                    record.iteration,
                    record.d_min,
                    record.d_max,
                    record.achieved,
                ]
                for record in outcome.trace
            ],
        }
    return out


def main() -> None:
    payload = {"fingerprints": fingerprints(), "trajectories": trajectories()}
    path = GOLDEN / "paper_oneshot_identity.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
