#!/usr/bin/env python
"""Validate a Prometheus text exposition produced by the metrics layer.

Usage::

    python tools/check_promtext.py metrics.prom [more.prom ...]
    python tools/check_promtext.py --require repro_window_solves_total -- \
        scraped.prom

Exits non-zero and lists every structural problem if any file fails
``repro.obs.validate_promtext`` — the same shape rules a Prometheus
scraper enforces (HELP/TYPE headers, sample-line syntax, ``_total``
counter naming, complete ``+Inf``-terminated cumulative histograms).
``--require`` additionally demands that the named metric families are
present, which is how CI asserts a scrape of ``repro-tp serve
--metrics-port`` actually carries the solve counters.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import validate_promtext  # noqa: E402


def check_file(path: Path, require: tuple[str, ...]) -> list[str]:
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"cannot read file: {exc}"]
    return validate_promtext(text, require=require)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="+", type=Path,
        help="Prometheus text exposition file(s), e.g. a /metrics scrape",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="metric family that must be present (repeatable)",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.files:
        problems = check_file(path, tuple(args.require))
        if problems:
            failed = True
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            families = sum(
                1
                for line in path.read_text().splitlines()
                if line.startswith("# TYPE ")
            )
            print(f"{path}: ok ({families} metric families)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
