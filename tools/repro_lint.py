#!/usr/bin/env python3
"""Deprecation shim: the lint now lives in :mod:`repro.staticcheck`.

This script used to hold the whole repo lint (rules RL001-RL005).  It
has been promoted into the installable package as a scope-aware
subsystem with three more rule packs (concurrency, determinism,
scenario contracts — RL006-RL009), JSON/SARIF output and a findings
baseline.  Use the CLI subcommand instead::

    repro-tp lint [paths ...] [--format text|json|sarif]

This shim keeps old invocations (``python tools/repro_lint.py ...``)
working by delegating to the same engine; flags and exit codes follow
``repro-tp lint`` (0 clean, 1 findings, 2 usage error).  It will be
removed once CI and local hooks have migrated.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.staticcheck.cli import main  # noqa: E402


if __name__ == "__main__":
    print(
        "tools/repro_lint.py is deprecated; use 'repro-tp lint' "
        "(docs/staticcheck.md)",
        file=sys.stderr,
    )
    raise SystemExit(main())
