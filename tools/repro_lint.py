#!/usr/bin/env python
"""Repo-specific AST lint: invariants ruff cannot express.

Usage::

    python tools/repro_lint.py [path ...]      # default: src tests benchmarks tools

Rules
-----

``RL001`` — in-place mutation of ``CompiledModel`` arrays.
    ``with_b_ub``/``with_b_eq``/``truncate_ub_rows`` hand out siblings
    whose numpy arrays alias the original's (and the template's cached
    ``_no_lb`` view), so ``compiled.b_ub[i] = x`` silently corrupts
    every sibling.  The arrays are frozen at compile time; this rule
    catches the write *statically*, before the runtime ``ValueError``.
    Flags subscript/augmented assignment to the protected attributes and
    in-place numpy method calls (``.fill``, ``.sort``, ``.put``,
    ``.resize``, ``.partition``) on them.

``RL002`` — shared-state writes in portfolio workers.
    ``repro.solve.portfolio`` attempt functions (signature marker: a
    parameter named ``cancel``) run in racing threads.  They must
    communicate only through their returned ``SolveAttempt`` and the
    cancellation event; writing ``self.<attr>``, ``global`` or
    ``nonlocal`` state from a worker is a data race.

``RL003`` — tracer construction outside the composition roots.
    Library code must trace through the run's tracer
    (``SolverSettings.tracer``, threaded via ``SolveExecutor.tracer`` /
    ``as_tracer``).  Constructing a fresh ``Tracer(...)`` anywhere in
    ``src/repro/`` except :mod:`repro.obs` itself and the CLI entry
    point forks the span tree.  Only enforced under ``src/repro/``.

``RL004`` — direct backend invocation bypassing the execution layer.
    Window solves in library code must go through
    ``SolveExecutor.solve_window``, which layers the solve cache, the
    incumbent check, the primal-first stage and the portfolio race in
    front of the backends.  Calling a backend entry point
    (``solve_with_highs``, ``solve_with_bnb``, ``solve_with_simplex``,
    ``branch_and_bound``, ``solve_compiled``) directly skips all of
    that.  Enforced under ``src/repro/`` except the solver layers
    themselves (``ilp/``, ``solve/``), ``obs/``, the CLI entry point
    and ``core/formulation.py`` (whose ``TpModel.solve`` is the
    dispatch shim the executor calls).

``RL005`` — private formulation-builder imports outside the registry.
    The constraint builders (``_build_assignment``, ``_populate_ilp``,
    ``_w_name``, …) are implementation details of
    ``repro.core.families`` and ``repro.core.formulation``; the
    supported extension surface is the scenario registry
    (``ConstraintFamily`` / ``ScenarioSpec`` / ``register_scenario``)
    and the public model builders.  ``from repro.core.families import
    _anything`` (or from ``repro.core.formulation``) anywhere except
    those two modules couples callers to builder internals that the
    registry is free to reshape.

Suppression: append ``# repro-lint: ignore`` (all rules) or
``# repro-lint: ignore[RL001]`` (one rule) to the offending line.

Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Attributes that are *always* CompiledModel arrays when written through
#: an attribute access — the names are unique to the compiled form.
_ALWAYS_PROTECTED = frozenset({
    "b_ub", "b_eq",
    "ub_data", "ub_indices", "ub_indptr",
    "eq_data", "eq_indices", "eq_indptr",
    "is_integral",
})

#: Attributes shared with other objects (models have ``lb``/``ub``/``c``
#: too); only flagged when the base object plausibly is a compiled model.
_CONTEXT_PROTECTED = frozenset({"lb", "ub", "c"})

#: Base names that mark the object as a compiled standard form.
_COMPILED_NAMES = frozenset({"compiled", "cm", "form"})

#: numpy ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "resize"})

#: ILP backend entry points that RL004 keeps out of library code.
_BACKEND_ENTRYPOINTS = frozenset({
    "solve_with_highs", "solve_with_bnb", "solve_with_simplex",
    "branch_and_bound", "solve_compiled",
})

#: Modules whose underscore-prefixed names RL005 keeps private.
_FORMULATION_MODULES = frozenset({
    "repro.core.formulation", "repro.core.families",
})

_SUPPRESS_RE = re.compile(r"repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9, ]+)\])?")


@dataclass(frozen=True)
class Violation:
    path: Path
    lineno: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.lineno}: {self.rule} {self.message}"


def _base_is_compiled(node: ast.expr) -> bool:
    """Does ``node`` (the object whose attribute is written) look like a
    compiled model?  ``compiled`` / ``cm`` / ``form`` names and any
    attribute chain ending in ``_compiled`` (e.g. ``self._compiled``)."""
    if isinstance(node, ast.Name):
        return node.id in _COMPILED_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_compiled") or node.attr in _COMPILED_NAMES
    return False


def _protected_attribute(node: ast.expr) -> str | None:
    """The protected-array attribute accessed by ``node``, if any.

    Matches ``<obj>.b_ub`` for the always-protected names and
    ``compiled.lb``-style accesses for the context-dependent ones.
    """
    if not isinstance(node, ast.Attribute):
        return None
    if node.attr in _ALWAYS_PROTECTED:
        return node.attr
    if node.attr in _CONTEXT_PROTECTED and _base_is_compiled(node.value):
        return node.attr
    return None


class _RuleVisitor(ast.NodeVisitor):
    def __init__(
        self,
        path: Path,
        in_library: bool,
        in_solver_client: bool = False,
        in_formulation: bool = False,
    ) -> None:
        self.path = path
        self.in_library = in_library  # under src/repro/, RL003 applies
        #: RL004 scope: library code that should solve through the
        #: executor rather than call a backend entry point directly.
        self.in_solver_client = in_solver_client
        #: RL005 exemption: the formulation/families modules themselves.
        self.in_formulation = in_formulation
        self.violations: list[Violation] = []
        self._cancel_depth = 0  # inside a function taking ``cancel``

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, rule, message)
        )

    # -- RL001: in-place writes to compiled arrays ---------------------------

    def _check_write_target(self, target: ast.expr) -> None:
        # compiled.b_ub[i] = x  /  compiled.b_ub[i] += x.  Re-binding the
        # attribute itself (compiled.b_ub = x) is construction, not
        # mutation, and stays legal.
        if isinstance(target, ast.Subscript):
            attr = _protected_attribute(target.value)
            if attr is not None:
                self._flag(
                    target, "RL001",
                    f"in-place write to CompiledModel array '.{attr}' — "
                    "arrays alias template/sibling views; build a patched "
                    "sibling with with_b_ub()/with_b_eq() instead",
                )

    # -- RL002 helpers -------------------------------------------------------

    def _check_self_write(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._flag(
                target, "RL002",
                f"write to 'self.{target.attr}' inside a portfolio attempt "
                "(parameter 'cancel') — workers race in threads; return "
                "results via SolveAttempt instead",
            )

    # -- combined traversal --------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
            if self._cancel_depth:
                self._check_self_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        # ``compiled.b_ub += x`` goes through ndarray.__iadd__: in-place
        # mutation, unlike a plain re-binding assignment.
        attr = _protected_attribute(node.target)
        if attr is not None:
            self._flag(
                node, "RL001",
                f"augmented assignment to CompiledModel array '.{attr}' "
                "mutates in place via ndarray.__iadd__ — build a patched "
                "sibling with with_b_ub()/with_b_eq() instead",
            )
        if self._cancel_depth:
            self._check_self_write(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # RL001: compiled.b_ub.fill(0) and friends
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INPLACE_METHODS
        ):
            attr = _protected_attribute(func.value)
            if attr is not None:
                self._flag(
                    node, "RL001",
                    f"in-place numpy call '.{attr}.{func.attr}()' on a "
                    "CompiledModel array — arrays alias template/sibling "
                    "views; copy first or build a patched sibling",
                )
        # RL003: stray Tracer construction in library code
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "Tracer" and self.in_library:
            self._flag(
                node, "RL003",
                "Tracer constructed in library code — thread the run's "
                "tracer through SolverSettings.tracer / as_tracer() so "
                "the span tree stays whole",
            )
        # RL004: backend entry points called outside the solver layers
        if name in _BACKEND_ENTRYPOINTS and self.in_solver_client:
            self._flag(
                node, "RL004",
                f"direct call to backend entry point '{name}' in library "
                "code — solve through SolveExecutor.solve_window so the "
                "cache, incumbent check, primal-first stage and portfolio "
                "race apply",
            )
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        args = node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)]
        takes_cancel = "cancel" in names
        if takes_cancel:
            self._cancel_depth += 1
        self.generic_visit(node)
        if takes_cancel:
            self._cancel_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # RL005: private builder names stay inside the formulation stack.
        if (
            not self.in_formulation
            and node.module in _FORMULATION_MODULES
            and node.level == 0
        ):
            for alias in node.names:
                if alias.name.startswith("_"):
                    self._flag(
                        node, "RL005",
                        f"import of private name '{alias.name}' from "
                        f"'{node.module}' — builder internals are not an "
                        "extension surface; register a ConstraintFamily/"
                        "ScenarioSpec or use the public builders instead",
                    )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._cancel_depth:
            self._flag(
                node, "RL002",
                f"'global {', '.join(node.names)}' inside a portfolio "
                "attempt (parameter 'cancel') — workers race in threads; "
                "return results via SolveAttempt instead",
            )
        self.generic_visit(node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        if self._cancel_depth:
            self._flag(
                node, "RL002",
                f"'nonlocal {', '.join(node.names)}' inside a portfolio "
                "attempt (parameter 'cancel') — workers race in threads; "
                "return results via SolveAttempt instead",
            )
        self.generic_visit(node)


def _lint_source(
    path: Path,
    source: str,
    in_library: bool,
    in_solver_client: bool = False,
    in_formulation: bool = False,
) -> list[Violation]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "RL000",
                          f"syntax error: {exc.msg}")]
    visitor = _RuleVisitor(path, in_library, in_solver_client, in_formulation)
    visitor.visit(tree)

    lines = source.splitlines()
    kept = []
    for violation in visitor.violations:
        line = lines[violation.lineno - 1] if (
            0 < violation.lineno <= len(lines)
        ) else ""
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = match.group("codes")
            if codes is None:
                continue  # bare ignore: all rules
            if violation.rule in {c.strip() for c in codes.split(",")}:
                continue
        kept.append(violation)
    return kept


def _is_library_path(path: Path) -> bool:
    """RL003 scope: ``src/repro/**`` minus ``obs/`` and ``cli.py``."""
    parts = path.as_posix()
    if "src/repro/" not in parts:
        return False
    rest = parts.split("src/repro/", 1)[1]
    if rest.startswith("obs/") or "/obs/" in rest:
        return False
    return rest != "cli.py"


def _is_solver_client_path(path: Path) -> bool:
    """RL004 scope: library code that consumes the solver layers.

    ``src/repro/**`` minus the solver layers themselves (``ilp/``,
    ``solve/``), ``obs/``, the CLI entry point, and
    ``core/formulation.py`` (home of the ``TpModel.solve`` dispatch shim
    that :class:`repro.solve.executor.SolveExecutor` calls).
    """
    if not _is_library_path(path):
        return False
    rest = path.as_posix().split("src/repro/", 1)[1]
    if rest.startswith(("ilp/", "solve/")):
        return False
    return rest != "core/formulation.py"


def _is_formulation_path(path: Path) -> bool:
    """RL005 exemption: the formulation stack's own modules."""
    parts = path.as_posix()
    if "src/repro/" not in parts:
        return False
    rest = parts.split("src/repro/", 1)[1]
    return rest in ("core/formulation.py", "core/families.py")


def lint_paths(paths: list[Path]) -> list[Violation]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    violations: list[Violation] = []
    for file in files:
        if "__pycache__" in file.parts:
            continue
        source = file.read_text()
        violations.extend(
            _lint_source(
                file, source, _is_library_path(file),
                _is_solver_client_path(file),
                _is_formulation_path(file),
            )
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="repo-specific AST lint (RL001 compiled-array "
        "mutation, RL002 worker shared state, RL003 stray tracers, "
        "RL004 backend calls bypassing the executor, RL005 private "
        "formulation-builder imports)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        default=[Path("src"), Path("tests"), Path("benchmarks"),
                 Path("tools")],
        help="files or directories to lint (default: src tests "
        "benchmarks tools)",
    )
    args = parser.parse_args(argv)
    try:
        violations = lint_paths(args.paths)
    except (OSError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
