"""Execution-timeline simulation of a partitioned design.

This is the reproduction's independent oracle for latency semantics: given
a :class:`~repro.core.solution.PartitionedDesign`, it *replays* the design
on the processor as a dataflow schedule —

1. load configuration ``p`` (takes ``C_T``),
2. start every task of partition ``p`` as soon as its in-partition
   predecessors finish (cross-partition inputs are already in memory),
3. the partition retires when its last task finishes,
4. repeat for ``p + 1``.

The resulting makespan must equal
``PartitionedDesign.total_latency(processor)`` — an equality asserted by
property-based tests, giving two independently coded implementations of
the paper's latency model (equation (7) + (9)).  The simulator also traces
memory occupancy over time so memory violations can be localized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.arch.processor import ReconfigurableProcessor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.solution import PartitionedDesign

__all__ = ["TimelineEvent", "PartitionTrace", "ExecutionReport", "simulate"]


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled interval on the device."""

    kind: str           # "reconfigure" | "task"
    label: str          # partition tag or task name
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PartitionTrace:
    """Per-partition slice of the simulation."""

    partition: int
    configure_start: float
    configure_end: float
    compute_end: float
    tasks: list[TimelineEvent] = field(default_factory=list)
    area_used: float = 0.0
    memory_live: float = 0.0

    @property
    def compute_latency(self) -> float:
        """Pure execution time of the partition (the ILP's ``d_p``)."""
        return self.compute_end - self.configure_end


@dataclass
class ExecutionReport:
    """Full simulation outcome."""

    makespan: float
    execution_latency: float        # makespan minus reconfiguration overhead
    reconfigurations: int
    partitions: list[PartitionTrace] = field(default_factory=list)

    def events(self) -> list[TimelineEvent]:
        """All events, time-ordered."""
        out: list[TimelineEvent] = []
        for trace in self.partitions:
            out.append(
                TimelineEvent(
                    "reconfigure",
                    f"p{trace.partition}",
                    trace.configure_start,
                    trace.configure_end,
                )
            )
            out.extend(trace.tasks)
        return sorted(out, key=lambda e: (e.start, e.end, e.label))

    def gantt(self, width: int = 64) -> str:
        """ASCII Gantt chart of the timeline (for examples and debugging)."""
        if self.makespan <= 0:
            return "(empty timeline)"
        scale = width / self.makespan
        lines = []
        for event in self.events():
            begin = int(event.start * scale)
            length = max(1, int(event.duration * scale))
            bar = " " * begin + ("#" if event.kind == "task" else "=") * length
            lines.append(f"{event.label:>12} |{bar}")
        return "\n".join(lines)


def simulate(
    design: "PartitionedDesign",
    processor: ReconfigurableProcessor,
    include_env_memory: bool = True,
) -> ExecutionReport:
    """Replay ``design`` on ``processor`` and return the full timeline.

    The schedule within a partition is as-soon-as-possible dataflow: a
    task starts at the maximum finish time of its predecessors placed in
    the same partition (inputs produced in earlier partitions wait in
    on-board memory and are available at configuration-load time).
    """
    graph = design.graph
    clock = 0.0
    traces: list[PartitionTrace] = []
    topo = graph.topological_order()

    for partition in design.partitions():
        configure_start = clock
        configure_end = configure_start + processor.reconfiguration_time
        members = set(design.tasks_in(partition))
        finish: dict[str, float] = {}
        events: list[TimelineEvent] = []
        for name in topo:
            if name not in members:
                continue
            ready = max(
                (
                    finish[pred]
                    for pred in graph.predecessors(name)
                    if pred in members
                ),
                default=configure_end,
            )
            latency = design.design_point_of(name).latency
            finish[name] = ready + latency
            events.append(TimelineEvent("task", name, ready, finish[name]))
        compute_end = max(finish.values(), default=configure_end)
        traces.append(
            PartitionTrace(
                partition=partition,
                configure_start=configure_start,
                configure_end=configure_end,
                compute_end=compute_end,
                tasks=events,
                area_used=design.partition_area(partition),
                memory_live=design.memory_at_boundary(
                    partition, include_env_memory
                ),
            )
        )
        clock = compute_end

    # Empty partitions below eta still cost a reconfiguration in the
    # paper's model (eta counts the highest used index); account for them.
    used = len(traces)
    eta = design.num_partitions_used
    skipped = eta - used
    makespan = clock + skipped * processor.reconfiguration_time
    return ExecutionReport(
        makespan=makespan,
        execution_latency=makespan - eta * processor.reconfiguration_time,
        reconfigurations=eta,
        partitions=traces,
    )
