"""Target architecture parameters of the run-time reconfigurable processor.

The paper abstracts the board to three numbers (Section 3): the resource
capacity ``R_max`` (CLBs / function generators of the FPGA), the on-board
memory ``M_max`` for inter-partition data, and the reconfiguration time
``C_T``.  Two presets bracket the reconfiguration-overhead regimes the
paper discusses:

* :func:`wildforce` — a WILDFORCE-like board whose reconfiguration time
  (milliseconds) dwarfs task latencies: minimizing the number of
  partitions minimizes overall latency.
* :func:`time_multiplexed` — a Xilinx time-multiplexed-FPGA-like device
  with nanosecond-scale context switches: extra partitions can pay for
  themselves by enabling faster (larger) design points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ReconfigurableProcessor", "wildforce", "time_multiplexed"]


@dataclass(frozen=True)
class ReconfigurableProcessor:
    """A single-FPGA run-time reconfigurable processor.

    Attributes
    ----------
    resource_capacity:
        ``R_max`` — logic resources available per configuration.
    memory_capacity:
        ``M_max`` — on-board memory (in data units) for values that cross
        temporal-partition boundaries.
    reconfiguration_time:
        ``C_T`` — time to load one configuration, in the same unit as task
        latencies (nanoseconds throughout this repository).
    name:
        Label used in reports.
    """

    resource_capacity: float
    memory_capacity: float
    reconfiguration_time: float
    name: str = "processor"
    #: Capacities of additional resource types (block RAMs, dedicated
    #: multipliers, ...) as sorted ``(type, capacity)`` pairs.  The ILP
    #: adds one capacity row per partition per declared type.
    extra_capacities: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.resource_capacity <= 0:
            raise ValueError("resource capacity must be positive")
        if self.memory_capacity < 0:
            raise ValueError("memory capacity must be non-negative")
        if self.reconfiguration_time < 0:
            raise ValueError("reconfiguration time must be non-negative")
        for kind, capacity in self.extra_capacities:
            if capacity < 0:
                raise ValueError(
                    f"negative capacity for resource {kind!r}: {capacity}"
                )

    def extra_capacity(self, kind: str) -> float:
        """Capacity of one extra resource type (0 when undeclared)."""
        return dict(self.extra_capacities).get(kind, 0.0)

    def with_extra_capacities(self, **capacities: float) -> "ReconfigurableProcessor":
        """Copy with extra resource types, e.g. ``with_extra_capacities(bram=16)``."""
        merged = dict(self.extra_capacities)
        merged.update(capacities)
        return replace(
            self, extra_capacities=tuple(sorted(merged.items()))
        )

    def with_resources(self, resource_capacity: float) -> "ReconfigurableProcessor":
        """Copy with a different ``R_max`` (the paper's 576 vs 1024 sweep)."""
        return replace(self, resource_capacity=resource_capacity)

    def with_reconfiguration_time(self, c_t: float) -> "ReconfigurableProcessor":
        """Copy with a different ``C_T`` (small- vs large-overhead regime)."""
        return replace(self, reconfiguration_time=c_t)

    def reconfiguration_overhead(self, partitions: int) -> float:
        """Total overhead ``N * C_T`` for ``partitions`` configurations."""
        if partitions < 0:
            raise ValueError("partition count must be non-negative")
        return partitions * self.reconfiguration_time


def wildforce(
    resource_capacity: float = 576,
    memory_capacity: float = 2048,
) -> ReconfigurableProcessor:
    """A WILDFORCE-like board: ``C_T`` = 10 ms (in ns)."""
    return ReconfigurableProcessor(
        resource_capacity=resource_capacity,
        memory_capacity=memory_capacity,
        reconfiguration_time=10e6,
        name="wildforce",
    )


def time_multiplexed(
    resource_capacity: float = 576,
    memory_capacity: float = 2048,
) -> ReconfigurableProcessor:
    """A time-multiplexed-FPGA-like device: ``C_T`` = 30 ns."""
    return ReconfigurableProcessor(
        resource_capacity=resource_capacity,
        memory_capacity=memory_capacity,
        reconfiguration_time=30.0,
        name="time_multiplexed",
    )
