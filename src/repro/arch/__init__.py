"""Target architecture model: processor parameters and timeline simulation."""

from repro.arch.executor import (
    ExecutionReport,
    PartitionTrace,
    TimelineEvent,
    simulate,
)
from repro.arch.processor import (
    ReconfigurableProcessor,
    time_multiplexed,
    wildforce,
)

__all__ = [
    "ExecutionReport",
    "PartitionTrace",
    "ReconfigurableProcessor",
    "TimelineEvent",
    "simulate",
    "time_multiplexed",
    "wildforce",
]
