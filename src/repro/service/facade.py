"""Partition-as-a-service: the :class:`PartitionService` facade.

One service instance accepts many :class:`~repro.core.partitioner
.PartitionRequest`\\ s concurrently and answers each with a
:class:`~repro.core.partitioner.PartitioningOutcome`::

    from repro.service import PartitionService
    from repro import PartitionRequest
    from repro.arch import time_multiplexed

    async with PartitionService(
        processor=time_multiplexed(), max_workers=4,
        cache_path="solves.sqlite",
    ) as service:
        outcomes = await service.submit_batch(
            [PartitionRequest(graph=g) for g in graphs]
        )

Three layers compose here:

* **asyncio facade** — :meth:`submit` returns a
  :class:`concurrent.futures.Future` (await it via :meth:`solve`, or
  batch-gather via :meth:`submit_batch`); request coordination runs in
  a small thread pool so the event loop never blocks on a solve;
* **process-pool sharding** — each request's partition bounds are
  evaluated by :func:`repro.service.sharding.solve_sharded` over a
  shared :class:`~concurrent.futures.ProcessPoolExecutor`, with the
  per-request best-latency bound ``D_a`` in a manager proxy so workers
  prune each other, and a cooperative cancellation event
  (:meth:`cancel_all`); ``max_workers=0`` runs every shard inline —
  deterministic, no subprocesses;
* **persistent solve cache** — ``cache_path`` points every worker (and
  the inline path) at one :class:`repro.solve.disk_cache.DiskSolveCache`
  SQLite file, so verdicts are shared across workers, requests and
  service restarts under the monotone window-reuse rules.

Progress streams through :mod:`repro.obs`: pass ``sinks`` (e.g. a
:class:`~repro.obs.JsonlSink`) or a ready-made ``tracer`` and the
service emits ``service_request_*`` / ``shard_*`` events alongside the
usual solve spans of the inline path.  Pass a
:class:`~repro.obs.MetricsRegistry` as ``metrics`` and the service
additionally counts requests (``repro_service_requests_total``,
in-flight gauge, queue-wait and end-to-end latency histograms) and
absorbs every shard worker's counters into the same registry — one
scrape sees the whole fleet.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.partitioner import (
    PartitionerConfig,
    PartitioningOutcome,
    PartitionRequest,
)
from repro.obs.metrics import as_metrics
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.service.sharding import solve_sharded
from repro.taskgraph.validate import validate_graph

__all__ = ["PartitionService"]


class PartitionService:
    """Async batch facade over the sharded partition search."""

    def __init__(
        self,
        processor: ReconfigurableProcessor | None = None,
        config: PartitionerConfig | None = None,
        max_workers: int | None = None,
        cache_path: str | None = None,
        sinks: Sequence = (),
        tracer: Tracer | None = None,
        metrics=None,
    ) -> None:
        """``processor``/``config`` are defaults for requests that omit
        them; ``max_workers`` sizes the shard pool (``None`` — the CPU
        count; ``0`` — inline, deterministic, no subprocesses);
        ``cache_path`` is threaded into every request's solver settings
        unless they already name their own disk cache; ``metrics`` is an
        optional :class:`~repro.obs.MetricsRegistry` that collects
        service-level counters and absorbs every shard worker's
        snapshot (``None`` — metrics disabled, no overhead).
        """
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.processor = processor
        self.config = config
        self.max_workers = max_workers
        self.cache_path = cache_path
        if tracer is not None:
            self.tracer = tracer
        elif sinks:
            # Composition root: the service is where the user's sinks
            # are wired into the library, like the CLI's entry points.
            self.tracer = Tracer(*sinks)  # repro-lint: ignore[RL003]
        else:
            self.tracer = NULL_TRACER
        self.metrics = as_metrics(metrics)
        self._m_requests = self.metrics.counter(
            "repro_service_requests_total",
            "Requests the service finished, by outcome.",
            ("outcome",),
        )
        self._m_in_flight = self.metrics.gauge(
            "repro_service_requests_in_flight",
            "Requests accepted but not yet answered.",
        )
        self._m_queue_wait = self.metrics.histogram(
            "repro_service_queue_wait_seconds",
            "Time between submission and a coordinator picking the "
            "request up.",
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_service_request_seconds",
            "End-to-end request latency (coordination plus solve).",
        )
        self._m_cancellations = self.metrics.counter(
            "repro_service_cancellations_total",
            "cancel_all() invocations observed by the service.",
        )
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        self._pool: ProcessPoolExecutor | None = None
        self._manager = None
        self._cancel = None
        # One coordinator thread per in-flight request; they spend their
        # time waiting on shard futures, so a generous cap is cheap.
        self._coordinators = ThreadPoolExecutor(
            max_workers=max(4, max_workers),
            thread_name_prefix="partition-service",
        )

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("PartitionService is closed")
            if self.max_workers == 0:
                return None, None
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
                self._manager = multiprocessing.Manager()
                self._cancel = self._manager.Event()
            return self._pool, self._manager

    def close(self) -> None:
        """Shut down the worker pool and coordinator threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, manager = self._pool, self._manager
            self._pool = None
            self._manager = None
        self._coordinators.shutdown(wait=True)
        if pool is not None:
            pool.shutdown(wait=True)
        if manager is not None:
            manager.shutdown()
        self.tracer.close()

    def cancel_all(self) -> None:
        """Cooperatively stop every in-flight shard.

        Workers observe the event between bisection trials and return
        their current state; pending shards come back ``skipped``.
        """
        with self._lock:
            cancel = self._cancel
        if cancel is not None:
            cancel.set()
        self._m_cancellations.inc()
        self.tracer.event("service_cancelled")

    def __enter__(self) -> "PartitionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    async def __aenter__(self) -> "PartitionService":
        return self

    async def __aexit__(self, *exc) -> None:
        await asyncio.to_thread(self.close)

    # -- submission ----------------------------------------------------------

    def _resolve(
        self, request: PartitionRequest
    ) -> tuple[ReconfigurableProcessor, PartitionerConfig]:
        processor = request.processor or self.processor
        if processor is None:
            raise ValueError(
                "request has no processor and the service has no default"
            )
        config = request.config or self.config or PartitionerConfig()
        if self.cache_path is not None and config.solver.cache_path is None:
            config = dataclasses.replace(
                config,
                solver=dataclasses.replace(
                    config.solver, cache_path=self.cache_path
                ),
            )
        return processor, config

    def submit(self, request: PartitionRequest) -> "Future[PartitioningOutcome]":
        """Accept one request; returns a concurrent future.

        Usable from synchronous code directly (``future.result()``) or
        from asyncio via ``asyncio.wrap_future`` — which is exactly what
        :meth:`solve` does.
        """
        processor, config = self._resolve(request)
        request_id = next(self._request_ids)
        self.tracer.event(
            "service_request_submitted",
            request_id=request_id,
            graph=request.graph.name,
            tasks=len(request.graph.task_names),
        )
        self._m_in_flight.inc()
        return self._coordinators.submit(
            self._run_request,
            request_id,
            request,
            processor,
            config,
            time.perf_counter(),
        )

    async def solve(self, request: PartitionRequest) -> PartitioningOutcome:
        """Await one request's outcome."""
        return await asyncio.wrap_future(self.submit(request))

    async def submit_batch(
        self, requests: Iterable[PartitionRequest]
    ) -> list[PartitioningOutcome]:
        """Submit many requests concurrently; outcomes in input order.

        All requests are accepted before any is awaited, so they share
        the worker pool (and the disk cache) from the start.
        """
        futures = [self.submit(request) for request in requests]
        return list(
            await asyncio.gather(
                *(asyncio.wrap_future(f) for f in futures)
            )
        )

    def solve_batch(
        self, requests: Iterable[PartitionRequest]
    ) -> list[PartitioningOutcome]:
        """Synchronous :meth:`submit_batch` (CLI and script callers)."""
        futures = [self.submit(request) for request in requests]
        return [f.result() for f in futures]

    # -- per-request coordination -------------------------------------------

    def _run_request(
        self,
        request_id: int,
        request: PartitionRequest,
        processor: ReconfigurableProcessor,
        config: PartitionerConfig,
        submitted: float | None = None,
    ) -> PartitioningOutcome:
        start = time.perf_counter()
        if submitted is not None:
            self._m_queue_wait.observe(max(start - submitted, 0.0))
        outcome_label = "error"
        try:
            outcome = self._solve_request(
                request_id, request, processor, config, start
            )
            outcome_label = "feasible" if outcome.feasible else "infeasible"
            return outcome
        finally:
            self._m_in_flight.dec()
            self._m_requests.labels(outcome_label).inc()
            self._m_request_seconds.observe(time.perf_counter() - start)

    def _solve_request(
        self,
        request_id: int,
        request: PartitionRequest,
        processor: ReconfigurableProcessor,
        config: PartitionerConfig,
        start: float,
    ) -> PartitioningOutcome:
        if config.validate:
            report = validate_graph(
                request.graph,
                resource_capacity=processor.resource_capacity,
            )
            report.raise_if_failed()
        pool, manager = self._ensure_pool()
        if pool is None:
            bound = bound_lock = cancel = None
        else:
            # The incumbent bound D_a is per request (different graphs
            # do not share latencies); cancellation is service-wide.
            bound = manager.Value("d", float("inf"))
            bound_lock = manager.Lock()
            cancel = self._cancel
        result = solve_sharded(
            request.graph,
            processor,
            config=config,
            max_workers=self.max_workers,
            pool=pool,
            bound=bound,
            bound_lock=bound_lock,
            cancel=cancel,
            tracer=self.tracer if self.tracer.enabled else None,
            metrics=self.metrics if self.metrics.enabled else None,
        )
        prange = bounds.partition_range(
            request.graph,
            processor,
            alpha=config.search.alpha,
            gamma=config.search.gamma,
        )
        outcome = PartitioningOutcome(
            design=result.design,
            total_latency=result.achieved,
            trace=result.trace,
            partition_range=prange,
            delta=result.delta,
            stopped_by_min_latency_cut=result.stopped_by_min_latency_cut,
            stopped_by_time=result.stopped_by_time,
            degraded=result.degraded,
            telemetry=result.telemetry,
            scenario=config.formulation.scenario,
        )
        self.tracer.event(
            "service_request_completed",
            request_id=request_id,
            feasible=outcome.feasible,
            total_latency=outcome.total_latency,
            degraded=outcome.degraded,
            wall_time=time.perf_counter() - start,
        )
        return outcome
