"""Partition-as-a-service: batch facade, sharding, persistent cache.

The paper's search is a single-threaded loop; this package turns it
into a service that takes *many* partitioning problems at once:

* :mod:`repro.service.facade` — :class:`PartitionService`, the asyncio
  batch entry point (``submit`` / ``submit_batch`` / ``solve_batch``);
* :mod:`repro.service.sharding` — the coordinator distributing one
  partition bound ``N`` per worker, with the shared incumbent ``D_a``
  pruning across processes;
* :mod:`repro.service.worker` — the picklable per-process shard body;
* :mod:`repro.service.wire` — the explicit JSON-able payloads crossing
  the process boundary (no library objects are pickled).

The persistent verdict store backing it all is
:class:`repro.solve.disk_cache.DiskSolveCache`, selected by
``SolverSettings(cache_path=...)`` (or the service's ``cache_path``
default).  See ``docs/service.md``.
"""

from repro.service.facade import PartitionService
from repro.service.sharding import solve_sharded
from repro.service.wire import decode_request, encode_request
from repro.service.worker import solve_shard

__all__ = [
    "PartitionService",
    "decode_request",
    "encode_request",
    "solve_shard",
    "solve_sharded",
]
