"""The coordinator of the sharded partition-space search.

:func:`solve_sharded` is ``Refine_Partitions_Bound`` re-shaped for a
worker pool: instead of walking partition bounds one at a time
(escalate until feasible, then relax), every ``N`` of the explored
range becomes an independent *shard* evaluated by
:func:`repro.service.worker.solve_shard` — in worker processes when a
pool is given, inline (sequentially, in ``N`` order) when
``max_workers=0``.

The serial algorithm's two couplings between bounds survive as shared
state rather than loop order:

* the incumbent ``D_a`` that the relax phase feeds forward becomes the
  manager-shared ``bound`` value — a shard whose whole window strictly
  loses to a sibling's incumbent skips itself at start (the paper's
  min-latency cut, ``MinLatency(N) > D_a``) or prunes itself mid-search
  via ``should_stop``; the incumbent never clips a running shard's
  window, so pruning saves solver time without ever changing which
  shard wins;
* the min-latency cut that ends the relax phase becomes that per-shard
  skip decision, applied at shard start instead of loop exit.

Escalation past the explored range (the serial loop's response to an
infeasible ``N_start``) is preserved: when a whole wave comes back
infeasible, the next wave continues at higher ``N``, bounded by
``RefinementConfig.infeasible_escalation_limit``.

Sharded results are *verdict-compatible* with the serial search — every
returned design is feasible and audited, and the achieved latency lands
in the same ``delta`` band — but not trajectory-identical: shards bisect
full windows the serial relax phase clips with its incumbent.  The
merged outcome itself is deterministic (pruning only removes shards
that provably cannot win), and the serial path through
:func:`repro.core.refine_partitions.refine_partitions_bound` is
untouched (and property-tested to stay bit-identical).
"""

from __future__ import annotations

import math
import time
from typing import Any

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.partitioner import PartitionerConfig
from repro.core.refine_partitions import RefinementResult
from repro.core.solution import PartitionedDesign
from repro.core.trace import SearchTrace
from repro.obs.metrics import MetricsSnapshot, as_metrics
from repro.obs.tracer import as_tracer
from repro.service import wire
from repro.service.worker import solve_shard
from repro.solve.telemetry import RunTelemetry
from repro.taskgraph import io as graph_io
from repro.taskgraph.graph import TaskGraph

__all__ = ["solve_sharded"]


class _InlineValue:
    """``multiprocessing.Manager().Value`` stand-in for inline mode."""

    def __init__(self, value: float) -> None:
        self.value = value


class _InlineLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        return None


def solve_sharded(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    config: PartitionerConfig | None = None,
    max_workers: int = 2,
    pool=None,
    bound=None,
    bound_lock=None,
    cancel=None,
    tracer=None,
    metrics=None,
) -> RefinementResult:
    """Run the partition-space search with one worker per bound ``N``.

    ``pool`` is a :class:`concurrent.futures.ProcessPoolExecutor` (the
    service shares one across a batch); ``bound``/``bound_lock``/
    ``cancel`` are manager proxies for the cross-worker incumbent and
    cooperative cancellation.  With ``max_workers=0`` everything runs
    inline in this process — deterministic, no multiprocessing — using
    local stand-ins for the shared state.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`: each
    shard counts into its own worker-local registry and ships the
    snapshot home in its report; those snapshots are absorbed here, in
    ``num_partitions`` order, so one scrape of the caller's registry
    sees the whole fleet.  Snapshot merging is commutative, so the
    totals do not depend on worker timing.
    """
    config = config or PartitionerConfig()
    tracer = as_tracer(tracer)
    metrics = as_metrics(metrics)
    search = config.search
    c_t = processor.reconfiguration_time
    prange = bounds.partition_range(
        graph, processor, alpha=search.alpha, gamma=search.gamma
    )
    delta = search.resolve_delta(
        bounds.max_latency(graph, prange.start, c_t)
    )
    start_stamp = time.perf_counter()
    deadline = (
        start_stamp + search.time_budget
        if search.time_budget is not None
        else None
    )

    inline = pool is None
    if inline:
        bound = _InlineValue(math.inf)
        bound_lock = _InlineLock()
        cancel = None
    else:
        if bound is None or bound_lock is None:
            raise ValueError(
                "pooled solve_sharded needs manager-backed bound and "
                "bound_lock proxies"
            )

    base_payload: dict[str, Any] = {
        "graph": graph_io.to_dict(graph),
        "processor": wire.encode_processor(processor),
        "config": wire.encode_config(config),
        "delta": delta,
    }

    def shard_payload(num_partitions: int) -> dict[str, Any]:
        payload = dict(base_payload)
        payload["num_partitions"] = num_partitions
        if deadline is not None:
            payload["remaining_time"] = max(
                deadline - time.perf_counter(), 0.0
            )
        return payload

    def run_wave(shard_ns: list[int]) -> list[dict[str, Any]]:
        """Evaluate one wave of bounds; returns reports in ``N`` order."""
        if inline:
            reports = []
            for n in shard_ns:
                tracer.event("shard_dispatched", num_partitions=n, inline=True)
                reports.append(
                    solve_shard(
                        shard_payload(n), bound, bound_lock, cancel
                    )
                )
            return reports
        futures = []
        for n in shard_ns:
            tracer.event("shard_dispatched", num_partitions=n, inline=False)
            futures.append(
                pool.submit(
                    solve_shard, shard_payload(n), bound, bound_lock, cancel
                )
            )
        return [f.result() for f in futures]

    def time_expired() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    reports: list[dict[str, Any]] = []
    wave = list(prange)
    escalated = 0
    stopped_by_time = False
    while True:
        wave_reports = run_wave(wave)
        for report in wave_reports:
            tracer.event(
                "shard_completed",
                num_partitions=report["num_partitions"],
                feasible=report["feasible"],
                achieved=report["achieved"],
                skipped=report["skipped"],
            )
        reports.extend(wave_reports)
        if any(r["feasible"] for r in reports):
            break
        if time_expired():
            stopped_by_time = True
            break
        if cancel is not None and cancel.is_set():
            break
        # The whole range was infeasible: escalate past it, one wave of
        # higher bounds at a time (the serial loop's N += 1, batched),
        # up to the same safety limit the serial search honors.
        remaining = search.infeasible_escalation_limit - escalated
        if remaining <= 0:
            tracer.event("escalation_limit_reached", escalations=escalated)
            break
        next_n = wave[-1] + 1
        wave = list(
            range(next_n, next_n + min(max(max_workers, 1), remaining))
        )
        escalated += len(wave)

    # -- merge ---------------------------------------------------------------

    reports.sort(key=lambda r: r["num_partitions"])
    trace = SearchTrace()
    explored: list[int] = []
    telemetry = RunTelemetry()
    best_report: dict[str, Any] | None = None
    degraded = False
    any_cut = False
    for report in reports:
        if report["skipped"] == "min_latency_cut":
            any_cut = True
        if report["trace"] is not None:
            trace.extend(SearchTrace.from_dict(report["trace"]))
            explored.append(report["num_partitions"])
        if report["telemetry"] is not None:
            telemetry.merge(RunTelemetry.from_dict(report["telemetry"]))
        if metrics.enabled and report.get("metrics"):
            metrics.absorb(MetricsSnapshot.from_dict(report["metrics"]))
        degraded = degraded or bool(report["degraded"])
        if report["feasible"] and (
            best_report is None
            or report["achieved"] < best_report["achieved"]
        ):
            best_report = report

    design = None
    achieved = None
    if best_report is not None:
        design = PartitionedDesign.from_labels(
            graph,
            {
                name: (int(partition), str(label))
                for name, (partition, label) in best_report[
                    "assignment"
                ].items()
            },
        )
        achieved = float(best_report["achieved"])
    return RefinementResult(
        design=design,
        achieved=achieved,
        trace=trace,
        explored_partitions=tuple(explored),
        delta=delta,
        stopped_by_min_latency_cut=any_cut,
        stopped_by_time=stopped_by_time,
        degraded=degraded,
        telemetry=telemetry,
    )
