"""Wire format for crossing the process boundary.

The sharded service runs one partition bound per worker *process*
(:mod:`repro.service.worker`).  Work is described to workers as plain
JSON-able dicts — graphs through the versioned
:mod:`repro.taskgraph.io` schema, everything else through the explicit
encoders here — instead of pickling live library objects.  That keeps
the boundary inspectable (the CLI's ``batch`` mode reads the same
payloads from disk), independent of pickle's import-path coupling, and
honest about what transfers: a :class:`~repro.obs.tracer.Tracer` or an
absolute ``time.perf_counter`` deadline never silently crosses — the
tracer is dropped (workers report through returned telemetry), the
deadline is re-expressed as *remaining seconds* and re-anchored on the
worker's own clock.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.arch.processor import ReconfigurableProcessor
from repro.core.formulation import FormulationOptions
from repro.core.partitioner import PartitionerConfig, PartitionRequest
from repro.core.reduce_latency import SolverSettings
from repro.core.refine_partitions import RefinementConfig
from repro.taskgraph import io as graph_io

__all__ = [
    "decode_config",
    "decode_processor",
    "decode_request",
    "encode_config",
    "encode_processor",
    "encode_request",
]


def encode_processor(processor: ReconfigurableProcessor) -> dict[str, Any]:
    return {
        "resource_capacity": processor.resource_capacity,
        "memory_capacity": processor.memory_capacity,
        "reconfiguration_time": processor.reconfiguration_time,
        "name": processor.name,
        "extra_capacities": [
            [kind, capacity] for kind, capacity in processor.extra_capacities
        ],
    }


def decode_processor(payload: dict[str, Any]) -> ReconfigurableProcessor:
    return ReconfigurableProcessor(
        resource_capacity=float(payload["resource_capacity"]),
        memory_capacity=float(payload["memory_capacity"]),
        reconfiguration_time=float(payload["reconfiguration_time"]),
        name=str(payload.get("name", "processor")),
        extra_capacities=tuple(
            (str(kind), float(capacity))
            for kind, capacity in payload.get("extra_capacities", [])
        ),
    )


#: ``SolverSettings`` fields that never cross the process boundary:
#: the tracer (sinks hold open files and locks) and the metrics
#: registry (locks; workers report back a mergeable snapshot instead).
_LOCAL_SETTINGS_FIELDS = frozenset({"tracer", "metrics"})


def _encode_settings(settings: SolverSettings) -> dict[str, Any]:
    # Field-wise, not asdict: tracer and metrics are process-local and
    # never cross the boundary.
    payload = {
        f.name: getattr(settings, f.name)
        for f in dataclasses.fields(settings)
        if f.name not in _LOCAL_SETTINGS_FIELDS
    }
    payload["portfolio"] = (
        None if settings.portfolio is None else list(settings.portfolio)
    )
    payload["extra"] = dict(settings.extra)
    return payload


def _decode_settings(payload: dict[str, Any]) -> SolverSettings:
    known = {f.name for f in dataclasses.fields(SolverSettings)}
    kwargs = {
        k: v
        for k, v in payload.items()
        if k in known and k not in _LOCAL_SETTINGS_FIELDS
    }
    if kwargs.get("portfolio") is not None:
        kwargs["portfolio"] = tuple(kwargs["portfolio"])
    return SolverSettings(**kwargs)


def encode_config(config: PartitionerConfig) -> dict[str, Any]:
    return {
        "search": dataclasses.asdict(config.search),
        "formulation": dataclasses.asdict(config.formulation),
        "solver": _encode_settings(config.solver),
        "validate": config.validate,
    }


def decode_config(payload: dict[str, Any]) -> PartitionerConfig:
    return PartitionerConfig(
        search=RefinementConfig(**payload.get("search", {})),
        formulation=FormulationOptions(**payload.get("formulation", {})),
        solver=_decode_settings(payload.get("solver", {})),
        validate=bool(payload.get("validate", True)),
    )


def encode_request(request: PartitionRequest) -> dict[str, Any]:
    """A :class:`PartitionRequest` as a plain JSON-able dict."""
    return {
        "graph": graph_io.to_dict(request.graph),
        "processor": (
            None
            if request.processor is None
            else encode_processor(request.processor)
        ),
        "config": (
            None if request.config is None else encode_config(request.config)
        ),
    }


def decode_request(payload: dict[str, Any]) -> PartitionRequest:
    return PartitionRequest(
        graph=graph_io.from_dict(payload["graph"]),
        processor=(
            None
            if payload.get("processor") is None
            else decode_processor(payload["processor"])
        ),
        config=(
            None
            if payload.get("config") is None
            else decode_config(payload["config"])
        ),
    )
