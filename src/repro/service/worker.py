"""The worker-process side of the sharded search.

:func:`solve_shard` is the one function a
:class:`concurrent.futures.ProcessPoolExecutor` worker runs: one
partition bound ``N`` of ``Refine_Partitions_Bound``'s outer loop,
evaluated end to end (its full ``Reduce_Latency`` bisection) against a
payload decoded from the wire format of :mod:`repro.service.wire`.

Workers cooperate through three manager proxies:

``bound`` / ``bound_lock``
    The shared best latency ``D_a``.  Read before the shard starts —
    skipping the shard outright when even ``MinLatency(N)`` strictly
    loses to it (the paper's min-latency cut, applied across
    processes) — and written after every feasible result.  It never
    clips the shard's opening window: every shard that runs bisects its
    full ``[MinLatency(N), MaxLatency(N)]`` window, so its result does
    not depend on sibling timing and the merged outcome is
    deterministic.
``cancel``
    Cooperative cancellation.  Checked at shard start and polled between
    bisection trials via :func:`repro.core.reduce_latency.reduce_latency`'s
    ``should_stop`` hook — batch shutdown stops workers at the next
    window boundary instead of killing processes mid-solve.

The shard's ``should_stop`` also re-reads ``bound``: a sibling's better
incumbent retroactively prunes this shard once its whole window
``[MinLatency(N), ...]`` strictly loses to it — pruning saves solver
time but can never change which shard wins.  Everything returned is a
plain
dict (assignment labels, trace rows, telemetry) — no pickled library
objects cross back.
"""

from __future__ import annotations

import math
import time
from typing import Any

from repro.core.partitioner import PartitionerConfig
from repro.core.refine_partitions import (
    evaluate_partition_bound,
    partition_bound_window,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import wire
from repro.solve.executor import SolveExecutor

__all__ = ["solve_shard"]


def _shared_bound(bound, bound_lock) -> float | None:
    """Read the cross-worker incumbent ``D_a`` (``None`` when unset)."""
    if bound is None:
        return None
    with bound_lock:
        value = float(bound.value)
    return value if math.isfinite(value) else None


def _offer_bound(bound, bound_lock, achieved: float) -> None:
    """Lower the shared incumbent to ``achieved`` if it improves it."""
    if bound is None:
        return
    with bound_lock:
        if achieved < float(bound.value):
            bound.value = float(achieved)


def solve_shard(
    payload: dict[str, Any],
    bound=None,
    bound_lock=None,
    cancel=None,
) -> dict[str, Any]:
    """Evaluate one partition bound ``N`` in this process.

    ``payload`` carries the wire-encoded graph, processor and config
    plus ``num_partitions``, ``delta`` and an optional
    ``remaining_time`` (seconds of the batch's budget left when the
    shard was dispatched; re-anchored on this process's clock).

    Returns a plain-dict shard report: feasibility, achieved latency,
    the design as a ``from_labels`` assignment, the iteration trace and
    this worker's telemetry.
    """
    graph = wire.decode_request(
        {"graph": payload["graph"], "processor": None, "config": None}
    ).graph
    processor = wire.decode_processor(payload["processor"])
    config: PartitionerConfig = wire.decode_config(payload["config"])
    num_partitions = int(payload["num_partitions"])
    delta = float(payload["delta"])
    remaining = payload.get("remaining_time")
    deadline = (
        time.perf_counter() + float(remaining)
        if remaining is not None
        else None
    )

    def report(**fields: Any) -> dict[str, Any]:
        base = {
            "num_partitions": num_partitions,
            "feasible": False,
            "achieved": None,
            "assignment": None,
            "degraded": False,
            "skipped": None,
            "trace": None,
            "telemetry": None,
            "metrics": None,
        }
        base.update(fields)
        return base

    if cancel is not None and cancel.is_set():
        return report(skipped="cancelled")

    d_max, d_min = partition_bound_window(graph, processor, num_partitions)
    incumbent = _shared_bound(bound, bound_lock)
    if incumbent is not None and d_min > incumbent:
        # Even the fastest schedule at N partitions strictly loses to a
        # sibling's incumbent: the paper's min-latency cut, applied
        # before this shard spends any solver time.  The comparison is
        # strict — and the incumbent never clips the opening window —
        # so pruning only ever removes shards that provably cannot
        # improve (or tie) the final result: the merged outcome stays
        # deterministic no matter how sibling timing falls.
        return report(skipped="min_latency_cut")

    def should_stop() -> bool:
        if cancel is not None and cancel.is_set():
            return True
        current = _shared_bound(bound, bound_lock)
        return current is not None and d_min > current

    # Metrics never cross the wire as live objects (the registry holds a
    # lock); each worker counts into its own registry and ships the
    # snapshot dict home, where the coordinator merges commutatively.
    registry = MetricsRegistry()  # repro-lint: ignore[RL003]
    executor = SolveExecutor(config.solver, metrics=registry)
    result = evaluate_partition_bound(
        graph,
        processor,
        num_partitions,
        d_max,
        d_min,
        delta,
        options=config.formulation,
        settings=config.solver,
        deadline=deadline,
        executor=executor,
        should_stop=should_stop,
        phase="shard",
    )
    if result.feasible:
        _offer_bound(bound, bound_lock, result.achieved)
    return report(
        feasible=result.feasible,
        achieved=result.achieved,
        assignment=(
            None if result.design is None else result.design.as_assignment()
        ),
        degraded=result.degraded,
        trace=result.trace.to_dict(),
        telemetry=executor.telemetry.to_dict(include_solves=False),
        metrics=registry.snapshot().to_dict(),
    )
