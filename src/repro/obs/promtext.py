"""Prometheus text exposition (format 0.0.4) — render and validate.

:func:`render_promtext` turns a
:class:`repro.obs.metrics.MetricsSnapshot` into the plain-text format
every Prometheus-compatible scraper understands, with no third-party
dependencies: ``# HELP`` / ``# TYPE`` headers, one
``name{label="value"} value`` line per sample, and the conventional
``_bucket``/``_sum``/``_count`` expansion (cumulative ``le`` buckets,
ending at ``+Inf``) for histograms.  Output is deterministic: families
sorted by name, samples by label values.

:func:`validate_promtext` is the inverse check used by
``tools/check_promtext.py`` and the CI ``metrics-smoke`` job: it parses
an exposition body and returns a list of problems (empty when valid),
covering line shape, header presence, histogram completeness
(monotone cumulative buckets, ``+Inf`` terminator, ``_count``
consistency) and this repo's naming conventions (counters end in
``_total``).
"""

from __future__ import annotations

import math
import re

__all__ = ["render_promtext", "validate_promtext", "CONTENT_TYPE"]

#: The Content-Type the scrape endpoint serves.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labelnames, values, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, values)
    ]
    pairs.extend(f'{name}="{_escape_label(str(value))}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_promtext(snapshot) -> str:
    """The snapshot in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name in snapshot.names():
        family = snapshot.family(name)
        kind = family["kind"]
        labelnames = family["labelnames"]
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(family["samples"]):
            sample = family["samples"][key]
            if kind != "histogram":
                labels = _format_labels(labelnames, key)
                lines.append(f"{name}{labels} {_format_value(sample)}")
                continue
            counts, total, count = sample
            cumulative = 0
            bounds = [_format_value(b) for b in family["buckets"]] + ["+Inf"]
            for bound, c in zip(bounds, counts):
                cumulative += c
                labels = _format_labels(labelnames, key, [("le", bound)])
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _format_labels(labelnames, key)
            lines.append(f"{name}_sum{labels} {_format_value(total)}")
            lines.append(f"{name}_count{labels} {count}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(raw: str) -> float | None:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def validate_promtext(text: str, require=()) -> list[str]:
    """Problems with an exposition body; empty means valid.

    ``require`` lists metric family names that must be present with at
    least one sample (the smoke test's "did the instrumented paths
    actually run" check).
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    helps: set[str] = set()
    # family -> labelset-without-le -> {le: cumulative}
    histograms: dict[str, dict[tuple, dict[float, float]]] = {}
    hist_counts: dict[str, dict[tuple, float]] = {}
    seen_families: set[str] = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed HELP line")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            if parts[2] in types:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {parts[2]}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comments are legal
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = _LABEL_RE.sub("", raw_labels).replace(",", "").strip()
            if consumed:
                problems.append(
                    f"line {lineno}: malformed label block {{{raw_labels}}}"
                )
                continue
            for m in _LABEL_RE.finditer(raw_labels):
                labels[m.group("name")] = m.group("value")

        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and types.get(stem) == "histogram":
                base = stem
                break
        seen_families.add(base)
        if base not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE line"
            )
            continue
        if types[base] == "counter":
            if not base.endswith("_total"):
                problems.append(
                    f"line {lineno}: counter {base!r} should end in _total"
                )
            if value < 0:
                problems.append(f"line {lineno}: negative counter {name!r}")
        if types[base] == "histogram":
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name.endswith("_bucket"):
                le = _parse_value(labels.get("le", ""))
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                    continue
                histograms.setdefault(base, {}).setdefault(key, {})[le] = value
            elif name.endswith("_count"):
                hist_counts.setdefault(base, {})[key] = value

    for name in types:
        if name not in helps:
            problems.append(f"metric {name} has TYPE but no HELP line")

    for name, by_labels in histograms.items():
        for key, buckets in by_labels.items():
            bounds = sorted(buckets)
            if not bounds or not math.isinf(bounds[-1]):
                problems.append(
                    f"histogram {name}{dict(key)} is missing the +Inf bucket"
                )
                continue
            cumulative = [buckets[b] for b in bounds]
            if any(a > b for a, b in zip(cumulative, cumulative[1:])):
                problems.append(
                    f"histogram {name}{dict(key)} buckets are not cumulative"
                )
            count = hist_counts.get(name, {}).get(key)
            if count is None:
                problems.append(f"histogram {name}{dict(key)} has no _count")
            elif count != cumulative[-1]:
                problems.append(
                    f"histogram {name}{dict(key)}: _count {count} != "
                    f"+Inf bucket {cumulative[-1]}"
                )

    for name in require:
        if name not in seen_families:
            problems.append(f"required metric {name} is missing")
    return problems
