"""A tiny scrape endpoint: stdlib HTTP server for metrics snapshots.

:class:`MetricsServer` runs a :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves whatever a snapshot provider returns at
scrape time:

* ``GET /metrics`` — Prometheus text exposition
  (:mod:`repro.obs.promtext`), the path monitoring systems scrape;
* ``GET /metrics.json`` — the same snapshot as
  :meth:`repro.obs.metrics.MetricsSnapshot.to_dict` JSON, consumable by
  ``repro-tp metrics report``;
* ``GET /healthz`` — ``ok``, for liveness probes.

The provider is either a :class:`repro.obs.metrics.MetricsRegistry`
(snapshotted per scrape) or a zero-argument callable returning a
:class:`MetricsSnapshot`.  Used by ``repro-tp serve --metrics-port``;
request logging is suppressed so scrapes don't interleave with the
serve loop's stdout/stderr protocol.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsSnapshot
from repro.obs.promtext import CONTENT_TYPE, render_promtext

__all__ = ["MetricsServer"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-tp-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_promtext(self._snapshot()).encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = json.dumps(self._snapshot().to_dict()).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _snapshot(self) -> MetricsSnapshot:
        return self.server.snapshot_provider()

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # scrapes must not pollute the serve loop's streams


class MetricsServer:
    """Serves metric snapshots over HTTP from a background daemon thread.

    Parameters
    ----------
    provider:
        A ``MetricsRegistry`` (``snapshot()`` is called per scrape) or a
        zero-argument callable returning a ``MetricsSnapshot``.
    port:
        TCP port to bind; ``0`` picks a free one (see :attr:`port`).
    host:
        Bind address; loopback by default — metrics are not secrets,
        but they are nobody else's business either.
    """

    def __init__(self, provider, port: int = 0, host: str = "127.0.0.1") -> None:
        if callable(provider):
            snapshot_provider = provider
        else:
            snapshot_provider = provider.snapshot
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.snapshot_provider = snapshot_provider
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
