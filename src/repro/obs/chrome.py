"""Chrome trace-event-format export.

Converts the event stream of :mod:`repro.obs.tracer` into the JSON
object format understood by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: spans become complete (``"X"``)
events with microsecond timestamps, instantaneous events become
``"i"`` events, and per-thread metadata rows name the lanes after the
originating Python threads.  :func:`validate_chrome_trace` checks a
payload against the format's structural rules — used by the CI smoke
job (``tools/check_chrome_trace.py``) and the observability tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_to_chrome",
    "validate_chrome_trace",
]

#: Synthetic process id for the whole run (single-process system).
_PID = 1


def chrome_trace(events: Iterable[dict]) -> dict:
    """Build a trace-event-format payload from tracer events.

    ``span_end`` records map to complete events (one per span, with the
    span's attributes as ``args``); ``event`` records map to
    thread-scoped instant events.  ``span_start`` records are skipped —
    the complete event already carries both endpoints.
    """
    trace_events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
        return tids[thread]

    for event in events:
        kind = event.get("type")
        thread = str(event.get("thread", "main"))
        if kind == "span_end":
            args = dict(event.get("attrs", {}))
            args["span_id"] = event.get("span_id")
            if event.get("parent_id") is not None:
                args["parent_id"] = event["parent_id"]
            if event.get("process_dur") is not None:
                args["process_time_s"] = event["process_dur"]
            if event.get("status") and event["status"] != "ok":
                args["status"] = event["status"]
            trace_events.append(
                {
                    "name": str(event.get("name", "?")),
                    "ph": "X",
                    "ts": float(event.get("t_start", 0.0)) * 1e6,
                    "dur": max(float(event.get("dur", 0.0)), 0.0) * 1e6,
                    "pid": _PID,
                    "tid": tid_for(thread),
                    "cat": "span",
                    "args": args,
                }
            )
        elif kind == "event":
            args = dict(event.get("attrs", {}))
            if event.get("span_id") is not None:
                args["span_id"] = event["span_id"]
            trace_events.append(
                {
                    "name": str(event.get("name", "?")),
                    "ph": "i",
                    "ts": float(event.get("ts", 0.0)) * 1e6,
                    "pid": _PID,
                    "tid": tid_for(thread),
                    "cat": "event",
                    "s": "t",
                    "args": args,
                }
            )

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro solve pipeline"},
        }
    ]
    for thread, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, events: Iterable[dict]) -> Path:
    """Serialize :func:`chrome_trace` of ``events`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events), default=str, indent=1))
    return path


def jsonl_to_chrome(jsonl_path: str | Path, out_path: str | Path) -> Path:
    """Convert a JSONL event file to a Chrome trace file."""
    from repro.obs.profile import load_events

    return write_chrome_trace(out_path, load_events(jsonl_path))


def validate_chrome_trace(payload) -> list[str]:
    """Structural validation of a trace-event-format payload.

    Returns a list of problems (empty when the payload is well-formed):
    the JSON-object envelope, the per-event required keys, the phase
    codes this exporter produces, non-negative microsecond timestamps
    and durations, and consistent pid/tid typing.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    known_phases = {"X", "i", "I", "M", "B", "E", "b", "e", "n", "C"}
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in known_phases:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing or empty name")
        if "pid" not in event:
            problems.append(f"{where}: missing pid")
        if phase == "M":
            continue  # metadata rows need no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if "tid" not in event:
            problems.append(f"{where}: missing tid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if phase in ("i", "I") and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope {event.get('s')!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
    return problems
