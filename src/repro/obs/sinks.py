"""Event sinks: where a :class:`repro.obs.tracer.Tracer` sends its events.

A sink is anything with ``emit(event: dict)`` and ``close()``
(:class:`EventSink` is the protocol).  Two implementations cover the
common cases:

* :class:`MemorySink` — an in-process list, for tests, the Chrome-trace
  exporter and ad-hoc analysis;
* :class:`JsonlSink` — one JSON object per line, the on-disk
  interchange format consumed by ``repro-tp trace report`` and
  :func:`repro.obs.profile.load_events`.

Both are thread-safe: portfolio worker threads emit concurrently.
Events are plain dicts (schema documented in ``docs/observability.md``);
values that are not JSON-serializable are stringified rather than
raising mid-solve.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable, Protocol, runtime_checkable

__all__ = ["EventSink", "MemorySink", "JsonlSink"]


@runtime_checkable
class EventSink(Protocol):
    """What a tracer needs from a sink."""

    def emit(self, event: dict) -> None:
        """Record one event.  Must be safe to call from any thread."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release resources; further ``emit`` calls are undefined."""
        ...  # pragma: no cover - protocol


class MemorySink:
    """Keeps every event in a list (``sink.events``)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[dict]:
        return iter(list(self.events))


class JsonlSink:
    """Appends events to a file, one JSON object per line.

    Parent directories are created; opening an unwritable path raises
    ``OSError`` immediately (at construction, not mid-run), which the CLI
    converts into a clear error message.

    ``flush_every`` bounds how many events can sit in the buffered file
    handle: the handle is flushed after every N emits (default 20), so a
    worker killed mid-run loses at most the last N-1 events instead of
    the whole buffer.  ``flush_every=1`` flushes on every event;
    ``flush_every=0`` disables periodic flushing (flush only on close).
    """

    def __init__(self, path: str | Path, flush_every: int = 20) -> None:
        if flush_every < 0:
            raise ValueError("flush_every must be >= 0")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_every = flush_every
        self._fh = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self._closed = False
        self._since_flush = 0

    def emit(self, event: dict) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            if not self._closed:
                self._fh.write(line + "\n")
                if self.flush_every:
                    self._since_flush += 1
                    if self._since_flush >= self.flush_every:
                        self._fh.flush()
                        self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.flush()
                self._fh.close()
