"""Observability: structured tracing and profiling of the solve pipeline.

The search procedures, the :class:`repro.solve.executor.SolveExecutor`,
the backend portfolio and the ILP backends are instrumented with spans
and events through this package.  :class:`repro.solve.telemetry
.RunTelemetry` remains the cheap always-on aggregate; tracing is the
opt-in, high-resolution view:

* :mod:`repro.obs.tracer` — :class:`Tracer` / :class:`Span` context
  managers (ids, parent links, wall + process time, attributes,
  thread-safe) and the zero-overhead :data:`NULL_TRACER`;
* :mod:`repro.obs.sinks` — the :class:`EventSink` protocol with
  :class:`MemorySink` and :class:`JsonlSink`;
* :mod:`repro.obs.chrome` — Chrome trace-event-format export
  (``chrome://tracing`` / Perfetto) and its validator;
* :mod:`repro.obs.profile` — span trees and per-phase
  inclusive/exclusive time profiles;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  mergeable :class:`MetricsSnapshot`s and the zero-overhead
  :data:`NULL_METRICS`;
* :mod:`repro.obs.promtext` — Prometheus text exposition rendering and
  validation (no third-party deps);
* :mod:`repro.obs.server` — the ``/metrics`` scrape endpoint behind
  ``repro-tp serve --metrics-port``.

Enable from the API by putting a tracer on the solver settings::

    from repro import SolverSettings, TemporalPartitioner
    from repro.obs import JsonlSink, Tracer

    tracer = Tracer(JsonlSink("run.jsonl"))
    settings = SolverSettings(tracer=tracer)
    ...
    tracer.close()

or from the CLI with ``repro-tp partition ... --trace-jsonl run.jsonl
--trace-chrome run.trace.json``; inspect with ``repro-tp trace report
run.jsonl``.  See ``docs/observability.md``.
"""

from repro.obs.chrome import (
    chrome_trace,
    jsonl_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    as_metrics,
)
from repro.obs.profile import (
    PhaseProfile,
    PhaseStat,
    SpanNode,
    build_span_tree,
    load_events,
    render_span_tree,
)
from repro.obs.promtext import render_promtext, validate_promtext
from repro.obs.server import MetricsServer
from repro.obs.sinks import EventSink, JsonlSink, MemorySink
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, as_tracer

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsServer",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "PhaseProfile",
    "PhaseStat",
    "Span",
    "SpanNode",
    "Tracer",
    "as_metrics",
    "as_tracer",
    "build_span_tree",
    "chrome_trace",
    "jsonl_to_chrome",
    "load_events",
    "render_promtext",
    "render_span_tree",
    "validate_chrome_trace",
    "validate_promtext",
    "write_chrome_trace",
]
