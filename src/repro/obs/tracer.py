"""Span-based tracing: where the solve pipeline's wall time actually goes.

A :class:`Tracer` produces :class:`Span` context managers — named, timed,
attributed, and linked into a tree by ``span_id``/``parent_id`` — and
forwards structured events to pluggable sinks
(:mod:`repro.obs.sinks`).  The search drivers, the
:class:`repro.solve.executor.SolveExecutor`, the backend portfolio and
the ILP backends all open spans through the tracer they find on
:class:`repro.core.reduce_latency.SolverSettings`; with no tracer
configured they talk to the :data:`NULL_TRACER`, whose spans are a
single shared immutable object so the instrumented hot paths cost a few
attribute lookups and nothing else.

Threading model
---------------
Implicit span nesting uses a *thread-local* stack: a span opened while
another is active on the same thread becomes its child automatically.
Cross-thread parentage — the portfolio's worker threads recording their
backend attempts under the window solve that spawned them — is explicit:
pass ``parent=`` (a :class:`Span` or a span id) to :meth:`Tracer.span`.
Span ids are allocated from one atomic counter, and sinks receive events
from all threads (each sink locks its own write path), so concurrent
spans never collide.

All timestamps are seconds relative to the tracer's creation
(``time.perf_counter`` based); ``wall_epoch`` records the corresponding
``time.time`` so traces can be correlated with external logs.
"""

from __future__ import annotations

import itertools
import threading
import time

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]


class Span:
    """One timed operation in the trace tree.

    Use as a context manager (spans produced by :meth:`Tracer.span`):
    entering stamps the clocks and pushes the span on the thread's
    stack, exiting pops it and emits a ``span_end`` event carrying the
    final attributes, wall duration and process-time duration.  An
    exception propagating through the span marks it ``status="error"``
    (and is re-raised).
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "t_start",
        "duration",
        "process_duration",
        "thread_name",
        "_tracer",
        "_start_process",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.t_start = 0.0
        self.duration = 0.0
        self.process_duration = 0.0
        self.thread_name = ""
        self._start_process = 0.0

    # -- annotation ---------------------------------------------------------

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one key/value attribute."""
        self.attrs[key] = value

    def annotate(self, **attrs) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit an instantaneous event anchored to this span."""
        self._tracer._emit_event(name, self.span_id, attrs)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if self.parent_id is None:
            current = tracer.current_span()
            if current is not None:
                self.parent_id = current.span_id
        self.thread_name = threading.current_thread().name
        tracer._push(self)
        self.t_start = tracer._now()
        self._start_process = time.process_time()
        tracer._emit(
            {
                "type": "span_start",
                "ts": self.t_start,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "thread": self.thread_name,
                "attrs": dict(self.attrs),
            }
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._now()
        self.duration = end - self.t_start
        self.process_duration = time.process_time() - self._start_process
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        tracer._pop(self)
        tracer._emit(
            {
                "type": "span_end",
                "ts": end,
                "t_start": self.t_start,
                "dur": self.duration,
                "process_dur": self.process_duration,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "thread": self.thread_name,
                "status": self.status,
                "attrs": dict(self.attrs),
            }
        )
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, attrs={self.attrs})"
        )


class Tracer:
    """Produces spans and events; fans them out to the configured sinks.

    Parameters
    ----------
    *sinks:
        Objects satisfying the :class:`repro.obs.sinks.EventSink`
        protocol.  More can be attached later with :meth:`add_sink`.
    """

    #: Instrumented code may branch on this to skip expensive attribute
    #: computation; the spans themselves are cheap either way.
    enabled = True

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._t0 = time.perf_counter()
        #: ``time.time()`` at tracer creation; ``ts`` values are relative
        #: seconds on top of this epoch.
        self.wall_epoch = time.time()

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    # -- span / event production --------------------------------------------

    def span(self, name: str, parent: "Span | int | None" = None, **attrs) -> Span:
        """A new span (enter it with ``with``).

        ``parent`` overrides the implicit thread-local nesting — pass the
        spawning span (or its id) when the span will be entered on a
        different thread.
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        return Span(self, name, next(self._ids), parent_id, attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit an instantaneous event anchored to the current span."""
        current = self.current_span()
        self._emit_event(
            name, current.span_id if current is not None else None, attrs
        )

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return None

    def close(self) -> None:
        """Close every sink (flushes file-backed sinks)."""
        for sink in self.sinks:
            sink.close()

    # -- internals ----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    def _emit_event(self, name: str, span_id: int | None, attrs: dict) -> None:
        self._emit(
            {
                "type": "event",
                "ts": self._now(),
                "span_id": span_id,
                "name": name,
                "thread": threading.current_thread().name,
                "attrs": dict(attrs),
            }
        )

    def _emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)


class _NullSpan:
    """Shared no-op span: every method is a constant-time no-op."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: hands out one shared no-op span.

    The instrumented layers call this unconditionally when no tracer is
    configured, so its methods must be (and are) allocation-free.
    """

    enabled = False
    sinks: tuple = ()

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def current_span(self) -> None:
        return None

    def add_sink(self, sink) -> None:  # pragma: no cover - misuse guard
        raise ValueError(
            "NULL_TRACER discards everything; construct a Tracer(sink) "
            "to record events"
        )

    def close(self) -> None:
        pass


#: Module-wide no-op tracer used whenever tracing is off.
NULL_TRACER = NullTracer()


def as_tracer(tracer) -> "Tracer | NullTracer":
    """Normalize an optional tracer: ``None`` becomes :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER
