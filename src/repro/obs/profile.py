"""Self-time profiles and span trees from recorded trace events.

Consumes the event stream produced by :mod:`repro.obs.tracer` (live
from a :class:`repro.obs.sinks.MemorySink` or loaded from a JSONL file)
and answers the operator's question — *where did the time go?* — two
ways:

* :class:`PhaseProfile` — per-phase (span name) aggregates: call count,
  inclusive wall time, **exclusive** wall time (inclusive minus the
  inclusive time of direct children), process time and p50/p95/p99
  per-span duration percentiles, rendered as a top-N table by
  :meth:`PhaseProfile.report`;
* :func:`render_span_tree` — the parent/child tree with durations and
  key attributes, the textual analogue of a flame graph.

Exclusive times are additive: summed over all phases they equal the
total inclusive time of the root spans, so the table's percentages
genuinely partition the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import ceil
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "SpanNode",
    "PhaseStat",
    "PhaseProfile",
    "load_events",
    "build_span_tree",
    "render_span_tree",
]


def load_events(path: str | Path) -> list[dict]:
    """Read a JSONL event file written by :class:`repro.obs.sinks.JsonlSink`.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the offending line number.
    """
    events: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
    return events


@dataclass
class SpanNode:
    """One completed span plus its children, reconstructed from events."""

    span_id: int
    name: str
    t_start: float
    duration: float
    process_duration: float
    thread: str
    status: str
    attrs: dict
    parent_id: int | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def exclusive(self) -> float:
        """Wall time not accounted for by direct children."""
        return max(
            self.duration - sum(c.duration for c in self.children), 0.0
        )


def build_span_tree(events: Iterable[dict]) -> list[SpanNode]:
    """Root spans (with children attached) from ``span_end`` events.

    Spans whose parent never completed (or was never recorded) become
    roots themselves, so partial traces still profile.  Children are
    ordered by start time.
    """
    nodes: dict[int, SpanNode] = {}
    for event in events:
        if event.get("type") != "span_end":
            continue
        node = SpanNode(
            span_id=int(event["span_id"]),
            name=str(event.get("name", "?")),
            t_start=float(event.get("t_start", 0.0)),
            duration=float(event.get("dur", 0.0)),
            process_duration=float(event.get("process_dur", 0.0)),
            thread=str(event.get("thread", "")),
            status=str(event.get("status", "ok")),
            attrs=dict(event.get("attrs", {})),
            parent_id=event.get("parent_id"),
        )
        nodes[node.span_id] = node
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.t_start)
    roots.sort(key=lambda n: n.t_start)
    return roots


@dataclass
class PhaseStat:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0
    process: float = 0.0
    max_duration: float = 0.0
    durations: list[float] = field(default_factory=list)

    @property
    def mean_inclusive(self) -> float:
        return self.inclusive / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the per-span inclusive durations
        (``q`` in [0, 1]); the exact analogue of the bucketed quantiles
        the metrics histograms expose."""
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        rank = max(0, min(len(ordered) - 1, ceil(q * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


class PhaseProfile:
    """Per-phase timing rollup of one trace."""

    def __init__(self, roots: Sequence[SpanNode]) -> None:
        self.roots = list(roots)
        self.phases: dict[str, PhaseStat] = {}
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            stat = self.phases.setdefault(node.name, PhaseStat(node.name))
            stat.count += 1
            stat.inclusive += node.duration
            stat.exclusive += node.exclusive
            stat.process += node.process_duration
            stat.max_duration = max(stat.max_duration, node.duration)
            stat.durations.append(node.duration)
            stack.extend(node.children)

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "PhaseProfile":
        return cls(build_span_tree(events))

    @property
    def total_time(self) -> float:
        """Inclusive wall time of the root spans (== sum of exclusives)."""
        return sum(root.duration for root in self.roots)

    def inclusive(self, name: str) -> float:
        stat = self.phases.get(name)
        return stat.inclusive if stat is not None else 0.0

    def exclusive(self, name: str) -> float:
        stat = self.phases.get(name)
        return stat.exclusive if stat is not None else 0.0

    def top(self, n: int | None = None) -> list[PhaseStat]:
        """Phases ordered by exclusive (self) time, largest first."""
        ordered = sorted(
            self.phases.values(), key=lambda s: s.exclusive, reverse=True
        )
        return ordered if n is None else ordered[:n]

    def report(self, top: int | None = 15) -> str:
        """The phase table: count, inclusive/exclusive seconds, self %."""
        if not self.phases:
            return "(empty trace: no completed spans)"
        total = self.total_time or 1e-12
        header = (
            f"{'phase':<28}{'count':>7}{'incl (s)':>12}"
            f"{'excl (s)':>12}{'excl %':>8}{'avg (ms)':>11}"
            f"{'p50 (ms)':>11}{'p95 (ms)':>11}{'p99 (ms)':>11}"
        )
        lines = [header, "-" * len(header)]
        shown = self.top(top)
        for stat in shown:
            lines.append(
                f"{stat.name:<28}{stat.count:>7}"
                f"{stat.inclusive:>12.4f}{stat.exclusive:>12.4f}"
                f"{100.0 * stat.exclusive / total:>7.1f}%"
                f"{1e3 * stat.mean_inclusive:>11.2f}"
                f"{1e3 * stat.p50:>11.2f}"
                f"{1e3 * stat.p95:>11.2f}"
                f"{1e3 * stat.p99:>11.2f}"
            )
        hidden = len(self.phases) - len(shown)
        if hidden > 0:
            rest = sum(s.exclusive for s in self.top(None)[len(shown):])
            lines.append(
                f"{f'... {hidden} more phases':<28}{'':>7}{'':>12}"
                f"{rest:>12.4f}{100.0 * rest / total:>7.1f}%{'':>11}"
            )
        lines.append(
            f"total root wall time: {self.total_time:.4f}s "
            f"across {len(self.roots)} root span(s)"
        )
        return "\n".join(lines)


#: Attributes worth showing inline in the span tree, in display order.
_TREE_ATTRS = (
    "num_partitions",
    "iteration",
    "backend",
    "status",
    "policy",
    "rule",
    "d_min",
    "d_max",
)


def _attr_suffix(attrs: dict) -> str:
    parts = []
    for key in _TREE_ATTRS:
        if key in attrs:
            value = attrs[key]
            if isinstance(value, float):
                value = f"{value:g}"
            parts.append(f"{key}={value}")
    return f"  [{', '.join(parts)}]" if parts else ""


def render_span_tree(
    events: Iterable[dict], max_depth: int | None = None
) -> str:
    """ASCII tree of the trace's spans with durations and key attributes."""
    roots = build_span_tree(events)
    if not roots:
        return "(empty trace: no completed spans)"
    lines: list[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        marker = "!" if node.status != "ok" else ""
        lines.append(
            f"{'  ' * depth}{node.name}{marker}  "
            f"{1e3 * node.duration:.2f} ms{_attr_suffix(node.attrs)}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            if node.children:
                lines.append(
                    f"{'  ' * (depth + 1)}... {len(node.children)} child "
                    "span(s) collapsed"
                )
            return
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
