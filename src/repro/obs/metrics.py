"""Metrics: labeled counters, gauges and histograms with mergeable snapshots.

Where :mod:`repro.obs.tracer` answers "what happened during *this* run",
the metrics layer answers "what has happened *so far*": a
:class:`MetricsRegistry` hands out :class:`Counter` / :class:`Gauge` /
:class:`Histogram` families whose children are addressed by label
values, and a :class:`MetricsSnapshot` freezes the registry state into a
JSON-safe, order-independent value that merges commutatively — the
contract shard workers rely on when they ship their snapshots back to
the parent process alongside ``RunTelemetry``.

The instrumented layers (:class:`repro.solve.executor.SolveExecutor`,
the backend portfolio, both cache tiers and
:class:`repro.service.facade.PartitionService`) find their registry on
:class:`repro.core.reduce_latency.SolverSettings` exactly like the
tracer; with none configured they talk to :data:`NULL_METRICS`, whose
families are a single shared no-op object, so the hot paths cost a few
attribute lookups and nothing else.

Label conventions
-----------------
* Counter names end in ``_total``; histogram names describing durations
  end in ``_seconds``.
* Label values are low-cardinality enumerations (backend names, cache
  tiers, verdict statuses) — never fingerprints, paths or request ids.
* Gauges merge *additively* across snapshots: they are used for
  liveness-style quantities ("requests in flight") where summing
  per-process values is the correct aggregate.

Everything is thread-safe: one registry lock guards family creation and
every sample update, matching the portfolio's worker-thread model.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
    "NULL_METRICS",
    "as_metrics",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Fixed bucket upper bounds (seconds) shared by every duration
#: histogram in the pipeline — and by the percentile columns of
#: ``PhaseProfile.report``.  Spanning 1 ms to 1 min covers everything
#: from a cached window lookup to a full DCT bisection.
DEFAULT_SECONDS_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_SNAPSHOT_SCHEMA_VERSION = 1


def _canon_labels(labelnames, args, kwargs) -> tuple[str, ...]:
    """Resolve positional/keyword label values to the family's order."""
    if kwargs:
        if args:
            raise ValueError(
                "pass label values positionally or by name, not both"
            )
        if set(kwargs) != set(labelnames):
            raise ValueError(
                f"expected labels {labelnames}, got {tuple(sorted(kwargs))}"
            )
        return tuple(str(kwargs[name]) for name in labelnames)
    values = tuple(str(v) for v in args)
    if len(values) != len(labelnames):
        raise ValueError(
            f"expected {len(labelnames)} label value(s) "
            f"for {labelnames}, got {len(values)}"
        )
    return values


class _CounterChild:
    """One labeled counter sample: a monotonically increasing float."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class _GaugeChild:
    """One labeled gauge sample: a float that moves both ways."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class _HistogramChild:
    """One labeled histogram sample: fixed buckets + sum + count."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: tuple) -> None:
        self._lock = lock
        self.bounds = bounds
        # one slot per finite bound, plus the implicit +Inf overflow slot
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


class _Family:
    """Common machinery: children addressed by label-value tuples."""

    kind = ""

    def __init__(self, name: str, help: str, labelnames, lock) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(str(n) for n in labelnames)
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def labels(self, *args, **kwargs):
        """The child for these label values (created on first use)."""
        key = _canon_labels(self.labelnames, args, kwargs)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled by {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """A family of monotonically increasing counters."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)


class Gauge(_Family):
    """A family of gauges (settable, inc/dec)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)


class Histogram(_Family):
    """A family of fixed-bucket histograms."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        super().__init__(name, help, labelnames, lock)
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.bounds)

    def observe(self, value: float) -> None:
        self._default().observe(value)


class MetricsRegistry:
    """Creates and owns metric families; snapshots and absorbs state.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family, and asking with a
    conflicting kind, label set or bucket layout raises ``ValueError``
    (silent divergence would corrupt merges).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Family] = {}

    # -- family creation ----------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        buckets=DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                family = Histogram(name, help, labelnames, self._lock, buckets)
                self._metrics[name] = family
                return family
        self._check(existing, "histogram", labelnames)
        if existing.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"metric {name!r} re-registered with different buckets"
            )
        return existing

    def _get_or_create(self, cls, name, help, labelnames):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                family = cls(name, help, labelnames, self._lock)
                self._metrics[name] = family
                return family
        self._check(existing, cls.kind, labelnames)
        return existing

    @staticmethod
    def _check(existing, kind, labelnames) -> None:
        if existing.kind != kind:
            raise ValueError(
                f"metric {existing.name!r} already registered as "
                f"{existing.kind}, not {kind}"
            )
        if existing.labelnames != tuple(str(n) for n in labelnames):
            raise ValueError(
                f"metric {existing.name!r} re-registered with different "
                f"labels: {existing.labelnames} vs {tuple(labelnames)}"
            )

    # -- snapshot / absorb --------------------------------------------------

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable, mergeable copy of every sample."""
        families = {}
        with self._lock:
            for name, family in self._metrics.items():
                samples = {}
                for key, child in family._children.items():
                    if family.kind == "histogram":
                        samples[key] = (
                            tuple(child.bucket_counts),
                            child.sum,
                            child.count,
                        )
                    else:
                        samples[key] = child.value
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "buckets": getattr(family, "bounds", None),
                    "samples": samples,
                }
        return MetricsSnapshot(families)

    def absorb(self, snapshot: "MetricsSnapshot") -> None:
        """Fold a snapshot's samples into this registry (adds values).

        This is the cross-process aggregation path: the parent's
        long-lived registry absorbs each shard worker's snapshot, so a
        scrape of the parent sees the whole fleet.
        """
        for name, family in snapshot._families.items():
            kind = family["kind"]
            if kind == "histogram":
                target = self.histogram(
                    name,
                    family["help"],
                    family["labelnames"],
                    buckets=family["buckets"],
                )
                for key, (counts, total, count) in family["samples"].items():
                    child = target.labels(*key)
                    with self._lock:
                        for i, c in enumerate(counts):
                            child.bucket_counts[i] += c
                        child.sum += total
                        child.count += count
                continue
            maker = self.counter if kind == "counter" else self.gauge
            target = maker(name, family["help"], family["labelnames"])
            for key, value in family["samples"].items():
                child = target.labels(*key)
                with self._lock:
                    child.value += value


class MetricsSnapshot:
    """A frozen, order-independent view of a registry's samples.

    Internally ``{name: {kind, help, labelnames, buckets, samples}}``
    where ``samples`` maps label-value tuples to a float (counter/gauge)
    or a ``(bucket_counts, sum, count)`` triple (histogram).  Dict
    comparison ignores insertion order, so equality — and therefore the
    merge-commutativity property the shard merger relies on — is
    structural.
    """

    __slots__ = ("_families",)

    def __init__(self, families: dict) -> None:
        self._families = families

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls({})

    # -- protocol -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self._families == other._families

    def __bool__(self) -> bool:
        return bool(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsSnapshot({sorted(self._families)})"

    # -- accessors ----------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._families)

    def family(self, name: str) -> dict | None:
        return self._families.get(name)

    def value(self, name: str, *label_values) -> float:
        """One counter/gauge sample (0.0 when absent)."""
        family = self._families.get(name)
        if family is None or family["kind"] == "histogram":
            return 0.0
        key = tuple(str(v) for v in label_values)
        return float(family["samples"].get(key, 0.0))

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across every label set."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        if family["kind"] == "histogram":
            return float(
                sum(count for _, _, count in family["samples"].values())
            )
        return float(sum(family["samples"].values()))

    def histogram_stats(self, name: str, *label_values) -> tuple[int, float]:
        """``(count, sum)`` for one histogram sample (0 when absent)."""
        family = self._families.get(name)
        if family is None or family["kind"] != "histogram":
            return (0, 0.0)
        key = tuple(str(v) for v in label_values)
        sample = family["samples"].get(key)
        if sample is None:
            return (0, 0.0)
        counts, total, count = sample
        return (int(count), float(total))

    def quantile(self, name: str, q: float, *label_values) -> float | None:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); ``None`` when there is no data.
        The last finite bound is returned for observations in the
        overflow bucket."""
        family = self._families.get(name)
        if family is None or family["kind"] != "histogram":
            return None
        key = tuple(str(v) for v in label_values)
        sample = family["samples"].get(key)
        if sample is None:
            return None
        counts, _, count = sample
        if count <= 0:
            return None
        bounds = family["buckets"]
        rank = q * count
        cumulative = 0
        for index, c in enumerate(counts):
            cumulative += c
            if cumulative >= rank and c:
                return float(bounds[min(index, len(bounds) - 1)])
        return float(bounds[-1])

    # -- merge --------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot with both operands' samples added together.

        Commutative and associative: counters, gauges and histogram
        buckets all sum, and metadata conflicts (kind / labels /
        buckets) raise instead of being resolved by operand order.
        """
        merged: dict = {}
        for name in set(self._families) | set(other._families):
            a = self._families.get(name)
            b = other._families.get(name)
            if a is None or b is None:
                src = a if b is None else b
                merged[name] = {
                    "kind": src["kind"],
                    "help": src["help"],
                    "labelnames": src["labelnames"],
                    "buckets": src["buckets"],
                    "samples": dict(src["samples"]),
                }
                continue
            for field in ("kind", "labelnames", "buckets"):
                if a[field] != b[field]:
                    raise ValueError(
                        f"cannot merge metric {name!r}: "
                        f"{field} differs ({a[field]!r} vs {b[field]!r})"
                    )
            samples = dict(a["samples"])
            for key, value in b["samples"].items():
                if key not in samples:
                    samples[key] = value
                elif a["kind"] == "histogram":
                    counts, total, count = samples[key]
                    b_counts, b_total, b_count = value
                    samples[key] = (
                        tuple(x + y for x, y in zip(counts, b_counts)),
                        total + b_total,
                        count + b_count,
                    )
                else:
                    samples[key] = samples[key] + value
            merged[name] = {
                "kind": a["kind"],
                # max() keeps the non-empty help and stays commutative
                "help": max(a["help"], b["help"]),
                "labelnames": a["labelnames"],
                "buckets": a["buckets"],
                "samples": samples,
            }
        return MetricsSnapshot(merged)

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form, deterministically ordered."""
        metrics = []
        for name in sorted(self._families):
            family = self._families[name]
            entry: dict = {
                "name": name,
                "kind": family["kind"],
                "help": family["help"],
                "labelnames": list(family["labelnames"]),
            }
            if family["kind"] == "histogram":
                entry["buckets"] = list(family["buckets"])
            samples = []
            for key in sorted(family["samples"]):
                sample: dict = {"labels": list(key)}
                if family["kind"] == "histogram":
                    counts, total, count = family["samples"][key]
                    sample["bucket_counts"] = list(counts)
                    sample["sum"] = total
                    sample["count"] = count
                else:
                    sample["value"] = family["samples"][key]
                samples.append(sample)
            entry["samples"] = samples
            metrics.append(entry)
        return {
            "schema_version": _SNAPSHOT_SCHEMA_VERSION,
            "metrics": metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        version = payload.get("schema_version", _SNAPSHOT_SCHEMA_VERSION)
        if version != _SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported metrics snapshot schema_version: {version!r}"
            )
        families: dict = {}
        for entry in payload.get("metrics", ()):
            kind = entry["kind"]
            samples: dict = {}
            for sample in entry.get("samples", ()):
                key = tuple(str(v) for v in sample["labels"])
                if kind == "histogram":
                    samples[key] = (
                        tuple(int(c) for c in sample["bucket_counts"]),
                        float(sample["sum"]),
                        int(sample["count"]),
                    )
                else:
                    samples[key] = float(sample["value"])
            families[entry["name"]] = {
                "kind": kind,
                "help": entry.get("help", ""),
                "labelnames": tuple(entry.get("labelnames", ())),
                "buckets": (
                    tuple(float(b) for b in entry["buckets"])
                    if kind == "histogram"
                    else None
                ),
                "samples": samples,
            }
        return cls(families)


class _NullMetric:
    """Shared no-op family/child: every method is a constant-time no-op."""

    __slots__ = ()

    def labels(self, *args, **kwargs) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """Metrics disabled: hands out one shared no-op family.

    The instrumented layers call this unconditionally when no registry
    is configured, so its methods must be (and are) allocation-free.
    """

    enabled = False

    def counter(self, name, help="", labelnames=()) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name, help="", labelnames=()) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=()) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot.empty()

    def absorb(self, snapshot) -> None:  # pragma: no cover - misuse guard
        raise ValueError(
            "NULL_METRICS discards everything; construct a "
            "MetricsRegistry() to aggregate snapshots"
        )


#: Module-wide no-op registry used whenever metrics are off.
NULL_METRICS = NullMetrics()


def as_metrics(metrics) -> "MetricsRegistry | NullMetrics":
    """Normalize an optional registry: ``None`` becomes :data:`NULL_METRICS`."""
    return metrics if metrics is not None else NULL_METRICS
