"""Paper-conformance checks: does a model carry the rows it must?

The structural pass of :mod:`repro.analysis.structure` knows nothing
about the paper; this pass does.  Given the compiled form *and* the task
graph / options / partition bound it was built from, it certifies that
the formulation of Section 3.2.3 is complete:

* every task carries exactly one uniqueness row (equation (1)),
* every crossing variable ``w[p,src,dst]`` carries a well-formed
  linearization row (equations (4)-(5)), including the two-sided rows
  when :attr:`repro.core.formulation.FormulationOptions.two_sided_w`
  is set,
* every partition carries a resource row (equation (6)),
* ``eta`` exists, is bounded by the partition count, and every sink
  contributes an ``eta`` bound row (equation (8)),
* the latency window is two-sided as requested: ``latency_ub`` always
  (equation (9)), ``latency_lb`` whenever the window's lower edge is
  positive (equation (10)), and both rows reference every ``d[p]`` and
  ``eta``,
* when :attr:`~repro.core.formulation.FormulationOptions.symmetry_breaking`
  is set, every consecutive pair of an interchangeable group carries a
  ``sym[a,b]`` ordering row referencing both tasks' ``Y`` columns (an
  extension over the paper, tagged ``ext``).

A missing row is reported as an ERROR with the paper-equation tag of the
family it belongs to, so a corrupted or hand-edited model names the
equation that was lost.

The checks are *derived from the scenario registry*
(:mod:`repro.core.families`): each registered
:class:`~repro.core.families.ConstraintFamily` names the checker that
certifies it (``family.conformance``) and supplies the equation tags the
checker reports (``family.paper_eq``), so a new scenario gets
conformance coverage by declaring its families — there is no parallel
hand-written check list to keep in sync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.ilp.compile import CompiledModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.formulation import FormulationOptions
    from repro.taskgraph.graph import TaskGraph

__all__ = ["CHECKERS", "check_conformance"]


def _row_support(compiled: CompiledModel, block: str, row: int) -> set[int]:
    if block == "ub":
        indptr, indices = compiled.ub_indptr, compiled.ub_indices
    else:
        indptr, indices = compiled.eq_indptr, compiled.eq_indices
    lo, hi = int(indptr[row]), int(indptr[row + 1])
    return set(int(j) for j in indices[lo:hi])


def check_conformance(
    compiled: CompiledModel,
    graph: "TaskGraph",
    num_partitions: int,
    options: "FormulationOptions | None" = None,
    d_min: float = 0.0,
) -> list[Diagnostic]:
    """Check that the scenario's constraint families are all present.

    The scenario is taken from ``options.scenario`` (``paper_oneshot``
    when ``options`` is ``None``); every registered family that names a
    checker is dispatched with its own equation tags.
    """
    # Imported lazily: the registry lives above the analysis layer.
    from repro.core.families import get_scenario

    scenario = get_scenario(
        getattr(options, "scenario", None) or "paper_oneshot"
    )
    ub_rows: dict[str, list[int]] = {}
    for i, name in enumerate(compiled.ub_names):
        if name is not None:
            ub_rows.setdefault(name, []).append(i)
    eq_rows: dict[str, list[int]] = {}
    for i, name in enumerate(compiled.eq_names):
        if name is not None:
            eq_rows.setdefault(name, []).append(i)
    var_index = compiled.var_index

    diags: list[Diagnostic] = []
    for family in scenario.families:
        checker = CHECKERS.get(family.conformance)
        if checker is None:
            continue
        diags.extend(
            checker(
                compiled,
                graph,
                num_partitions,
                options,
                d_min,
                ub_rows,
                eq_rows,
                var_index,
                family,
            )
        )
    return diags


# -- (1) uniqueness ----------------------------------------------------------


def _check_uniqueness(compiled, graph, num_partitions, options, d_min,
                      ub_rows, eq_rows, var_index, family):
    tag = family.paper_eq[0]
    for task in graph:
        name = f"uniq[{task.name}]"
        rows = eq_rows.get(name, [])
        if not rows:
            yield Diagnostic(
                code="missing-uniqueness",
                severity=Severity.ERROR,
                message=(
                    f"task {task.name!r} has no uniqueness row {name!r}: "
                    "nothing forces the task to be placed exactly once"
                ),
                rows=(name,),
                paper_eq=tag,
            )
            continue
        if len(rows) > 1:
            yield Diagnostic(
                code="duplicate-uniqueness",
                severity=Severity.ERROR,
                message=(
                    f"task {task.name!r} carries {len(rows)} uniqueness "
                    f"rows named {name!r}; equation (1) demands exactly one"
                ),
                rows=(name,),
                paper_eq=tag,
            )
        expected = num_partitions * len(task.design_points)
        support = _row_support(compiled, "eq", rows[0])
        rhs = float(compiled.b_eq[rows[0]])
        if len(support) != expected or abs(rhs - 1.0) > 1e-9:
            yield Diagnostic(
                code="malformed-uniqueness",
                severity=Severity.ERROR,
                message=(
                    f"uniqueness row {name!r} should sum all "
                    f"{expected} Y columns of task {task.name!r} to 1 "
                    f"(found {len(support)} columns, rhs {rhs:g})"
                ),
                rows=(name,),
                paper_eq=tag,
            )


# -- (4)-(5) crossing-variable linearization ---------------------------------


def _check_crossing(compiled, graph, num_partitions, options, d_min,
                    ub_rows, eq_rows, var_index, family):
    tag = family.paper_eq[0]
    two_sided = bool(options.two_sided_w) if options is not None else False
    for var in compiled.variables:
        if not var.name.startswith("w["):
            continue
        required = [f"{var.name}_ge"]
        if two_sided:
            required += [f"{var.name}_le_src", f"{var.name}_le_dst"]
        for row_name in required:
            rows = ub_rows.get(row_name, [])
            if not rows:
                yield Diagnostic(
                    code="missing-crossing-row",
                    severity=Severity.ERROR,
                    message=(
                        f"crossing variable {var.name!r} has no "
                        f"linearization row {row_name!r}; the product of "
                        "sums is unconstrained"
                    ),
                    rows=(row_name,),
                    variables=(var.name,),
                    paper_eq=tag,
                )
            elif var_index[var.name] not in _row_support(
                compiled, "ub", rows[0]
            ):
                yield Diagnostic(
                    code="malformed-crossing-row",
                    severity=Severity.ERROR,
                    message=(
                        f"linearization row {row_name!r} does not "
                        f"reference its crossing variable {var.name!r}"
                    ),
                    rows=(row_name,),
                    variables=(var.name,),
                    paper_eq=tag,
                )


# -- (6) resource ------------------------------------------------------------


def _check_resource(compiled, graph, num_partitions, options, d_min,
                    ub_rows, eq_rows, var_index, family):
    tag = family.paper_eq[0]
    for p in range(1, num_partitions + 1):
        name = f"resource[{p}]"
        if name not in ub_rows:
            yield Diagnostic(
                code="missing-resource-row",
                severity=Severity.ERROR,
                message=(
                    f"partition {p} has no resource row {name!r}: its "
                    "area usage is unbounded"
                ),
                rows=(name,),
                paper_eq=tag,
            )


# -- (8) partition count -----------------------------------------------------


def _check_eta(compiled, graph, num_partitions, options, d_min,
               ub_rows, eq_rows, var_index, family):
    tag = family.paper_eq[0]
    if "eta" not in var_index:
        yield Diagnostic(
            code="missing-eta",
            severity=Severity.ERROR,
            message="the model has no 'eta' partition-count variable",
            variables=("eta",),
            paper_eq=tag,
        )
        return
    j = var_index["eta"]
    ub = float(compiled.ub[j])
    if ub > num_partitions + 1e-9:
        yield Diagnostic(
            code="malformed-eta-bound",
            severity=Severity.ERROR,
            message=(
                f"'eta' is bounded by {ub:g} but the model was built for "
                f"at most {num_partitions} partitions (equation (8))"
            ),
            variables=("eta",),
            paper_eq=tag,
        )
    for sink in graph.sinks():
        name = f"eta[{sink}]"
        rows = ub_rows.get(name, [])
        if not rows:
            yield Diagnostic(
                code="missing-eta-bound",
                severity=Severity.ERROR,
                message=(
                    f"sink {sink!r} has no eta bound row {name!r}: eta "
                    "does not count the partitions the schedule uses"
                ),
                rows=(name,),
                paper_eq=tag,
            )
        elif j not in _row_support(compiled, "ub", rows[0]):
            yield Diagnostic(
                code="malformed-eta-bound",
                severity=Severity.ERROR,
                message=(
                    f"eta bound row {name!r} does not reference 'eta'"
                ),
                rows=(name,),
                variables=("eta",),
                paper_eq=tag,
            )


# -- (9)-(10) latency window -------------------------------------------------


def _check_latency_window(compiled, graph, num_partitions, options, d_min,
                          ub_rows, eq_rows, var_index, family):
    required = [("latency_ub", family.paper_eq[0])]
    if d_min > 0:
        required.append(("latency_lb", family.paper_eq[-1]))
    d_columns = {
        var_index[f"d[{p}]"]
        for p in range(1, num_partitions + 1)
        if f"d[{p}]" in var_index
    }
    eta_column = var_index.get("eta")
    for name, tag in required:
        rows = ub_rows.get(name, [])
        if not rows:
            yield Diagnostic(
                code="missing-latency-window",
                severity=Severity.ERROR,
                message=(
                    f"the model has no {name!r} row; the latency window "
                    "is one-sided where the search expects two sides"
                ),
                rows=(name,),
                paper_eq=tag,
            )
            continue
        support = _row_support(compiled, "ub", rows[0])
        missing_d = d_columns - support
        if missing_d or (eta_column is not None
                         and eta_column not in support):
            yield Diagnostic(
                code="malformed-latency-window",
                severity=Severity.ERROR,
                message=(
                    f"window row {name!r} must sum every partition "
                    "latency d[p] plus the reconfiguration term "
                    "C_T * eta; some columns are missing"
                ),
                rows=(name,),
                paper_eq=tag,
            )


# -- symmetry breaking (extension) -------------------------------------------


def _check_symmetry(compiled, graph, num_partitions, options, d_min,
                    ub_rows, eq_rows, var_index, family):
    """Lexicographic partition-ordering rows over interchangeable tasks.

    An extension over the paper (tagged ``ext``): when
    :attr:`FormulationOptions.symmetry_breaking` is set, every
    consecutive pair ``(a, b)`` of an interchangeable group must carry a
    ``sym[a,b]`` row referencing Y columns of *both* tasks — a row that
    mentions only one side constrains nothing (or worse, the wrong
    thing).
    """
    from repro.core.families import interchangeable_groups

    if options is None or not getattr(options, "symmetry_breaking", False):
        return
    tag = family.paper_eq[0]

    def y_columns(task_name: str) -> set[int]:
        points = len(graph.task(task_name).design_points)
        return {
            var_index[f"Y[{task_name},{p},{k}]"]
            for p in range(1, num_partitions + 1)
            for k in range(1, points + 1)
            if f"Y[{task_name},{p},{k}]" in var_index
        }

    for group in interchangeable_groups(graph):
        for first, second in zip(group, group[1:]):
            name = f"sym[{first},{second}]"
            rows = ub_rows.get(name, [])
            if not rows:
                yield Diagnostic(
                    code="missing-symmetry-row",
                    severity=Severity.ERROR,
                    message=(
                        f"interchangeable pair ({first!r}, {second!r}) has "
                        f"no ordering row {name!r} although symmetry "
                        "breaking is enabled"
                    ),
                    rows=(name,),
                    paper_eq=tag,
                )
                continue
            support = _row_support(compiled, "ub", rows[0])
            if not (support & y_columns(first)) or not (
                support & y_columns(second)
            ):
                yield Diagnostic(
                    code="malformed-symmetry-row",
                    severity=Severity.ERROR,
                    message=(
                        f"ordering row {name!r} must reference Y columns "
                        f"of both {first!r} and {second!r}"
                    ),
                    rows=(name,),
                    paper_eq=tag,
                )


#: Checker ids that :class:`repro.core.families.ConstraintFamily`
#: declarations reference via their ``conformance`` field.
CHECKERS = {
    "uniqueness": _check_uniqueness,
    "crossing": _check_crossing,
    "resource": _check_resource,
    "eta": _check_eta,
    "latency_window": _check_latency_window,
    "symmetry": _check_symmetry,
}
