"""Facade of the pre-solve analyzer: one call, one report.

:func:`analyze_compiled` runs the structural pass (and, when given the
build context, the paper-conformance pass) and returns an
:class:`repro.analysis.diagnostics.AnalysisReport`.
:func:`analyze_model` is the convenience wrapper for a built
:class:`repro.core.formulation.TemporalPartitioningModel` — it prefers
the model's window-patched compiled form (the template path) and falls
back to compiling the expression model.

The solver execution layer runs this before any backend when
``SolverSettings.analyze`` is ``"warn"`` or ``"strict"``; the CLI's
``repro-tp analyze`` renders the same report for a problem file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.conformance import check_conformance
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.structure import analyze_structure
from repro.ilp.compile import CompiledModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.formulation import (
        FormulationOptions,
        TemporalPartitioningModel,
    )
    from repro.taskgraph.graph import TaskGraph

__all__ = ["analyze_compiled", "analyze_model"]

#: ``SolverSettings.analyze`` accepts exactly these values.
ANALYZE_MODES = ("off", "warn", "strict")


def analyze_compiled(
    compiled: CompiledModel,
    graph: "TaskGraph | None" = None,
    num_partitions: int | None = None,
    options: "FormulationOptions | None" = None,
    d_min: float = 0.0,
) -> AnalysisReport:
    """Analyze a compiled model; add conformance checks when possible.

    The structural pass always runs.  The paper-conformance pass needs
    the build context (``graph`` and ``num_partitions``); without it the
    report covers structure only.
    """
    scenario = getattr(options, "scenario", None) or "paper_oneshot"
    diagnostics = analyze_structure(compiled, scenario)
    if graph is not None and num_partitions:
        diagnostics.extend(
            check_conformance(
                compiled,
                graph,
                num_partitions,
                options=options,
                d_min=d_min,
            )
        )
    return AnalysisReport(diagnostics)


def analyze_model(tp_model: "TemporalPartitioningModel") -> AnalysisReport:
    """Analyze a built temporal-partitioning model (both passes)."""
    compiled = tp_model.compiled_form()
    return analyze_compiled(
        compiled,
        graph=tp_model.graph,
        num_partitions=tp_model.num_partitions,
        options=tp_model.options,
        d_min=tp_model.d_min,
    )
