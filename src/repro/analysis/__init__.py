"""Pre-solve model analysis: certify structure before racing backends.

The paper's ILP is solved dozens of times per ``Reduce_Latency``
bisection; a malformed or trivially infeasible model wastes a whole
portfolio race before anyone notices.  This package certifies a model
*before* it reaches any backend:

* :mod:`repro.analysis.structure` — structural defects of the compiled
  sparse form: dangling columns, empty or trivially-infeasible rows,
  duplicate/dominated rows, contradictory bounds, non-unit coefficients
  on logical rows, numerical-hygiene warnings;
* :mod:`repro.analysis.conformance` — paper-conformance checks that the
  constraint families of Section 3.2.3 are complete (uniqueness (1),
  crossing linearization (4)-(5), resource (6), eta bound (8), latency
  window (9)-(10));
* :mod:`repro.analysis.diagnostics` — the typed
  :class:`Diagnostic`/:class:`AnalysisReport` records both passes emit,
  each tagged with the paper equation it concerns.

Enable in the execution layer with ``SolverSettings(analyze="warn")``
(report and continue) or ``analyze="strict"`` (raise
:class:`ModelAnalysisError` before any backend attempt), or run
``repro-tp analyze graph.json ...`` from the CLI.  The diagnostic
catalog lives in ``docs/analysis.md``.
"""

from repro.analysis.analyzer import (
    ANALYZE_MODES,
    analyze_compiled,
    analyze_model,
)
from repro.analysis.conformance import check_conformance
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    ModelAnalysisError,
    Severity,
    paper_equation_for,
)
from repro.analysis.structure import analyze_structure

__all__ = [
    "ANALYZE_MODES",
    "AnalysisReport",
    "Diagnostic",
    "ModelAnalysisError",
    "Severity",
    "analyze_compiled",
    "analyze_model",
    "analyze_structure",
    "check_conformance",
    "paper_equation_for",
]
