"""Structural checks over the compiled sparse standard form.

Every check reads only the :class:`repro.ilp.compile.CompiledModel`
arrays — no expression walking, no graph knowledge — so it applies to
any model the ILP stack can compile, not just the temporal-partitioning
formulation.  Paper-equation tags are attached opportunistically from
the row/variable naming scheme (:func:`repro.analysis.diagnostics
.paper_equation_for`); models with unrelated names simply get untagged
findings.

The checks (see ``docs/analysis.md`` for the catalog):

* contradictory or non-binary variable bounds,
* dangling variables — columns that appear in no constraint row,
* empty rows (vacuous or trivially infeasible),
* trivially infeasible rows by interval arithmetic over the variable
  bounds (a row whose *minimum* activity already exceeds its bound can
  never be satisfied, so the whole model is infeasible without a solve),
* duplicate and dominated inequality rows,
* non-unit coefficients on the formulation's logical rows (uniqueness
  and crossing-variable linearization rows are pure ±1 rows by
  construction),
* numerical hygiene: extreme coefficient magnitude spread and
  non-integral right-hand sides on all-integer rows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity, paper_equation_for
from repro.ilp.compile import CompiledModel

__all__ = ["analyze_structure"]

_TOL = 1e-9

#: Row-name prefixes whose rows are pure ±1 "logical" rows in the paper's
#: formulation: uniqueness (1) and the crossing-variable linearization
#: (4)-(5).  Order rows are excluded — the compact ``order_mode="index"``
#: encoding legitimately uses partition-index coefficients.
_LOGICAL_PREFIXES = ("uniq[", "w[")

#: Beyond this ratio between the largest and smallest nonzero coefficient
#: magnitude, LP solvers start losing digits (HiGHS guidance: keep the
#: matrix within ~1e8 of dynamic range).
_SPREAD_LIMIT = 1e8


def _row_name(names: tuple[str | None, ...], i: int, block: str) -> str:
    name = names[i]
    return name if name is not None else f"<unnamed {block} row {i}>"


def _activity_range(
    cols: np.ndarray, coefs: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> tuple[float, float]:
    """Interval-arithmetic bounds of ``coefs @ x`` over the variable box."""
    lo = np.where(coefs > 0, lb[cols], ub[cols])
    hi = np.where(coefs > 0, ub[cols], lb[cols])
    return float(coefs @ lo), float(coefs @ hi)


def _is_integral_value(value: float) -> bool:
    return math.isfinite(value) and abs(value - round(value)) <= _TOL


def analyze_structure(
    compiled: CompiledModel, scenario: str = "paper_oneshot"
) -> list[Diagnostic]:
    """Run every structural check; return the findings (unordered).

    ``scenario`` selects the registered family set whose name prefixes
    supply the equation tags (the checks themselves are scenario-free).
    """
    diags: list[Diagnostic] = []
    diags.extend(_check_bounds(compiled, scenario))
    diags.extend(_check_dangling_columns(compiled, scenario))
    seen_patterns: dict = {}
    for block in ("ub", "eq"):
        diags.extend(_check_rows(compiled, block, seen_patterns, scenario))
    diags.extend(_check_coefficient_spread(compiled))
    return diags


# -- variable checks ---------------------------------------------------------


def _check_bounds(
    compiled: CompiledModel, scenario: str = "paper_oneshot"
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for j, var in enumerate(compiled.variables):
        lb, ub = float(compiled.lb[j]), float(compiled.ub[j])
        if lb > ub + _TOL:
            diags.append(
                Diagnostic(
                    code="bounds-contradictory",
                    severity=Severity.ERROR,
                    message=(
                        f"variable {var.name!r} has empty domain "
                        f"[{lb:g}, {ub:g}]"
                    ),
                    variables=(var.name,),
                    paper_eq=paper_equation_for(var.name, scenario),
                )
            )
        elif var.vtype.name == "BINARY" and (lb < -_TOL or ub > 1 + _TOL):
            diags.append(
                Diagnostic(
                    code="binary-domain",
                    severity=Severity.ERROR,
                    message=(
                        f"binary variable {var.name!r} has bounds "
                        f"[{lb:g}, {ub:g}] outside [0, 1]"
                    ),
                    variables=(var.name,),
                    paper_eq=paper_equation_for(var.name, scenario),
                )
            )
    return diags


def _check_dangling_columns(
    compiled: CompiledModel, scenario: str = "paper_oneshot"
) -> list[Diagnostic]:
    referenced = np.zeros(compiled.num_vars, dtype=bool)
    for indices in (compiled.ub_indices, compiled.eq_indices):
        if len(indices):
            referenced[indices] = True
    diags: list[Diagnostic] = []
    for j in np.flatnonzero(~referenced):
        var = compiled.variables[int(j)]
        in_objective = bool(compiled.c[j])
        severity = (
            Severity.WARNING
            if not compiled.is_integral[j] or in_objective
            else Severity.ERROR
        )
        suffix = (
            " (it appears only in the objective)"
            if in_objective
            else " (it appears in no constraint and no objective)"
        )
        diags.append(
            Diagnostic(
                code="dangling-column",
                severity=severity,
                message=(
                    f"variable {var.name!r} is dangling: its column is "
                    f"all-zero across every constraint row{suffix}"
                ),
                variables=(var.name,),
                paper_eq=paper_equation_for(var.name, scenario),
            )
        )
    return diags


# -- row checks --------------------------------------------------------------


def _check_rows(
    compiled: CompiledModel,
    block: str,
    seen_patterns: dict,
    scenario: str = "paper_oneshot",
) -> list[Diagnostic]:
    if block == "ub":
        indptr, indices, data = (
            compiled.ub_indptr, compiled.ub_indices, compiled.ub_data,
        )
        rhs, names = compiled.b_ub, compiled.ub_names
    else:
        indptr, indices, data = (
            compiled.eq_indptr, compiled.eq_indices, compiled.eq_data,
        )
        rhs, names = compiled.b_eq, compiled.eq_names

    diags: list[Diagnostic] = []
    lb, ub = compiled.lb, compiled.ub
    is_integral = compiled.is_integral
    for i in range(len(rhs)):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        coefs = data[lo:hi]
        b = float(rhs[i])
        name = _row_name(names, i, block)
        tag = paper_equation_for(names[i], scenario)

        if lo == hi:
            diags.extend(_empty_row(block, name, b, tag))
            continue

        diags.extend(
            _infeasible_row(block, name, b, tag, cols, coefs, lb, ub)
        )
        diags.extend(_duplicate_row(block, name, b, tag, cols, coefs,
                                    seen_patterns))
        if names[i] and any(names[i].startswith(p)
                            for p in _LOGICAL_PREFIXES):
            diags.extend(_logical_row(name, tag, coefs))
        diags.extend(
            _fractional_rhs(block, name, b, tag, cols, coefs, is_integral)
        )
    return diags


def _empty_row(block: str, name: str, b: float, tag):
    if (block == "ub" and b < -_TOL) or (block == "eq" and abs(b) > _TOL):
        yield Diagnostic(
            code="row-infeasible",
            severity=Severity.ERROR,
            message=(
                f"row {name!r} has no coefficients but an unsatisfiable "
                f"right-hand side ({'0 <= ' if block == 'ub' else '0 == '}"
                f"{b:g} is false)"
            ),
            rows=(name,),
            paper_eq=tag,
        )
    else:
        yield Diagnostic(
            code="empty-row",
            severity=Severity.WARNING,
            message=f"row {name!r} has no coefficients (vacuous)",
            rows=(name,),
            paper_eq=tag,
        )


def _infeasible_row(block, name, b, tag, cols, coefs, lb, ub):
    lo_act, hi_act = _activity_range(cols, coefs, lb, ub)
    if block == "ub":
        infeasible = lo_act > b + _TOL
        detail = f"minimum activity {lo_act:g} exceeds bound {b:g}"
    else:
        infeasible = lo_act > b + _TOL or hi_act < b - _TOL
        detail = (
            f"activity range [{lo_act:g}, {hi_act:g}] cannot reach {b:g}"
        )
    if infeasible and math.isfinite(lo_act):
        yield Diagnostic(
            code="row-infeasible",
            severity=Severity.ERROR,
            message=(
                f"row {name!r} is trivially infeasible over the variable "
                f"bounds: {detail}"
            ),
            rows=(name,),
            paper_eq=tag,
        )


def _duplicate_row(block, name, b, tag, cols, coefs, seen_patterns):
    pattern = (block, cols.tobytes(), coefs.tobytes())
    previous = seen_patterns.get(pattern)
    if previous is None:
        seen_patterns[pattern] = (name, b)
        return
    prev_name, prev_b = previous
    if abs(prev_b - b) <= _TOL:
        yield Diagnostic(
            code="duplicate-row",
            severity=Severity.WARNING,
            message=(
                f"row {name!r} duplicates row {prev_name!r} "
                "(same coefficients, same right-hand side)"
            ),
            rows=(name, prev_name),
            paper_eq=tag,
        )
    elif block == "ub":
        loose, tight = (
            (name, prev_name) if b > prev_b else (prev_name, name)
        )
        yield Diagnostic(
            code="dominated-row",
            severity=Severity.WARNING,
            message=(
                f"row {loose!r} is dominated by row {tight!r} "
                "(same coefficients, tighter right-hand side)"
            ),
            rows=(loose, tight),
            paper_eq=tag,
        )


def _logical_row(name, tag, coefs):
    bad = [c for c in coefs.tolist() if abs(abs(c) - 1.0) > _TOL]
    if bad:
        yield Diagnostic(
            code="nonunit-logical-coefficient",
            severity=Severity.ERROR,
            message=(
                f"logical row {name!r} carries non-unit coefficient(s) "
                f"{sorted(set(bad))[:4]} on binary variables; uniqueness "
                "and crossing-linearization rows are pure ±1 rows"
            ),
            rows=(name,),
            paper_eq=tag,
        )


def _fractional_rhs(block, name, b, tag, cols, coefs, is_integral):
    if _is_integral_value(b):
        return
    if not bool(np.all(is_integral[cols])):
        return
    if not all(_is_integral_value(c) for c in coefs.tolist()):
        return
    if block == "eq":
        yield Diagnostic(
            code="row-infeasible",
            severity=Severity.ERROR,
            message=(
                f"equality row {name!r} forces an all-integer expression "
                f"to the non-integral value {b!r}"
            ),
            rows=(name,),
            paper_eq=tag,
        )
    else:
        yield Diagnostic(
            code="fractional-rhs",
            severity=Severity.WARNING,
            message=(
                f"row {name!r} bounds an all-integer expression by the "
                f"non-integral {b!r}; the bound could be floored to "
                f"{math.floor(b)} without cutting any integer point"
            ),
            rows=(name,),
            paper_eq=tag,
        )


def _check_coefficient_spread(compiled: CompiledModel) -> list[Diagnostic]:
    magnitudes = np.abs(
        np.concatenate([compiled.ub_data, compiled.eq_data])
    )
    magnitudes = magnitudes[magnitudes > 0]
    if len(magnitudes) == 0:
        return []
    largest = float(magnitudes.max())
    smallest = float(magnitudes.min())
    if largest / smallest <= _SPREAD_LIMIT:
        return []
    return [
        Diagnostic(
            code="coefficient-spread",
            severity=Severity.WARNING,
            message=(
                f"constraint coefficients span {largest / smallest:.1e} "
                f"orders of magnitude (|a| in [{smallest:g}, {largest:g}]); "
                "LP solvers lose precision beyond ~1e8 of dynamic range"
            ),
        )
    ]
