"""Typed diagnostics emitted by the pre-solve model analyzer.

A :class:`Diagnostic` is one finding about a built model: a severity,
a stable machine-readable ``code``, a human message, the provenance
(constraint rows and/or variable columns it concerns) and — where the
finding maps onto the paper's formulation — the equation tag of
Section 3.2.3 ("(1)" for uniqueness, "(4)-(5)" for the crossing-variable
linearization, and so on).  :class:`AnalysisReport` aggregates the
findings of one analyzer run, renders them for the CLI and serializes
them for telemetry/CI consumers.

The full diagnostic catalog (codes, severities, equation tags) is
documented in ``docs/analysis.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "ModelAnalysisError",
    "Severity",
    "paper_equation_for",
]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make the model malformed or provably pointless to
    solve (strict mode aborts on them); ``WARNING`` findings are legal
    but wasteful or numerically risky; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


#: Per-scenario prefix maps derived from the family registry (each
#: :class:`repro.core.families.ConstraintFamily` declares its name
#: prefixes and equation tags), sorted longest-prefix-first so
#: ``eta_area_cut`` wins over ``eta``.
_PREFIX_CACHE: dict[str, tuple[tuple[str, str], ...]] = {}


def _scenario_prefixes(scenario: str) -> tuple[tuple[str, str], ...]:
    cached = _PREFIX_CACHE.get(scenario)
    if cached is None:
        # Imported lazily: the registry lives above the analysis layer.
        from repro.core.families import get_scenario

        pairs = [
            pair
            for family in get_scenario(scenario).families
            for pair in family.equation_prefixes
        ]
        cached = tuple(
            sorted(pairs, key=lambda item: len(item[0]), reverse=True)
        )
        _PREFIX_CACHE[scenario] = cached
    return cached


def paper_equation_for(
    name: str | None, scenario: str = "paper_oneshot"
) -> str | None:
    """Map a constraint/variable name to its paper-equation tag.

    The map is derived from the scenario's registered constraint
    families (each declares its name prefixes and tags), following the
    naming scheme of :mod:`repro.core.families` (``uniq[T1]``,
    ``w[2,T1,T2]_ge``, ``latency_ub``, ...).  Names that belong to no
    family (extension rows such as ``sym[...]`` or anything
    user-defined) map to ``None``.
    """
    if not name:
        return None
    for prefix, tag in _scenario_prefixes(scenario):
        if name.startswith(prefix):
            return tag
    return None


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (``"dangling-column"``,
        ``"row-infeasible"``, ...); the catalog lives in
        ``docs/analysis.md``.
    severity:
        See :class:`Severity`.
    message:
        Human-readable one-liner.
    rows:
        Names of the constraint rows the finding concerns (may be empty).
    variables:
        Names of the variable columns the finding concerns (may be empty).
    paper_eq:
        Equation tag of Section 3.2.3 when the provenance maps onto the
        paper's formulation, else ``None``.
    """

    code: str
    severity: Severity
    message: str
    rows: tuple[str, ...] = ()
    variables: tuple[str, ...] = ()
    paper_eq: str | None = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "rows": list(self.rows),
            "variables": list(self.variables),
            "paper_eq": self.paper_eq,
        }

    def render(self) -> str:
        tag = f" {self.paper_eq}" if self.paper_eq else ""
        return f"{self.severity.value.upper():<8}{self.code}{tag}: {self.message}"


@dataclass
class AnalysisReport:
    """All findings of one analyzer run, worst first."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics.sort(key=lambda d: d.severity.rank)

    # -- views ---------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No ERROR-severity findings (warnings do not fail a model)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.diagnostics

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def summary(self) -> str:
        if self.clean:
            return "model analysis: clean (no findings)"
        return (
            f"model analysis: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} finding(s) total"
        )

    def render(self) -> str:
        """Multi-line report for the CLI (worst findings first)."""
        lines = [self.summary()]
        for diag in self.diagnostics:
            lines.append("  " + diag.render())
        return "\n".join(lines)


class ModelAnalysisError(RuntimeError):
    """Raised in strict mode when the analyzer finds ERROR diagnostics.

    Carries the full :class:`AnalysisReport` as ``report`` so callers can
    render or serialize the findings that aborted the solve.
    """

    def __init__(self, report: AnalysisReport) -> None:
        first = report.errors[0] if report.errors else None
        detail = f"; first: {first.render()}" if first is not None else ""
        super().__init__(
            f"model analysis failed with {len(report.errors)} error(s)"
            f"{detail}"
        )
        self.report = report
