"""From-scratch branch & bound for mixed-integer linear programs.

Together with :mod:`repro.ilp.simplex` this forms the self-contained MILP
solver of the reproduction (no CPLEX, no PuLP).  Design:

* depth-first search with a last-in-first-out stack — DFS reaches integer
  leaves quickly, which suits the constraint-satisfaction usage pattern of
  the paper (``SolveModel()`` returns the first feasible point),
* LP relaxations per node, solved either by our own two-phase simplex
  (``lp_engine="own"``) or by scipy/HiGHS (``lp_engine="scipy"``, default),
* most-fractional branching with objective-coefficient tie-breaking,
* LP diving (:func:`repro.ilp.rounding.dive`) at the root and every
  ``dive_every`` explored nodes to find incumbents early,
* node pruning by bound against the incumbent, with the standard integer
  rounding of bounds when all objective coefficients are integral.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ilp import rounding
from repro.ilp.scipy_backend import solve_relaxation
from repro.ilp.simplex import solve_lp
from repro.ilp.status import Solution, SolveStatus

__all__ = ["BnbOptions", "BnbResult", "branch_and_bound", "solve_with_bnb"]


@dataclass
class BnbOptions:
    """Tuning knobs of the branch & bound."""

    lp_engine: str = "scipy"        # "scipy" or "own"
    first_feasible: bool = False    # stop at the first incumbent
    node_limit: int = 200_000
    time_limit: float | None = None
    int_tol: float = 1e-6
    gap_tol: float = 1e-9           # absolute optimality gap
    dive_every: int = 50            # run the diving heuristic every N nodes
    dive_resolves: int = 25
    #: Optional warm start: a candidate point (original variable order).
    #: Validated against bounds, integrality and all rows before being
    #: installed as the initial incumbent — a stale or infeasible point
    #: is discarded rather than silently repaired, because a wrong
    #: incumbent prunes optimal subtrees.
    warm_start: np.ndarray | None = None
    #: Optional simplex basis from a previous solve of the same canonical
    #: structure (see :func:`repro.ilp.simplex.solve_lp`).  Only used
    #: with ``lp_engine="own"``; node LPs crash onto the most recent
    #: optimal basis instead of running phase I from scratch.
    start_basis: np.ndarray | None = None
    #: Cooperative cancellation: polled alongside the wall-clock deadline
    #: before every node, every diving re-solve and every root-cut round.
    #: Used by the portfolio runner to stop a losing race early.
    should_stop: Callable[[], bool] | None = None
    #: Rounds of knapsack cover cuts separated at the root node (0 = off).
    #: Valid for all integer points; tightens packing relaxations.
    root_cuts: int = 0
    #: Optional :class:`repro.obs.Tracer`: a ``bnb_checkpoint`` event
    #: (nodes, incumbent, bound, stack depth) is emitted every
    #: ``checkpoint_every`` explored nodes.
    tracer: object | None = None
    checkpoint_every: int = 1000


@dataclass
class BnbResult:
    """Raw outcome of :func:`branch_and_bound`."""

    status: SolveStatus
    x: np.ndarray | None
    objective: float
    nodes: int
    best_bound: float = -math.inf
    incumbents: list[float] = field(default_factory=list)
    #: Optimal basis of the root LP relaxation, when solved by the own
    #: simplex — reusable as ``BnbOptions.start_basis`` for RHS-only
    #: re-solves of the same model structure.
    root_basis: np.ndarray | None = None
    #: Node LPs that skipped phase I by crashing onto a previous basis.
    basis_restarts: int = 0


@dataclass
class _Node:
    lb: np.ndarray
    ub: np.ndarray
    depth: int
    parent_bound: float


def _strengthen_with_cover_cuts(form, rounds: int, stop=None):
    """Append violated knapsack cover cuts to the form (root node only).

    Cuts remove only fractional points, so the returned form is
    equivalent on integers; all node relaxations inherit the tightening.
    ``stop`` (the solver's budget predicate) bounds the separation loop:
    cut rounds are an optimization, not worth blowing the deadline for.
    """
    import dataclasses

    from repro.ilp.compile import CompiledModel
    from repro.ilp.cuts import apply_cuts, find_cover_cuts

    # The cut loop grows the inequality block row by row; do that on the
    # dense StandardForm (cuts are a cold, optional path).
    work = form.to_standard_form() if isinstance(form, CompiledModel) else form
    for _ in range(rounds):
        if stop is not None and stop():
            break
        status, x, _objective, _n = solve_relaxation(work)
        if status is not SolveStatus.OPTIMAL or x is None:
            break
        is_binary = work.is_integral & (work.lb >= 0.0) & (work.ub <= 1.0)
        cuts = find_cover_cuts(work.a_ub, work.b_ub, is_binary, x)
        if not cuts:
            break
        a_ub, b_ub = apply_cuts(
            work.a_ub, work.b_ub, cuts, work.num_vars
        )
        work = dataclasses.replace(work, a_ub=a_ub, b_ub=b_ub)
    return work


def _validate_warm_start(
    form, point: np.ndarray, int_tol: float
) -> np.ndarray | None:
    """Validate a warm-start point; return the snapped point or ``None``.

    The point must have the right shape, be finite, sit within bounds
    and on integer values up to ``int_tol`` (small drift is snapped, but
    nothing is clipped or rounded into feasibility), and satisfy every
    row of the form.  Anything else is rejected: installing an
    infeasible incumbent would wrongly prune feasible subtrees.
    """
    point = np.asarray(point, dtype=float)
    if point.shape != form.lb.shape or not np.all(np.isfinite(point)):
        return None
    if np.any(point < form.lb - int_tol) or np.any(point > form.ub + int_tol):
        return None
    mask = form.is_integral
    if not rounding.is_integral(point, mask, int_tol):
        return None
    snapped = point.copy()
    snapped[mask] = np.round(snapped[mask])
    snapped = np.clip(snapped, form.lb, form.ub)
    if not rounding.feasible_point(form, snapped):
        return None
    return snapped


def branch_and_bound(form, options: BnbOptions | None = None) -> BnbResult:
    """Minimize a standard-form MILP.

    ``form`` is a :class:`repro.ilp.model.StandardForm` or a
    :class:`repro.ilp.compile.CompiledModel` — both expose the matrix
    attributes the node loop reads.  The returned objective excludes the
    form's constant ``c0`` (callers add it back), matching
    :func:`solve_relaxation`.
    """
    options = options or BnbOptions()
    deadline = (
        time.perf_counter() + options.time_limit
        if options.time_limit is not None
        else None
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    def halted() -> bool:
        """Budget predicate: deadline blown or cancelled from outside."""
        if options.should_stop is not None and options.should_stop():
            return True
        return out_of_time()

    if options.root_cuts > 0:
        form = _strengthen_with_cover_cuts(form, options.root_cuts, stop=halted)

    # Basis reuse across node LPs (own engine only): the canonical
    # structure is identical at every node — only bound *values* change —
    # so each LP can crash onto the previous node's optimal basis.  The
    # seed basis may come from a previous window's root solve.
    basis_state: dict[str, object] = {
        "last": options.start_basis, "root": None, "restarts": 0,
    }

    def solve_node(lb, ub):
        # The budget binds *inside* the node loop too: no LP (including a
        # diving re-solve) starts once it is spent, and scipy LPs inherit
        # whatever wall clock remains so one long relaxation cannot
        # overshoot the deadline.
        if halted():
            return SolveStatus.TIME_LIMIT, None, math.nan
        if options.lp_engine == "own":
            result = solve_lp(
                form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq, lb, ub,
                start_basis=basis_state["last"],
            )
            if result.status is SolveStatus.OPTIMAL:
                if basis_state["root"] is None:
                    basis_state["root"] = result.basis
                basis_state["last"] = result.basis
                if result.warm:
                    basis_state["restarts"] += 1
            return result.status, result.x, result.objective
        remaining = None
        if deadline is not None:
            remaining = max(deadline - time.perf_counter(), 1e-3)
        status, x, objective, _ = solve_relaxation(
            form, extra_lb=lb, extra_ub=ub, time_limit=remaining
        )
        return status, x, objective

    mask = form.is_integral
    # When the objective has only integer coefficients on integer variables
    # and none on continuous ones, LP bounds can be rounded up.
    integral_objective = bool(
        np.all(form.c[~mask] == 0.0)
        and np.all(form.c[mask] == np.round(form.c[mask]))
    )

    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    incumbents: list[float] = []
    nodes_explored = 0
    best_bound = -math.inf

    def register(x: np.ndarray, objective: float) -> None:
        nonlocal incumbent_x, incumbent_obj
        if objective < incumbent_obj - options.gap_tol:
            incumbent_x = x.copy()
            incumbent_obj = objective
            incumbents.append(objective)

    if options.warm_start is not None:
        candidate = _validate_warm_start(
            form, options.warm_start, options.int_tol
        )
        if candidate is not None:
            register(candidate, float(form.c @ candidate))

    root = _Node(
        lb=form.lb.astype(float).copy(),
        ub=form.ub.astype(float).copy(),
        depth=0,
        parent_bound=-math.inf,
    )
    stack: list[_Node] = [root]
    status_on_exit = SolveStatus.OPTIMAL

    while stack:
        if halted():
            status_on_exit = SolveStatus.TIME_LIMIT
            break
        if nodes_explored >= options.node_limit:
            status_on_exit = SolveStatus.NODE_LIMIT
            break
        node = stack.pop()
        if node.parent_bound >= incumbent_obj - options.gap_tol:
            continue
        status, x, objective = solve_node(node.lb, node.ub)
        nodes_explored += 1
        if (
            options.tracer is not None
            and nodes_explored % options.checkpoint_every == 0
        ):
            options.tracer.event(
                "bnb_checkpoint",
                nodes=nodes_explored,
                incumbent=(
                    incumbent_obj if math.isfinite(incumbent_obj) else None
                ),
                best_bound=best_bound if math.isfinite(best_bound) else None,
                stack_depth=len(stack),
            )
        if status is SolveStatus.INFEASIBLE:
            continue
        if status is SolveStatus.UNBOUNDED:
            return BnbResult(
                SolveStatus.UNBOUNDED, None, -math.inf, nodes_explored
            )
        if status is SolveStatus.TIME_LIMIT:
            # The budget expired between the loop check and the node LP.
            status_on_exit = SolveStatus.TIME_LIMIT
            break
        if status is not SolveStatus.OPTIMAL or x is None:
            status_on_exit = SolveStatus.ERROR
            break

        bound = objective
        if integral_objective:
            bound = math.ceil(objective - options.gap_tol)
        if node.depth == 0:
            best_bound = bound
        if bound >= incumbent_obj - options.gap_tol:
            continue

        branch_index = rounding.most_fractional_index(
            x, mask, weights=form.c
        )
        if branch_index is None:
            register(x, objective)
            if options.first_feasible:
                break
            continue

        run_dive = (
            node.depth == 0 or nodes_explored % options.dive_every == 0
        )
        if run_dive:
            dived = rounding.dive(
                form,
                x,
                node.lb,
                node.ub,
                lambda lb, ub: solve_node(lb, ub),
                max_resolves=options.dive_resolves,
            )
            if dived is not None:
                dive_x, dive_obj = dived
                register(dive_x, dive_obj - form.c0)
                if options.first_feasible and incumbent_x is not None:
                    break

        value = x[branch_index]
        floor_ub = node.ub.copy()
        floor_ub[branch_index] = math.floor(value + options.int_tol)
        ceil_lb = node.lb.copy()
        ceil_lb[branch_index] = math.ceil(value - options.int_tol)
        down = _Node(node.lb.copy(), floor_ub, node.depth + 1, bound)
        up = _Node(ceil_lb, node.ub.copy(), node.depth + 1, bound)
        # Explore the branch nearest the LP value first (LIFO: push last).
        if value - math.floor(value) <= 0.5:
            stack.append(up)
            stack.append(down)
        else:
            stack.append(down)
            stack.append(up)

    root_basis = basis_state["root"]
    restarts = int(basis_state["restarts"])
    if incumbent_x is None:
        if status_on_exit in (SolveStatus.TIME_LIMIT, SolveStatus.NODE_LIMIT):
            return BnbResult(
                status_on_exit, None, math.nan, nodes_explored, best_bound,
                root_basis=root_basis, basis_restarts=restarts,
            )
        return BnbResult(
            SolveStatus.INFEASIBLE, None, math.nan, nodes_explored, best_bound,
            root_basis=root_basis, basis_restarts=restarts,
        )

    finished = not stack and status_on_exit is SolveStatus.OPTIMAL
    if options.first_feasible and not finished:
        status = SolveStatus.FEASIBLE
    elif finished:
        status = SolveStatus.OPTIMAL
    else:
        status = SolveStatus.FEASIBLE
    return BnbResult(
        status,
        incumbent_x,
        incumbent_obj,
        nodes_explored,
        best_bound,
        incumbents,
        root_basis=root_basis,
        basis_restarts=restarts,
    )


def solve_with_bnb(model, **options) -> Solution:
    """Backend adapter for :meth:`repro.ilp.model.Model.solve`.

    Accepts a :class:`repro.ilp.model.Model` or a pre-compiled
    :class:`repro.ilp.compile.CompiledModel`; node relaxations then run
    off the compiled arrays (sparse via scipy, dense via the own
    simplex) without per-solve matrix rebuilds.
    """
    from repro.ilp.compile import ensure_compiled

    form = ensure_compiled(model)
    bnb_options = BnbOptions(
        lp_engine=options.get("lp_engine", "scipy"),
        first_feasible=bool(options.get("first_feasible", False)),
        node_limit=options.get("node_limit") or 200_000,
        time_limit=options.get("time_limit"),
        should_stop=options.get("should_stop"),
        tracer=options.get("tracer"),
    )
    if "dive_every" in options:
        bnb_options.dive_every = options["dive_every"]
    if "root_cuts" in options:
        bnb_options.root_cuts = int(options["root_cuts"])
    if options.get("start_basis") is not None:
        bnb_options.start_basis = np.asarray(
            options["start_basis"], dtype=np.intp
        )
    warm_start = options.get("warm_start")
    if warm_start is not None:
        # A name -> value mapping; unknown names are ignored, missing
        # variables default to their lower bound.
        x0 = form.lb.astype(float).copy()
        x0[~np.isfinite(x0)] = 0.0
        for position, var in enumerate(form.variables):
            if var.name in warm_start:
                x0[position] = float(warm_start[var.name])
        bnb_options.warm_start = x0
    result = branch_and_bound(form, bnb_options)
    values: dict[str, float] = {}
    objective = math.nan
    if result.x is not None:
        x = result.x.copy()
        x[form.is_integral] = np.round(x[form.is_integral])
        values = form.values_to_dict(x)
        objective = form.objective_at(x)
    bound = result.best_bound + form.c0 if math.isfinite(result.best_bound) else None
    stats: dict[str, object] = {"basis_restarts": result.basis_restarts}
    if result.root_basis is not None:
        stats["root_basis"] = result.root_basis
    return Solution(
        status=result.status,
        objective=objective,
        values=values,
        iterations=result.nodes,
        bound=bound,
        stats=stats,
    )
