"""The MILP model container and its standard-form matrix view.

A :class:`Model` collects variables, linear constraints and an optional
linear objective, then dispatches to one of the registered backends:

``highs``
    :func:`scipy.optimize.milp` (HiGHS).  Fast; the production default.
``bnb``
    The from-scratch branch & bound of
    :mod:`repro.ilp.branch_and_bound`, with LP relaxations solved either
    by our own simplex or by scipy's ``linprog``.
``simplex``
    Pure-LP solve with the from-scratch two-phase simplex (ignores
    integrality; used for relaxations and in tests).

Backends all consume the same :class:`StandardForm` matrix view, so a model
built once can be solved and cross-checked by every backend.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.ilp.compile import CompiledModel, compile_model
from repro.ilp.errors import BackendNotAvailableError, ModelError
from repro.ilp.expr import Constraint, LinExpr, Sense, Variable, VarType
from repro.ilp.status import Solution

__all__ = ["Model", "ObjectiveSense", "StandardForm", "solve_compiled"]


class ObjectiveSense:
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass
class StandardForm:
    """Matrix view of a model, shared by every backend.

    The representation keeps inequality rows (all normalized to ``<=``)
    separate from equality rows, and carries variable bounds and an
    integrality mask rather than folding bounds into rows.
    """

    variables: list[Variable]
    c: np.ndarray              # objective (minimization direction)
    c0: float                  # objective constant
    a_ub: np.ndarray           # inequality rows, <= b_ub
    b_ub: np.ndarray
    a_eq: np.ndarray           # equality rows, == b_eq
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    is_integral: np.ndarray    # boolean mask per column

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    def values_to_dict(self, x: Sequence[float]) -> dict[str, float]:
        return {var.name: float(val) for var, val in zip(self.variables, x)}

    def objective_at(self, x: np.ndarray) -> float:
        return float(self.c @ x) + self.c0


class Model:
    """A mixed-integer linear program under construction.

    Example
    -------
    >>> m = Model("knapsack")
    >>> x = [m.add_var(f"x{i}", vtype=VarType.BINARY) for i in range(3)]
    >>> m.add_constr(2 * x[0] + 3 * x[1] + 4 * x[2] <= 5, name="capacity")
    >>> m.set_objective(3 * x[0] + 4 * x[1] + 5 * x[2],
    ...                 sense=ObjectiveSense.MAXIMIZE)
    >>> sol = m.solve()
    >>> sol.status.has_solution
    True
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._names: set[str] = set()
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: str = ObjectiveSense.MINIMIZE
        self._compiled: CompiledModel | None = None

    def _invalidate(self) -> None:
        self._compiled = None

    # -- construction ------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create a variable, register it, and return it."""
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(name, lb=lb, ub=ub, vtype=vtype)
        # Model-scoped ordering key: identical models built at different
        # points of the process lifetime index (and therefore print,
        # sort and compile) identically.
        var.index = len(self._variables)
        self._variables.append(var)
        self._names.add(name)
        self._invalidate()
        return var

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, vtype=VarType.BINARY)

    def add_integer(
        self, name: str, lb: float = 0.0, ub: float = math.inf
    ) -> Variable:
        return self.add_var(name, lb=lb, ub=ub, vtype=VarType.INTEGER)

    def add_constr(
        self, constraint: Constraint, name: str | None = None
    ) -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected a Constraint, got {type(constraint).__name__}; "
                "build constraints with <=, >= or == on expressions"
            )
        for var in constraint.expr.variables():
            if var.name not in self._names:
                raise ModelError(
                    f"constraint uses variable {var.name!r} that does not "
                    f"belong to model {self.name!r}"
                )
        if name is not None:
            constraint.name = name
        self._constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constr(constraint)

    def remove_constr(self, name: str) -> Constraint:
        """Remove (and return) the first constraint named ``name``."""
        for position, constraint in enumerate(self._constraints):
            if constraint.name == name:
                del self._constraints[position]
                self._invalidate()
                return constraint
        raise ModelError(f"no constraint named {name!r}")

    def set_rhs(self, name: str, rhs: float) -> None:
        """Update the right-hand side of the constraint named ``name``.

        This is the incremental-update fast path: when a compiled form is
        cached it is replaced by a right-hand-side sibling (one RHS-array
        copy, every other array shared) instead of being rebuilt.  The
        compiled arrays themselves are frozen and never written in
        place — template siblings produced by
        :meth:`repro.ilp.compile.CompiledModel.with_b_ub` /
        ``truncate_ub_rows`` alias them, so an in-place write here would
        silently retarget models that look independent.
        """
        for constraint in self._constraints:
            if constraint.name == name:
                constraint.rhs = float(rhs)
                break
        else:
            raise ModelError(f"no constraint named {name!r}")
        if self._compiled is not None:
            kind, row = self._compiled.row_position(name)
            if kind == "eq":
                self._compiled = self._compiled.with_b_eq({row: float(rhs)})
            elif constraint.sense is Sense.GE:
                self._compiled = self._compiled.with_b_ub({row: -float(rhs)})
            else:
                self._compiled = self._compiled.with_b_ub({row: float(rhs)})

    def set_objective(
        self, expr, sense: str = ObjectiveSense.MINIMIZE
    ) -> None:
        if sense not in (ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE):
            raise ModelError(f"unknown objective sense {sense!r}")
        self._objective = LinExpr.from_value(expr)
        self._sense = sense
        self._invalidate()

    # -- inspection ----------------------------------------------------------

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def objective_sense(self) -> str:
        return self._sense

    @property
    def num_vars(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self._variables if v.vtype.is_integral)

    def variable(self, name: str) -> Variable:
        for var in self._variables:
            if var.name == name:
                return var
        raise KeyError(name)

    def check_point(
        self, values: Mapping[str, float], tol: float = 1e-6
    ) -> list[Constraint]:
        """Return the constraints violated by ``values`` (bounds included).

        Used pervasively in tests: any solution returned by any backend is
        replayed through this audit.
        """
        violated = [
            c for c in self._constraints if not c.is_satisfied(values, tol)
        ]
        for var in self._variables:
            val = values[var.name]
            out_of_bounds = val < var.lb - tol or val > var.ub + tol
            not_integral = var.vtype.is_integral and abs(
                val - round(val)
            ) > tol
            if out_of_bounds or not_integral:
                bound_expr = var.to_expr()
                violated.append(
                    Constraint(bound_expr - val, Sense.EQ, name=f"bound[{var.name}]")
                )
        return violated

    # -- standard form ---------------------------------------------------------

    def compile(self) -> CompiledModel:
        """The sparse standard form of this model (cached).

        The compiled view is rebuilt after any structural change
        (``add_var``, ``add_constr``, ``remove_constr``,
        ``set_objective``) and patched in place by :meth:`set_rhs`.  All
        backends consume this form; see :mod:`repro.ilp.compile`.
        """
        if self._compiled is None:
            self._compiled = compile_model(self)
        return self._compiled

    def to_standard_form(self) -> StandardForm:
        """Build the legacy dense matrix view (from the compiled form).

        The objective is always expressed in the *minimization* direction;
        a MAXIMIZE objective is negated here and the reported objective
        value is negated back by :meth:`solve`.  The returned arrays are
        views of the compiled cache — treat them as read-only.
        """
        return self.compile().to_standard_form()

    # -- solving -----------------------------------------------------------------

    def solve(
        self,
        backend: str = "highs",
        first_feasible: bool = False,
        time_limit: float | None = None,
        node_limit: int | None = None,
        **options,
    ) -> Solution:
        """Solve the model with the chosen backend.

        Parameters
        ----------
        backend:
            ``"highs"``, ``"bnb"`` or ``"simplex"`` (or any name registered
            via :meth:`register_backend`).
        first_feasible:
            Stop at the first integer-feasible point.  This is the mode the
            paper's ``SolveModel()`` uses: the iterative search only needs
            constraint satisfaction.
        time_limit:
            Wall-clock budget in seconds.
        node_limit:
            Branch & bound node budget (ignored by pure-LP backends).
        """
        return _dispatch(
            self,
            maximize=self._sense == ObjectiveSense.MAXIMIZE,
            backend=backend,
            first_feasible=first_feasible,
            time_limit=time_limit,
            node_limit=node_limit,
            **options,
        )

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"({self.num_integer_vars} integer), "
            f"constrs={self.num_constraints})"
        )


def solve_compiled(
    compiled: CompiledModel,
    backend: str = "highs",
    first_feasible: bool = False,
    time_limit: float | None = None,
    node_limit: int | None = None,
    **options,
) -> Solution:
    """Solve a pre-compiled model directly, bypassing the Model object.

    This is the hot path of the incremental model templates: a
    :class:`repro.ilp.compile.CompiledModel` produced once (and patched
    per window) is handed straight to the backend, so no expression
    objects are rebuilt and no matrices re-derived per solve.  Options
    mirror :meth:`Model.solve`.
    """
    return _dispatch(
        compiled,
        maximize=compiled.maximize,
        backend=backend,
        first_feasible=first_feasible,
        time_limit=time_limit,
        node_limit=node_limit,
        **options,
    )


def _dispatch(target, maximize: bool, backend: str, **options) -> Solution:
    """Run a backend on a Model or CompiledModel and normalize the result.

    An optional ``tracer`` (:class:`repro.obs.Tracer`) wraps the backend
    call in an ``ilp:<backend>`` span; it is forwarded into the backend
    only when the backend's signature can take it, so externally
    registered solvers never see an unexpected keyword.
    """
    tracer = options.pop("tracer", None)
    try:
        solver = _BACKENDS[backend]
    except KeyError:
        raise BackendNotAvailableError(
            f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}"
        ) from None
    if tracer is not None and getattr(tracer, "enabled", False):
        if _accepts_tracer(solver):
            options["tracer"] = tracer
        with tracer.span(f"ilp:{backend}", backend=backend) as span:
            start = time.perf_counter()
            solution = solver(target, **options)
            elapsed = time.perf_counter() - start
            span.annotate(
                status=solution.status.value,
                iterations=solution.iterations,
            )
    else:
        start = time.perf_counter()
        solution = solver(target, **options)
        elapsed = time.perf_counter() - start
    objective = solution.objective
    if maximize and not math.isnan(objective):
        # The compiled form negates MAXIMIZE objectives; undo for reporting.
        objective = -objective
    bound = solution.bound
    if bound is not None and maximize:
        bound = -bound
    return Solution(
        status=solution.status,
        objective=objective,
        values=solution.values,
        iterations=solution.iterations,
        wall_time=elapsed,
        bound=bound,
        stats=solution.stats,
    )


_TRACER_SUPPORT: dict[int, bool] = {}


def _accepts_tracer(solver: Callable) -> bool:
    """Whether ``solver`` can be called with a ``tracer=`` keyword."""
    key = id(solver)
    cached = _TRACER_SUPPORT.get(key)
    if cached is None:
        import inspect

        try:
            params = inspect.signature(solver).parameters
            cached = "tracer" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()
            )
        except (TypeError, ValueError):  # builtins without signatures
            cached = False
        _TRACER_SUPPORT[key] = cached
    return cached


# -- backend registry -----------------------------------------------------------

_BACKENDS: dict[str, Callable[..., Solution]] = {}


def register_backend(name: str, solver: Callable[..., Solution]) -> None:
    """Register a solver callable under ``name``.

    The callable receives the model — either a :class:`Model` or a
    pre-compiled :class:`repro.ilp.compile.CompiledModel` (normalize with
    :func:`repro.ilp.compile.ensure_compiled`) — plus the keyword options
    of :meth:`Model.solve`, and returns a :class:`Solution` whose
    objective is in the *minimization* direction of the standard form.
    """
    _BACKENDS[name] = solver


def _install_default_backends() -> None:
    # Imported lazily to avoid a circular import at module load.
    from repro.ilp import branch_and_bound, scipy_backend, simplex

    register_backend("highs", scipy_backend.solve_with_highs)
    register_backend("bnb", branch_and_bound.solve_with_bnb)
    register_backend("simplex", simplex.solve_with_simplex)


_install_default_backends()
