"""Adapters from the :class:`repro.ilp.model.Model` layer to scipy solvers.

Two entry points:

* :func:`solve_with_highs` — full MILP solve via :func:`scipy.optimize.milp`
  (the HiGHS branch-and-cut engine).  This is the production default
  backend, playing the role CPLEX played in the paper.
* :func:`solve_relaxation` — LP relaxation via :func:`scipy.optimize.linprog`,
  used by the from-scratch branch & bound when configured with
  ``lp_engine="scipy"``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize, sparse

from repro.ilp.compile import CompiledModel, ensure_compiled
from repro.ilp.status import Solution, SolveStatus

__all__ = ["solve_with_highs", "solve_relaxation"]


def _bounds(form) -> optimize.Bounds:
    return optimize.Bounds(lb=form.lb, ub=form.ub)


def _sparse_blocks(form):
    """``(A_ub, A_eq)`` as CSR matrices, zero-copy for compiled models."""
    if isinstance(form, CompiledModel):
        return form.a_ub_csr(), form.a_eq_csr()
    return sparse.csr_matrix(form.a_ub), sparse.csr_matrix(form.a_eq)


def _linear_constraints(form) -> list[optimize.LinearConstraint]:
    a_ub, a_eq = _sparse_blocks(form)
    constraints = []
    if a_ub.shape[0]:
        constraints.append(
            optimize.LinearConstraint(
                a_ub,
                -np.inf * np.ones(a_ub.shape[0]),
                form.b_ub,
            )
        )
    if a_eq.shape[0]:
        constraints.append(
            optimize.LinearConstraint(a_eq, form.b_eq, form.b_eq)
        )
    return constraints


def solve_with_highs(model, **options) -> Solution:
    """Solve a MILP with scipy's HiGHS engine.

    Honors ``first_feasible`` by setting a HiGHS MIP gap so large that the
    search stops as soon as an incumbent exists, which reproduces the
    paper's use of CPLEX as a constraint-satisfaction engine.

    Accepts either a :class:`repro.ilp.model.Model` or a pre-compiled
    :class:`repro.ilp.compile.CompiledModel`; the sparse rows of the
    compiled form are handed to HiGHS without densification.

    ``warm_start`` (a name -> value mapping) is accepted for interface
    parity with :func:`repro.ilp.branch_and_bound.solve_with_bnb` but
    ignored: :func:`scipy.optimize.milp` exposes no MIP-start hook.  It
    *is* honored by the status-4 fallback, which re-dispatches to the
    from-scratch branch & bound with the original options.
    """
    form = ensure_compiled(model)
    milp_options: dict = {}
    time_limit = options.get("time_limit")
    if time_limit is not None:
        milp_options["time_limit"] = float(time_limit)
    node_limit = options.get("node_limit")
    if node_limit is not None:
        milp_options["node_limit"] = int(node_limit)
    if options.get("first_feasible"):
        # Accept any incumbent: a relative gap of 1e20 terminates HiGHS as
        # soon as a primal solution is known.
        milp_options["mip_rel_gap"] = 1e20

    result = optimize.milp(
        c=form.c,
        constraints=_linear_constraints(form),
        integrality=form.is_integral.astype(int),
        bounds=_bounds(form),
        options=milp_options,
    )
    if result.status == 4:
        # HiGHS occasionally aborts with "Solve error" (status 4) on
        # models its presolve mishandles; re-running without presolve
        # solves most of them cleanly.
        result = optimize.milp(
            c=form.c,
            constraints=_linear_constraints(form),
            integrality=form.is_integral.astype(int),
            bounds=_bounds(form),
            options={**milp_options, "presolve": False},
        )
    if result.status == 4:
        # Still erroring: hand the model to the native branch & bound
        # instead of reporting ERROR for a perfectly well-posed MILP
        # (scipy's vendored HiGHS has rare MIP-transform failures).
        from repro.ilp.branch_and_bound import solve_with_bnb

        return solve_with_bnb(model, **options)

    iterations = int(getattr(result, "mip_node_count", 0) or 0)
    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    elif result.status == 1 and result.x is not None:
        # Iteration/time limit with an incumbent.
        status = SolveStatus.FEASIBLE
    elif result.status == 1:
        status = (
            SolveStatus.TIME_LIMIT
            if time_limit is not None
            else SolveStatus.NODE_LIMIT
        )
    else:
        status = SolveStatus.ERROR

    if options.get("first_feasible") and status is SolveStatus.OPTIMAL:
        # With the huge gap the "optimum" is merely the first incumbent.
        status = SolveStatus.FEASIBLE

    values: dict[str, float] = {}
    objective = math.nan
    if result.x is not None:
        x = np.asarray(result.x, dtype=float)
        # HiGHS can return values a hair outside bounds / integrality.
        x = np.clip(x, form.lb, form.ub)
        x[form.is_integral] = np.round(x[form.is_integral])
        values = form.values_to_dict(x)
        objective = form.objective_at(x)
    bound = getattr(result, "mip_dual_bound", None)
    if bound is not None and not math.isfinite(bound):
        bound = None
    return Solution(
        status=status,
        objective=objective,
        values=values,
        iterations=iterations,
        bound=bound,
    )


def solve_relaxation(
    form,
    extra_lb: np.ndarray | None = None,
    extra_ub: np.ndarray | None = None,
    time_limit: float | None = None,
) -> tuple[SolveStatus, np.ndarray | None, float, int]:
    """Solve the LP relaxation of a standard form with scipy ``linprog``.

    ``extra_lb``/``extra_ub`` override the form's bounds (used for branch
    & bound node bounds).  Returns ``(status, x, objective, iterations)``
    with the objective in the minimization direction and *excluding* the
    constant term ``form.c0``.  ``form`` may be a dense ``StandardForm``
    or a :class:`repro.ilp.compile.CompiledModel` (solved sparsely).
    """
    lb = form.lb if extra_lb is None else extra_lb
    ub = form.ub if extra_ub is None else extra_ub
    if np.any(lb > ub + 1e-12):
        return SolveStatus.INFEASIBLE, None, math.nan, 0
    lp_options: dict = {"presolve": True}
    if time_limit is not None:
        lp_options["time_limit"] = float(time_limit)
    a_ub, a_eq = _sparse_blocks(form)
    result = optimize.linprog(
        c=form.c,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=form.b_ub if a_ub.shape[0] else None,
        A_eq=a_eq if a_eq.shape[0] else None,
        b_eq=form.b_eq if a_eq.shape[0] else None,
        bounds=np.column_stack([lb, ub]),
        method="highs",
        options=lp_options,
    )
    iterations = int(getattr(result, "nit", 0) or 0)
    if result.status == 0:
        return (
            SolveStatus.OPTIMAL,
            np.asarray(result.x, dtype=float),
            float(result.fun),
            iterations,
        )
    if result.status == 2:
        return SolveStatus.INFEASIBLE, None, math.nan, iterations
    if result.status == 3:
        return SolveStatus.UNBOUNDED, None, -math.inf, iterations
    if result.status == 1:
        return SolveStatus.TIME_LIMIT, None, math.nan, iterations
    return SolveStatus.ERROR, None, math.nan, iterations
