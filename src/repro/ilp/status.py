"""Solve statuses and solution value objects shared by all backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    The distinction between ``OPTIMAL`` and ``FEASIBLE`` matters for this
    reproduction: the paper's iterative procedure deliberately asks the ILP
    solver only for *a* constraint-satisfying point (``FEASIBLE``), never for
    a proven optimum, and tightens constraints between calls instead.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """``True`` when a (possibly sub-optimal) assignment is available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(frozen=True)
class Solution:
    """An assignment of values to variables produced by a backend.

    Attributes
    ----------
    status:
        Outcome of the solve.
    objective:
        Objective value at the returned point (``float('nan')`` when no
        point is available).
    values:
        Mapping from variable *name* to value.  Only populated when
        ``status.has_solution``.
    iterations:
        Backend-specific work measure (simplex pivots or B&B nodes).
    wall_time:
        Seconds spent inside the backend.
    bound:
        Best proven dual bound at termination, when the backend computes
        one; ``None`` otherwise.
    stats:
        Backend-specific extras that are not part of the verdict — e.g.
        the from-scratch branch & bound reports ``root_basis`` (the root
        LP's optimal simplex basis, reusable as a warm start for
        RHS-only re-solves) and ``basis_restarts`` (node LPs that
        skipped phase I by crashing onto a previous basis).  Excluded
        from equality: two solutions with the same verdict are the same
        solution regardless of how the solver got there.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Mapping[str, float] = field(default_factory=dict)
    iterations: int = 0
    wall_time: float = 0.0
    bound: float | None = None
    stats: Mapping[str, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __bool__(self) -> bool:
        return self.status.has_solution

    def value(self, name: str) -> float:
        """Return the value of variable ``name``.

        Raises
        ------
        KeyError
            If the solution carries no assignment (infeasible solve) or the
            variable name is unknown.
        """
        return self.values[name]
