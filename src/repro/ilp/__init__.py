"""A self-contained mixed-integer linear programming stack.

This subpackage replaces the CPLEX solver used in the paper.  It provides:

* a modeling layer (:class:`Variable`, :class:`LinExpr`, :class:`Model`)
  with PuLP-like operator syntax,
* three interchangeable backends — scipy/HiGHS (``"highs"``), a
  from-scratch branch & bound over LP relaxations (``"bnb"``), and a
  from-scratch two-phase simplex for pure LPs (``"simplex"``),
* linearization helpers for binary products (used by the memory
  constraints of the temporal-partitioning formulation),
* a conservative presolver and a CPLEX LP-format writer.

Quick example::

    from repro.ilp import Model, VarType

    m = Model("demo")
    x = m.add_var("x", ub=4, vtype=VarType.INTEGER)
    y = m.add_binary("y")
    m.add_constr(2 * x + y <= 7)
    m.set_objective(-(3 * x + 2 * y))    # maximize 3x + 2y
    solution = m.solve(backend="bnb")
"""

from repro.ilp.errors import (
    BackendNotAvailableError,
    ExpressionError,
    IlpError,
    ModelError,
    SolverError,
    UnboundedError,
)
from repro.ilp.compile import (
    CompiledModel,
    RowGroup,
    compile_model,
    ensure_compiled,
)
from repro.ilp.expr import Constraint, LinExpr, Sense, Variable, VarType, lin_sum
from repro.ilp.linearize import product_binary, product_of_sums
from repro.ilp.lp_writer import lp_string, write_lp
from repro.ilp.model import (
    Model,
    ObjectiveSense,
    StandardForm,
    register_backend,
    solve_compiled,
)
from repro.ilp.presolve import PresolveResult, presolve
from repro.ilp.status import Solution, SolveStatus

__all__ = [
    "BackendNotAvailableError",
    "CompiledModel",
    "RowGroup",
    "Constraint",
    "ExpressionError",
    "IlpError",
    "LinExpr",
    "Model",
    "ModelError",
    "ObjectiveSense",
    "PresolveResult",
    "Sense",
    "Solution",
    "SolveStatus",
    "SolverError",
    "StandardForm",
    "UnboundedError",
    "VarType",
    "Variable",
    "compile_model",
    "ensure_compiled",
    "lin_sum",
    "lp_string",
    "presolve",
    "solve_compiled",
    "product_binary",
    "product_of_sums",
    "register_backend",
    "write_lp",
]
