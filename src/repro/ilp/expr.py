"""Linear expressions, variables and constraints for the MILP model layer.

The algebra intentionally mirrors what users of PuLP or python-mip expect::

    x = Variable("x", lb=0, ub=4, vtype=VarType.INTEGER)
    y = Variable("y", vtype=VarType.BINARY)
    expr = 3 * x - 2 * y + 1
    constraint = expr <= 10

Only *linear* forms are representable.  Multiplying two expressions that
both contain variables raises :class:`~repro.ilp.errors.ExpressionError`;
products of binary variables are linearized explicitly via
:mod:`repro.ilp.linearize`.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Iterable, Iterator, Mapping

from repro.ilp.errors import ExpressionError

__all__ = ["VarType", "Variable", "LinExpr", "Constraint", "Sense", "lin_sum"]

#: Process-wide counter behind ``Variable._uid``.  The uid exists solely
#: to make variables hashable by identity; it is never used for ordering.
_uid_counter = itertools.count()


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"

    @property
    def is_integral(self) -> bool:
        return self is not VarType.CONTINUOUS


class Sense(enum.Enum):
    """Relational sense of a constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A single decision variable.

    Variables are identified by object identity (hashing uses a private
    process-wide ``_uid``), while ``name`` is a human-readable label used
    in solutions and LP-file export.  Names must therefore be unique
    within one model; :class:`repro.ilp.model.Model` enforces this.

    ``index`` is the variable's *deterministic ordering key*: for
    variables registered in a :class:`~repro.ilp.model.Model` it is the
    position within that model (assigned by ``add_var``), so identical
    models built at different points of the process lifetime order,
    print and compile identically.  Standalone variables fall back to
    their creation order.
    """

    __slots__ = ("name", "lb", "ub", "vtype", "index", "_uid")

    def __init__(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> None:
        if not name:
            raise ExpressionError("variable name must be a non-empty string")
        if vtype is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise ExpressionError(
                f"variable {name!r} has empty domain [{lb}, {ub}]"
            )
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self._uid = next(_uid_counter)
        self.index = self._uid

    # -- conversion to expressions ------------------------------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    # -- algebra (delegates to LinExpr) --------------------------------

    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __neg__(self):
        return -self.to_expr()

    def __mul__(self, other):
        return self.to_expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.to_expr() / other

    # -- comparisons build constraints ---------------------------------

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._uid

    def __repr__(self) -> str:
        return (
            f"Variable({self.name!r}, lb={self.lb}, ub={self.ub}, "
            f"vtype={self.vtype.value})"
        )


class LinExpr:
    """An affine form ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------

    @staticmethod
    def from_value(value) -> "LinExpr":
        """Coerce a variable, expression, or number into a LinExpr."""
        if isinstance(value, LinExpr):
            return value.copy()
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise ExpressionError(
            f"cannot interpret {value!r} as a linear expression"
        )

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # -- inspection ------------------------------------------------------

    def coefficient(self, var: Variable) -> float:
        return self.terms.get(var, 0.0)

    def variables(self) -> Iterator[Variable]:
        return iter(self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate at a point given as a ``name -> value`` mapping."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * values[var.name]
        return total

    def simplified(self, tol: float = 0.0) -> "LinExpr":
        """Return a copy with coefficients of magnitude <= ``tol`` dropped."""
        kept = {v: c for v, c in self.terms.items() if abs(c) > tol}
        return LinExpr(kept, self.constant)

    # -- in-place accumulation (used by model builders in hot loops) -----

    def add_term(self, var: Variable, coef: float) -> "LinExpr":
        """Add ``coef * var`` in place and return ``self``."""
        new = self.terms.get(var, 0.0) + coef
        if new == 0.0:
            self.terms.pop(var, None)
        else:
            self.terms[var] = new
        return self

    # -- algebra ---------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.from_value(other)
        result = self.copy()
        result.constant += other.constant
        for var, coef in other.terms.items():
            result.add_term(var, coef)
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.from_value(other))

    def __rsub__(self, other) -> "LinExpr":
        return (-self) + other

    def __neg__(self) -> "LinExpr":
        return LinExpr(
            {var: -coef for var, coef in self.terms.items()}, -self.constant
        )

    def __mul__(self, other) -> "LinExpr":
        if isinstance(other, (Variable, LinExpr)):
            other_expr = LinExpr.from_value(other)
            if self.is_constant:
                return other_expr * self.constant
            if other_expr.is_constant:
                return self * other_expr.constant
            raise ExpressionError(
                "product of two non-constant expressions is not linear; "
                "use repro.ilp.linearize for binary products"
            )
        scale = float(other)
        return LinExpr(
            {var: coef * scale for var, coef in self.terms.items()},
            self.constant * scale,
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "LinExpr":
        divisor = float(other)
        if divisor == 0.0:
            raise ZeroDivisionError("division of linear expression by zero")
        return self * (1.0 / divisor)

    # -- comparisons build constraints ------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.from_value(other), Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.from_value(other), Sense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - LinExpr.from_value(other), Sense.EQ)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # expressions are mutable

    def __repr__(self) -> str:
        parts = []
        for var, coef in sorted(self.terms.items(), key=lambda kv: kv[0].index):
            parts.append(f"{coef:+g}*{var.name}")
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A linear constraint in the normalized form ``expr (sense) rhs``.

    Internally the expression's constant is moved to the right-hand side,
    so ``expr`` always has ``constant == 0``.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(
        self, expr: LinExpr, sense: Sense, name: str | None = None
    ) -> None:
        # Zero coefficients (e.g. from `0 * x`) are dropped so downstream
        # consumers (presolve singleton detection) see true arity.
        self.expr = LinExpr(
            {var: coef for var, coef in expr.terms.items() if coef != 0.0}
        )
        self.sense = sense
        self.rhs = -expr.constant + 0.0   # "+ 0.0" normalizes -0.0
        self.name = name

    def named(self, name: str) -> "Constraint":
        """Return ``self`` after attaching a name (builder-style helper)."""
        self.name = name
        return self

    def violation(self, values: Mapping[str, float]) -> float:
        """Amount by which a point violates the constraint (0 if satisfied)."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def is_satisfied(
        self, values: Mapping[str, float], tol: float = 1e-6
    ) -> bool:
        return self.violation(values) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} {self.rhs:g}{label})"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one LinExpr.

    Equivalent to ``sum(items)`` but avoids quadratic blowup from repeated
    expression copies: terms are accumulated in place into one result.
    """
    result = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            result.add_term(item, 1.0)
        elif isinstance(item, LinExpr):
            result.constant += item.constant
            for var, coef in item.terms.items():
                result.add_term(var, coef)
        else:
            result.constant += float(item)
    return result
