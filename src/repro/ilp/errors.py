"""Exception types raised by the :mod:`repro.ilp` solver stack."""

from __future__ import annotations


class IlpError(Exception):
    """Base class for every error raised by the ILP layer."""


class ModelError(IlpError):
    """The model is malformed (duplicate names, frozen model mutated, ...)."""


class ExpressionError(IlpError):
    """An algebraic operation on linear expressions is not representable.

    Raised for instance when two variables are multiplied together: the
    modeling layer only represents *linear* expressions, and products of
    decision variables must go through :mod:`repro.ilp.linearize`.
    """


class SolverError(IlpError):
    """A backend failed in an unexpected way (numerical breakdown, ...)."""


class UnboundedError(SolverError):
    """The linear relaxation is unbounded in the optimization direction."""


class BackendNotAvailableError(SolverError):
    """The requested solver backend is not installed or not registered."""
