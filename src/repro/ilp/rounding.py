"""Primal heuristics used inside the from-scratch branch & bound.

Two cheap heuristics operate on an LP-relaxation point:

* :func:`round_nearest` — round every integral variable to the nearest
  integer and accept the point if it satisfies all rows.
* :func:`dive` — iteratively fix the *most decided* fractional variable to
  its nearest integer and re-solve the LP, up to a fixed number of
  re-solves.  This is the classic "diving" heuristic and finds feasible
  points for the temporal-partitioning models very quickly, which matters
  because the paper's procedure only ever asks for feasibility.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ilp.status import SolveStatus

__all__ = ["is_integral", "feasible_point", "round_nearest", "dive"]

_INT_TOL = 1e-6


def is_integral(x: np.ndarray, mask: np.ndarray, tol: float = _INT_TOL) -> bool:
    """``True`` when every masked entry of ``x`` is integer within ``tol``."""
    if not mask.any():
        return True
    vals = x[mask]
    return bool(np.all(np.abs(vals - np.round(vals)) <= tol))


def feasible_point(form, x: np.ndarray, tol: float = 1e-6) -> bool:
    """``True`` when ``x`` satisfies the form's bounds and all rows.

    Shared by the rounding heuristics and the warm-start validation in
    :mod:`repro.ilp.branch_and_bound` — one feasibility definition, one
    tolerance.
    """
    if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
        return False
    if form.a_ub.shape[0] and np.any(form.a_ub @ x > form.b_ub + tol):
        return False
    if form.a_eq.shape[0] and np.any(
        np.abs(form.a_eq @ x - form.b_eq) > tol
    ):
        return False
    return True


_feasible = feasible_point


def round_nearest(form, x: np.ndarray) -> np.ndarray | None:
    """Round integral entries of ``x``; return the point if it is feasible."""
    candidate = x.copy()
    candidate[form.is_integral] = np.round(candidate[form.is_integral])
    candidate = np.clip(candidate, form.lb, form.ub)
    if _feasible(form, candidate):
        return candidate
    return None


def dive(
    form,
    x: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    solve_node,
    max_resolves: int = 25,
) -> tuple[np.ndarray, float] | None:
    """LP diving: repeatedly fix the least-fractional variable and re-solve.

    Parameters
    ----------
    form:
        The :class:`repro.ilp.model.StandardForm` being solved.
    x:
        Current LP point to start diving from.
    lb, ub:
        Node bounds (copied, never mutated).
    solve_node:
        Callable ``(lb, ub) -> (status, x, objective)`` solving the LP
        relaxation under the given bounds.
    max_resolves:
        Budget of LP re-solves before giving up.

    Returns
    -------
    ``(x, objective)`` for an integer-feasible point, or ``None``.
    """
    lb = lb.copy()
    ub = ub.copy()
    current = x.copy()
    for _ in range(max_resolves):
        rounded = round_nearest(form, current)
        if rounded is not None and is_integral(rounded, form.is_integral):
            return rounded, form.objective_at(rounded)
        frac = np.abs(
            current[form.is_integral]
            - np.round(current[form.is_integral])
        )
        fractional_positions = np.flatnonzero(frac > _INT_TOL)
        if fractional_positions.size == 0:
            # Integral but infeasible after clipping: dead end.
            return None
        integral_indices = np.flatnonzero(form.is_integral)
        # Fix the variable closest to an integer (least fractional): this
        # perturbs the LP least and keeps feasibility likely.
        pick = integral_indices[
            fractional_positions[np.argmin(frac[fractional_positions])]
        ]
        target = float(np.round(current[pick]))
        target = min(max(target, lb[pick]), ub[pick])
        lb[pick] = ub[pick] = target
        status, current, _objective = solve_node(lb, ub)
        if status is not SolveStatus.OPTIMAL or current is None:
            return None
    if current is not None and is_integral(current, form.is_integral):
        candidate = round_nearest(form, current)
        if candidate is not None:
            return candidate, form.objective_at(candidate)
    return None


def fractionality(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Distance of each masked entry from its nearest integer (0 elsewhere)."""
    out = np.zeros_like(x)
    vals = x[mask]
    out[mask] = np.abs(vals - np.round(vals))
    return out


def most_fractional_index(
    x: np.ndarray, mask: np.ndarray, weights: np.ndarray | None = None
) -> int | None:
    """Index of the masked entry farthest from integrality, or ``None``.

    ``weights`` breaks ties (larger weight preferred); the branch & bound
    passes absolute objective coefficients so that decisions with latency
    impact are branched early.
    """
    frac = fractionality(x, mask)
    fractional = frac > _INT_TOL
    if not fractional.any():
        return None
    score = np.where(fractional, 0.5 - np.abs(frac - 0.5), -math.inf)
    if weights is not None:
        score = score + 1e-3 * np.where(fractional, np.abs(weights), 0.0)
    return int(np.argmax(score))
