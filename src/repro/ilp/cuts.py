"""Knapsack cover cuts for binary rows.

A row ``Σ a_j x_j ≤ b`` with ``a_j > 0`` over binary variables admits
*cover inequalities*: for any cover ``C`` (a set with ``Σ_{j∈C} a_j > b``)
every integer point satisfies ``Σ_{j∈C} x_j ≤ |C| − 1``.  Separating a
violated cover for a fractional LP point is a knapsack problem; the
standard greedy (sort by ``(1 − x_j*)``) finds good covers fast.

The temporal-partitioning resource rows (6) are exactly of this form
(areas are positive, the ``Y`` are binary), so cover cuts tighten the
packing relaxation — the weak spot identified by the infeasibility
diagnosis ("fragmentation" cases).  The from-scratch branch & bound can
apply a round of cuts at the root (``BnbOptions.root_cuts``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CoverCut", "find_cover_cuts", "apply_cuts"]

_EPS = 1e-9


@dataclass(frozen=True)
class CoverCut:
    """A cover inequality ``Σ_{j∈cover} x_j ≤ len(cover) − 1``.

    ``family`` names the constraint family (row-group id, see
    :class:`repro.ilp.compile.RowGroup`) of the row the cut was
    separated from — i.e. which family the cut strengthens.  The paper
    scenario separates from the ``resource`` family (equation (6)); the
    slot scenario from ``slot_resource``.
    """

    row_index: int
    cover: tuple[int, ...]          # column indices
    family: str = "resource"

    @property
    def rhs(self) -> float:
        return float(len(self.cover) - 1)

    def violation(self, x: np.ndarray) -> float:
        return float(x[list(self.cover)].sum() - self.rhs)


def _minimal_cover(
    coefficients: np.ndarray,
    rhs: float,
    x_star: np.ndarray,
    columns: np.ndarray,
) -> tuple[int, ...] | None:
    """Greedy separation: build a cover maximizing LP violation.

    Picks columns in increasing ``1 − x*`` order until the weights exceed
    ``rhs``, then strips redundant members to make the cover minimal.
    """
    order = columns[np.argsort(1.0 - x_star[columns])]
    picked: list[int] = []
    weight = 0.0
    for j in order:
        picked.append(int(j))
        weight += coefficients[j]
        if weight > rhs + _EPS:
            break
    else:
        return None  # all columns together do not exceed rhs: no cover
    # Make minimal: drop members whose removal keeps it a cover.
    for j in sorted(picked, key=lambda col: coefficients[col]):
        if weight - coefficients[j] > rhs + _EPS:
            picked.remove(j)
            weight -= coefficients[j]
    return tuple(sorted(picked))


def find_cover_cuts(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    is_binary: np.ndarray,
    x_star: np.ndarray,
    max_cuts: int = 50,
    min_violation: float = 1e-4,
    rows: "Sequence[int] | None" = None,
    family: str = "resource",
) -> list[CoverCut]:
    """Separate violated cover inequalities at the LP point ``x_star``.

    Only rows whose support is entirely positive-coefficient binary
    columns are considered (exactly the resource rows of the
    temporal-partitioning model).  ``rows`` restricts separation to the
    given row indices — the persistent cut pool passes the template's
    window-independent resource rows here so no cut ever derives from a
    row whose RHS changes between bisection windows.  ``family`` stamps
    each cut with the constraint-family id those rows belong to.
    """
    cuts: list[CoverCut] = []
    candidates = range(a_ub.shape[0]) if rows is None else rows
    for i in candidates:
        i = int(i)
        row = a_ub[i]
        support = np.flatnonzero(np.abs(row) > _EPS)
        if support.size < 2:
            continue
        if np.any(row[support] <= 0) or not np.all(is_binary[support]):
            continue
        # Consider only columns with fractional value worth covering.
        interesting = support[x_star[support] > _EPS]
        if interesting.size < 2:
            continue
        cover = _minimal_cover(row, float(b_ub[i]), x_star, interesting)
        if cover is None:
            continue
        cut = CoverCut(row_index=i, cover=cover, family=family)
        if cut.violation(x_star) >= min_violation:
            cuts.append(cut)
            if len(cuts) >= max_cuts:
                break
    return cuts


def apply_cuts(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    cuts: list[CoverCut],
    num_columns: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Append cut rows to an inequality system."""
    if not cuts:
        return a_ub, b_ub
    rows = np.zeros((len(cuts), num_columns))
    rhs = np.zeros(len(cuts))
    for k, cut in enumerate(cuts):
        rows[k, list(cut.cover)] = 1.0
        rhs[k] = cut.rhs
    return np.vstack([a_ub, rows]), np.concatenate([b_ub, rhs])
