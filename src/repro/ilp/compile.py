"""Sparse standard-form compilation of MILP models.

A :class:`CompiledModel` is the canonical *solver-facing* view of a
model: CSR-style numpy arrays for the constraint matrix, right-hand
sides, variable bounds, an integrality mask and a stable name -> column
index map.  It is built once per model structure
(:func:`compile_model` / :meth:`repro.ilp.model.Model.compile`) and then
shared by every backend — the HiGHS adapter consumes the sparse rows
directly, the dense simplex and the from-scratch branch & bound read the
cached dense views, and :mod:`repro.solve.fingerprint` hashes the arrays
instead of re-walking ``dict``-of-terms expressions.

Cheap derived views make incremental re-solves possible without
recompiling:

* :meth:`CompiledModel.with_b_ub` — a sibling sharing every array except
  a patched copy of ``b_ub`` (used by the model templates of
  :mod:`repro.core.formulation` to slide the latency window),
* :meth:`CompiledModel.truncate_ub_rows` — a prefix view dropping
  trailing inequality rows without copying the matrix (used to drop the
  optional ``latency_lb`` row when the window's lower edge is zero).

Row order matches :meth:`repro.ilp.model.Model.to_standard_form`
exactly: inequality rows (``>=`` negated to ``<=``) in constraint
insertion order, then equality rows in insertion order, so a dense
round-trip through :meth:`CompiledModel.to_standard_form` is
bit-identical to the legacy path.

Because the derived views *alias* their parent's arrays, every array of
a :class:`CompiledModel` is frozen (``writeable=False``) at compile
time: an accidental in-place write — which would silently corrupt every
template sibling sharing the buffer — fails loudly with numpy's
``ValueError: assignment destination is read-only`` instead.  Backends
needing scratch space must ``.copy()`` first (they all do); the custom
lint rule RL001 (``tools/repro_lint.py``) guards call sites.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.ilp.expr import Sense, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ilp.model import Model, StandardForm

__all__ = ["CompiledModel", "RowGroup", "compile_model", "ensure_compiled"]


@dataclass(frozen=True)
class RowGroup:
    """Provenance of one constraint family in the compiled blocks.

    Families are built sequentially (see
    :mod:`repro.core.families`), so each family's rows occupy one
    contiguous span per block: ``[ub_start, ub_stop)`` in the
    inequality block and ``[eq_start, eq_stop)`` in the equality
    block.  Consumers patch or scan rows *by family id* through
    :meth:`CompiledModel.row_group` instead of relying on positional
    conventions or name-prefix scans.
    """

    family: str
    ub_start: int
    ub_stop: int
    eq_start: int
    eq_stop: int

    @property
    def num_ub(self) -> int:
        return self.ub_stop - self.ub_start

    @property
    def num_eq(self) -> int:
        return self.eq_stop - self.eq_start

    def ub_rows(self) -> range:
        """Inequality-row indices owned by this family."""
        return range(self.ub_start, self.ub_stop)

    def eq_rows(self) -> range:
        """Equality-row indices owned by this family."""
        return range(self.eq_start, self.eq_stop)

    def clipped_ub(self, num_rows: int) -> "RowGroup":
        """The group after truncating the ub block to ``num_rows``."""
        return RowGroup(
            family=self.family,
            ub_start=min(self.ub_start, num_rows),
            ub_stop=min(self.ub_stop, num_rows),
            eq_start=self.eq_start,
            eq_stop=self.eq_stop,
        )


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only and return it.

    Compiled arrays are shared across template siblings (see
    :meth:`CompiledModel.with_b_ub` / :meth:`CompiledModel
    .truncate_ub_rows`), so in-place mutation would corrupt models that
    look independent; freezing turns that silent corruption into an
    immediate ``ValueError``.  Views taken of a frozen array (the
    truncated prefix siblings) inherit the read-only flag from numpy.
    """
    array.flags.writeable = False
    return array


class _ViewCache:
    """Lazily materialized dense/scipy views, shared by RHS siblings.

    All :class:`CompiledModel` instances produced by
    :meth:`CompiledModel.with_b_ub` share one ``_ViewCache`` because
    they share the same matrix structure; the dense and scipy-sparse
    renderings are therefore built at most once per structure no matter
    how many windows are instantiated from it.
    """

    __slots__ = ("dense_ub", "dense_eq", "csr_ub", "csr_eq")

    def __init__(self) -> None:
        self.dense_ub: np.ndarray | None = None
        self.dense_eq: np.ndarray | None = None
        self.csr_ub = None
        self.csr_eq = None


def _dense_from_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    num_rows: int,
    num_cols: int,
) -> np.ndarray:
    out = np.zeros((num_rows, num_cols))
    for i in range(num_rows):
        lo, hi = indptr[i], indptr[i + 1]
        out[i, indices[lo:hi]] = data[lo:hi]
    return out


@dataclass
class CompiledModel:
    """CSR standard form of one MILP, shared by every backend.

    The objective is always stored in the *minimization* direction (a
    MAXIMIZE model is negated at compile time, exactly like
    ``to_standard_form``); ``maximize`` records the original sense so
    :func:`repro.ilp.model.solve_compiled` can flip reported values
    back.
    """

    variables: tuple[Variable, ...]
    c: np.ndarray
    c0: float
    # Inequality block, normalized to `<=` (GE rows negated).
    ub_indptr: np.ndarray
    ub_indices: np.ndarray
    ub_data: np.ndarray
    b_ub: np.ndarray
    ub_names: tuple[str | None, ...]
    # Equality block.
    eq_indptr: np.ndarray
    eq_indices: np.ndarray
    eq_data: np.ndarray
    b_eq: np.ndarray
    eq_names: tuple[str | None, ...]
    lb: np.ndarray
    ub: np.ndarray
    is_integral: np.ndarray
    maximize: bool = False
    #: Named row-group provenance (family id -> contiguous row spans),
    #: attached by builders that know the family structure (the
    #: formulation layer); ``None`` for models compiled without one.
    #: Purely metadata: excluded from :meth:`fingerprint`, which hashes
    #: the raw arrays only.
    row_groups: "tuple[RowGroup, ...] | None" = None
    _views: _ViewCache = field(default_factory=_ViewCache, repr=False)
    _var_index: dict[str, int] | None = field(default=None, repr=False)
    _fingerprints: dict[tuple[str, ...], str] = field(
        default_factory=dict, repr=False
    )

    # -- shapes --------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_ub_rows(self) -> int:
        return len(self.b_ub)

    @property
    def num_eq_rows(self) -> int:
        return len(self.b_eq)

    @property
    def var_index(self) -> dict[str, int]:
        """Stable ``name -> column`` map (model insertion order)."""
        if self._var_index is None:
            self._var_index = {
                var.name: j for j, var in enumerate(self.variables)
            }
        return self._var_index

    # -- dense / scipy views (cached, shared across RHS siblings) ------------

    @property
    def a_ub(self) -> np.ndarray:
        """Dense inequality matrix (cached; rows normalized to ``<=``)."""
        cache = self._views
        if cache.dense_ub is None or cache.dense_ub.shape[0] < self.num_ub_rows:
            cache.dense_ub = _frozen(
                _dense_from_csr(
                    self.ub_indptr,
                    self.ub_indices,
                    self.ub_data,
                    self.num_ub_rows,
                    self.num_vars,
                )
            )
        return cache.dense_ub[: self.num_ub_rows]

    @property
    def a_eq(self) -> np.ndarray:
        """Dense equality matrix (cached)."""
        cache = self._views
        if cache.dense_eq is None or cache.dense_eq.shape[0] < self.num_eq_rows:
            cache.dense_eq = _frozen(
                _dense_from_csr(
                    self.eq_indptr,
                    self.eq_indices,
                    self.eq_data,
                    self.num_eq_rows,
                    self.num_vars,
                )
            )
        return cache.dense_eq[: self.num_eq_rows]

    def a_ub_csr(self):
        """Scipy CSR view of the inequality block (cached, zero-copy)."""
        from scipy import sparse

        cache = self._views
        if cache.csr_ub is None or cache.csr_ub.shape[0] != self.num_ub_rows:
            cache.csr_ub = sparse.csr_matrix(
                (self.ub_data, self.ub_indices, self.ub_indptr),
                shape=(self.num_ub_rows, self.num_vars),
            )
        return cache.csr_ub

    def a_eq_csr(self):
        """Scipy CSR view of the equality block (cached, zero-copy)."""
        from scipy import sparse

        cache = self._views
        if cache.csr_eq is None or cache.csr_eq.shape[0] != self.num_eq_rows:
            cache.csr_eq = sparse.csr_matrix(
                (self.eq_data, self.eq_indices, self.eq_indptr),
                shape=(self.num_eq_rows, self.num_vars),
            )
        return cache.csr_eq

    # -- solution helpers (StandardForm-compatible) --------------------------

    def values_to_dict(self, x: Sequence[float]) -> dict[str, float]:
        return {var.name: float(val) for var, val in zip(self.variables, x)}

    def objective_at(self, x: np.ndarray) -> float:
        return float(self.c @ x) + self.c0

    def to_standard_form(self) -> "StandardForm":
        """Materialize the legacy dense :class:`StandardForm` view."""
        from repro.ilp.model import StandardForm

        return StandardForm(
            variables=list(self.variables),
            c=self.c,
            c0=self.c0,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            lb=self.lb,
            ub=self.ub,
            is_integral=self.is_integral,
        )

    # -- incremental views ---------------------------------------------------

    def row_group(self, family: str) -> RowGroup:
        """The row span of one constraint family, by family id.

        Raises :class:`KeyError` when the model carries no provenance
        (``row_groups is None``) or the family is unknown.
        """
        for group in self.row_groups or ():
            if group.family == family:
                return group
        raise KeyError(family)

    def row_position(self, name: str) -> tuple[str, int]:
        """Locate a named row: ``("ub"|"eq", index within its block)``.

        For ``>=`` rows the stored right-hand side is the *negated*
        bound; callers patching ``b_ub`` must negate accordingly.
        """
        for i, row_name in enumerate(self.ub_names):
            if row_name == name:
                return ("ub", i)
        for i, row_name in enumerate(self.eq_names):
            if row_name == name:
                return ("eq", i)
        raise KeyError(name)

    def with_b_ub(self, updates: Mapping[int, float]) -> "CompiledModel":
        """Sibling sharing every array except a patched copy of ``b_ub``.

        ``updates`` maps inequality-row indices to new stored right-hand
        sides (already in the normalized ``<=`` direction).  The matrix
        structure, bounds, objective and the dense/scipy view caches are
        shared, so instantiating a new window costs one ``b_ub`` copy.
        The patched copy is frozen again before it is handed out.
        """
        b_ub = self.b_ub.copy()
        for row, value in updates.items():
            b_ub[row] = value
        b_ub = _frozen(b_ub)
        return CompiledModel(
            variables=self.variables,
            c=self.c,
            c0=self.c0,
            ub_indptr=self.ub_indptr,
            ub_indices=self.ub_indices,
            ub_data=self.ub_data,
            b_ub=b_ub,
            ub_names=self.ub_names,
            eq_indptr=self.eq_indptr,
            eq_indices=self.eq_indices,
            eq_data=self.eq_data,
            b_eq=self.b_eq,
            eq_names=self.eq_names,
            lb=self.lb,
            ub=self.ub,
            is_integral=self.is_integral,
            maximize=self.maximize,
            row_groups=self.row_groups,
            _views=self._views,
            _var_index=self._var_index,
        )

    def with_b_eq(self, updates: Mapping[int, float]) -> "CompiledModel":
        """Sibling sharing every array except a patched copy of ``b_eq``.

        The equality-block counterpart of :meth:`with_b_ub`; used by
        :meth:`repro.ilp.model.Model.set_rhs` to patch an equality
        right-hand side without mutating arrays that template siblings
        may alias.
        """
        b_eq = self.b_eq.copy()
        for row, value in updates.items():
            b_eq[row] = value
        b_eq = _frozen(b_eq)
        return CompiledModel(
            variables=self.variables,
            c=self.c,
            c0=self.c0,
            ub_indptr=self.ub_indptr,
            ub_indices=self.ub_indices,
            ub_data=self.ub_data,
            b_ub=self.b_ub,
            ub_names=self.ub_names,
            eq_indptr=self.eq_indptr,
            eq_indices=self.eq_indices,
            eq_data=self.eq_data,
            b_eq=b_eq,
            eq_names=self.eq_names,
            lb=self.lb,
            ub=self.ub,
            is_integral=self.is_integral,
            maximize=self.maximize,
            row_groups=self.row_groups,
            _views=self._views,
            _var_index=self._var_index,
        )

    def truncate_ub_rows(self, num_rows: int) -> "CompiledModel":
        """Prefix view keeping only the first ``num_rows`` inequality rows.

        Shares the underlying arrays via numpy slices (no copy); used to
        drop trailing optional rows such as the latency-window lower
        bound.  The dense cache is shared with the parent: the truncated
        view renders as a row-slice of the parent's dense matrix.
        """
        if not 0 <= num_rows <= self.num_ub_rows:
            raise ValueError(
                f"cannot keep {num_rows} of {self.num_ub_rows} rows"
            )
        nnz = int(self.ub_indptr[num_rows])
        return CompiledModel(
            variables=self.variables,
            c=self.c,
            c0=self.c0,
            ub_indptr=self.ub_indptr[: num_rows + 1],
            ub_indices=self.ub_indices[:nnz],
            ub_data=self.ub_data[:nnz],
            b_ub=self.b_ub[:num_rows],
            ub_names=self.ub_names[:num_rows],
            eq_indptr=self.eq_indptr,
            eq_indices=self.eq_indices,
            eq_data=self.eq_data,
            b_eq=self.b_eq,
            eq_names=self.eq_names,
            lb=self.lb,
            ub=self.ub,
            is_integral=self.is_integral,
            maximize=self.maximize,
            row_groups=(
                None
                if self.row_groups is None
                else tuple(
                    group.clipped_ub(num_rows) for group in self.row_groups
                )
            ),
            _views=self._views,
            _var_index=self._var_index,
        )

    def with_extra_ub_rows(
        self,
        rows: Sequence[tuple[Sequence[int], Sequence[float]]],
        rhs: Sequence[float],
        names: Sequence[str | None] | None = None,
    ) -> "CompiledModel":
        """Sibling with additional inequality rows appended at the end.

        ``rows`` is a sequence of ``(column_indices, coefficients)``
        pairs, ``rhs`` the matching right-hand sides (``<=`` direction).
        Appending *after* every existing row keeps positional row
        bookkeeping valid — the model templates rely on their window-row
        indices surviving cut-pool extension.  The structure changes, so
        the sibling gets a fresh view cache and fingerprint cache; the
        variable index is still shared.
        """
        if len(rows) != len(rhs):
            raise ValueError("rows and rhs length mismatch")
        if not rows:
            return self
        if names is not None and len(names) != len(rows):
            raise ValueError("names and rows length mismatch")
        extra_indices: list[int] = []
        extra_data: list[float] = []
        extra_indptr: list[int] = []
        nnz = int(self.ub_indptr[-1])
        for cols, coefs in rows:
            if len(cols) != len(coefs):
                raise ValueError("row indices and data length mismatch")
            extra_indices.extend(int(c) for c in cols)
            extra_data.extend(float(v) for v in coefs)
            nnz += len(cols)
            extra_indptr.append(nnz)
        return CompiledModel(
            variables=self.variables,
            c=self.c,
            c0=self.c0,
            ub_indptr=_frozen(
                np.concatenate([
                    self.ub_indptr,
                    np.asarray(extra_indptr, dtype=np.intp),
                ])
            ),
            ub_indices=_frozen(
                np.concatenate([
                    self.ub_indices,
                    np.asarray(extra_indices, dtype=np.intp),
                ])
            ),
            ub_data=_frozen(
                np.concatenate([
                    self.ub_data,
                    np.asarray(extra_data, dtype=float),
                ])
            ),
            b_ub=_frozen(
                np.concatenate([self.b_ub, np.asarray(rhs, dtype=float)])
            ),
            ub_names=self.ub_names + (
                tuple(names) if names is not None else (None,) * len(rows)
            ),
            eq_indptr=self.eq_indptr,
            eq_indices=self.eq_indices,
            eq_data=self.eq_data,
            b_eq=self.b_eq,
            eq_names=self.eq_names,
            lb=self.lb,
            ub=self.ub,
            is_integral=self.is_integral,
            maximize=self.maximize,
            # Appended cut rows belong to no family; the existing spans
            # stay valid because appending never reorders the prefix.
            row_groups=self.row_groups,
            _var_index=self._var_index,
        )

    def point_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Cheap feasibility certificate: does ``x`` satisfy this model?

        Evaluates bounds and both row blocks through the cached sparse
        views — no solver involved.  This is the incumbent-reuse check:
        a previous window's assignment that still passes here answers
        the new window SAT with zero solver work.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != self.lb.shape or not np.all(np.isfinite(x)):
            return False
        if np.any(x < self.lb - tol) or np.any(x > self.ub + tol):
            return False
        if self.num_ub_rows and np.any(self.a_ub_csr() @ x > self.b_ub + tol):
            return False
        if self.num_eq_rows and np.any(
            np.abs(self.a_eq_csr() @ x - self.b_eq) > tol
        ):
            return False
        return True

    # -- identity ------------------------------------------------------------

    def fingerprint(self, skip_rows: tuple[str, ...] = ()) -> str:
        """SHA-256 digest of the compiled structure, skipping named rows.

        Hashes the raw array bytes (variables, sparse rows, right-hand
        sides, bounds, integrality, objective) — no expression walking,
        no string-formatting of thousands of terms.  Cached per
        ``skip_rows`` tuple, so repeated fingerprinting of one compiled
        model is free.
        """
        key = tuple(skip_rows)
        cached = self._fingerprints.get(key)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        update = digest.update
        for var in self.variables:
            update(
                f"v|{var.name}|{var.lb!r}|{var.ub!r}|{var.vtype.value}\n".encode()
            )
        skip = set(skip_rows)

        def hash_block(indptr, indices, data, rhs, names, tag: bytes) -> None:
            for i, name in enumerate(names):
                if name is not None and name in skip:
                    continue
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                update(tag)
                update(f"{name}|{rhs[i]!r}|".encode())
                update(np.ascontiguousarray(indices[lo:hi]).tobytes())
                update(np.ascontiguousarray(data[lo:hi]).tobytes())

        hash_block(
            self.ub_indptr, self.ub_indices, self.ub_data,
            self.b_ub, self.ub_names, b"u|",
        )
        hash_block(
            self.eq_indptr, self.eq_indices, self.eq_data,
            self.b_eq, self.eq_names, b"e|",
        )
        update(b"o|")
        update(b"max|" if self.maximize else b"min|")
        update(f"{self.c0!r}|".encode())
        update(np.ascontiguousarray(self.c).tobytes())
        value = digest.hexdigest()
        self._fingerprints[key] = value
        return value


def compile_model(model: "Model") -> CompiledModel:
    """Compile a :class:`repro.ilp.model.Model` into sparse standard form.

    One pass over the constraint list; every ``>=`` row is negated into
    the ``<=`` block, equalities go to their own block, and a MAXIMIZE
    objective is negated (mirroring ``to_standard_form``).
    """
    from repro.ilp.model import ObjectiveSense

    variables = tuple(model.variables)
    index = {var: j for j, var in enumerate(variables)}
    n = len(variables)

    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[index[var]] = coef
    c0 = model.objective.constant
    maximize = model.objective_sense == ObjectiveSense.MAXIMIZE
    if maximize:
        c, c0 = -c, -c0

    ub_indptr = [0]
    ub_indices: list[int] = []
    ub_data: list[float] = []
    b_ub: list[float] = []
    ub_names: list[str | None] = []
    eq_indptr = [0]
    eq_indices: list[int] = []
    eq_data: list[float] = []
    b_eq: list[float] = []
    eq_names: list[str | None] = []

    for constr in model.constraints:
        cols = [index[var] for var in constr.expr.terms]
        coefs = list(constr.expr.terms.values())
        if constr.sense is Sense.EQ:
            eq_indices.extend(cols)
            eq_data.extend(coefs)
            eq_indptr.append(len(eq_indices))
            b_eq.append(constr.rhs)
            eq_names.append(constr.name)
        elif constr.sense is Sense.LE:
            ub_indices.extend(cols)
            ub_data.extend(coefs)
            ub_indptr.append(len(ub_indices))
            b_ub.append(constr.rhs)
            ub_names.append(constr.name)
        else:  # GE: negate into the <= block
            ub_indices.extend(cols)
            ub_data.extend(-coef for coef in coefs)
            ub_indptr.append(len(ub_indices))
            b_ub.append(-constr.rhs)
            ub_names.append(constr.name)

    return CompiledModel(
        variables=variables,
        c=_frozen(c),
        c0=float(c0),
        ub_indptr=_frozen(np.asarray(ub_indptr, dtype=np.intp)),
        ub_indices=_frozen(np.asarray(ub_indices, dtype=np.intp)),
        ub_data=_frozen(np.asarray(ub_data, dtype=float)),
        b_ub=_frozen(np.asarray(b_ub, dtype=float)),
        ub_names=tuple(ub_names),
        eq_indptr=_frozen(np.asarray(eq_indptr, dtype=np.intp)),
        eq_indices=_frozen(np.asarray(eq_indices, dtype=np.intp)),
        eq_data=_frozen(np.asarray(eq_data, dtype=float)),
        b_eq=_frozen(np.asarray(b_eq, dtype=float)),
        eq_names=tuple(eq_names),
        lb=_frozen(np.array([v.lb for v in variables])),
        ub=_frozen(np.array([v.ub for v in variables])),
        is_integral=_frozen(
            np.array([v.vtype.is_integral for v in variables], dtype=bool)
        ),
        maximize=maximize,
    )


def ensure_compiled(model_or_compiled) -> CompiledModel:
    """Coerce a backend argument (Model or CompiledModel) to compiled form.

    Backends registered with :func:`repro.ilp.model.register_backend`
    receive whatever the dispatcher was given; this helper lets them
    accept both the modeling object and a pre-compiled form (as produced
    by the incremental model templates) through one code path.
    """
    if isinstance(model_or_compiled, CompiledModel):
        return model_or_compiled
    compiled = getattr(model_or_compiled, "compile", None)
    if compiled is None:
        raise TypeError(
            f"expected a Model or CompiledModel, got "
            f"{type(model_or_compiled).__name__}"
        )
    return compiled()
