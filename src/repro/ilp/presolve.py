"""Lightweight presolve reductions for MILP models.

Applied (optionally) before handing a model to a backend.  The reductions
are deliberately conservative — each preserves the exact feasible set:

* **bound tightening from singleton rows**: a row with one variable is a
  bound, not a constraint,
* **activity-based row removal**: a row whose worst-case activity already
  satisfies the right-hand side is redundant,
* **activity-based infeasibility detection**: a row whose best-case
  activity cannot reach the right-hand side proves infeasibility,
* **binary fixing propagation**: variables whose tightened bounds collapse
  to a point are fixed.

The analysis runs on the sparse compiled standard form
(:class:`repro.ilp.compile.CompiledModel`) — activity bounds are numpy
reductions over the CSR arrays rather than per-constraint walks over
``dict``-of-terms expressions.  ``>=`` rows arrive pre-normalized to
``<=`` (negated), so only two row kinds exist here.

The temporal-partitioning formulation benefits mostly from the redundancy
filter (path-latency rows for short paths are dominated by longer ones) —
see ``benchmarks/test_ablation_order_constraints.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ilp.compile import CompiledModel, ensure_compiled
from repro.ilp.expr import LinExpr
from repro.ilp.model import Model, ObjectiveSense

__all__ = ["PresolveResult", "presolve"]


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`."""

    model: Model | None            # reduced model; None when proven infeasible
    proven_infeasible: bool = False
    rows_removed: int = 0
    bounds_tightened: int = 0
    fixed_variables: dict[str, float] = field(default_factory=dict)


def _row_activity(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row: int,
    lb: np.ndarray,
    ub: np.ndarray,
) -> tuple[float, float]:
    """Smallest and largest value the row's LHS can take within bounds."""
    lo, hi = indptr[row], indptr[row + 1]
    cols = indices[lo:hi]
    coefs = data[lo:hi]
    low_ends = np.where(coefs >= 0, lb[cols], ub[cols])
    high_ends = np.where(coefs >= 0, ub[cols], lb[cols])
    return float(coefs @ low_ends), float(coefs @ high_ends)


def presolve(model, max_rounds: int = 5, tracer=None) -> PresolveResult:
    """Return a reduced, equivalent model (or a proof of infeasibility).

    ``model`` may be a :class:`repro.ilp.model.Model` or an already
    compiled :class:`repro.ilp.compile.CompiledModel`.  A ``tracer``
    (:class:`repro.obs.Tracer`) records the reductions in a
    ``presolve`` span.
    """
    from repro.obs.tracer import as_tracer

    with as_tracer(tracer).span("presolve") as span:
        result = _presolve(model, max_rounds)
        span.annotate(
            proven_infeasible=result.proven_infeasible,
            rows_removed=result.rows_removed,
            bounds_tightened=result.bounds_tightened,
            fixed_variables=len(result.fixed_variables),
        )
    return result


def _presolve(model, max_rounds: int) -> PresolveResult:
    compiled: CompiledModel = ensure_compiled(model)
    lb = compiled.lb.astype(float).copy()
    ub = compiled.ub.astype(float).copy()
    num_ub = compiled.num_ub_rows
    num_eq = compiled.num_eq_rows
    # (kind, row): kind 0 = inequality (<=), kind 1 = equality.
    active: list[tuple[int, int]] = [(0, i) for i in range(num_ub)] + [
        (1, i) for i in range(num_eq)
    ]
    rows_removed = 0
    bounds_tightened = 0

    def row_slice(kind: int, row: int):
        if kind == 0:
            lo, hi = compiled.ub_indptr[row], compiled.ub_indptr[row + 1]
            return (
                compiled.ub_indices[lo:hi],
                compiled.ub_data[lo:hi],
                float(compiled.b_ub[row]),
            )
        lo, hi = compiled.eq_indptr[row], compiled.eq_indptr[row + 1]
        return (
            compiled.eq_indices[lo:hi],
            compiled.eq_data[lo:hi],
            float(compiled.b_eq[row]),
        )

    for _ in range(max_rounds):
        changed = False
        kept: list[tuple[int, int]] = []
        for kind, row in active:
            cols, coefs, rhs = row_slice(kind, row)
            if len(cols) == 1:
                # Singleton row: fold into the variable's bounds.
                j = int(cols[0])
                coef = float(coefs[0])
                limit = rhs / coef
                # An inequality tightens one side; an equality both.
                tighten_upper = [coef > 0] if kind == 0 else [True, False]
                for upper in tighten_upper:
                    if upper:
                        if limit < ub[j] - 1e-12:
                            ub[j] = limit
                            bounds_tightened += 1
                            changed = True
                    else:
                        if limit > lb[j] + 1e-12:
                            lb[j] = limit
                            bounds_tightened += 1
                            changed = True
                rows_removed += 1
                continue

            low_ends = np.where(coefs >= 0, lb[cols], ub[cols])
            high_ends = np.where(coefs >= 0, ub[cols], lb[cols])
            low = float(coefs @ low_ends)
            high = float(coefs @ high_ends)
            if kind == 0:
                if high <= rhs + 1e-12:
                    rows_removed += 1
                    changed = True
                    continue
                if low > rhs + 1e-9:
                    return PresolveResult(None, proven_infeasible=True)
            else:
                if low > rhs + 1e-9 or high < rhs - 1e-9:
                    return PresolveResult(None, proven_infeasible=True)
            kept.append((kind, row))
        active = kept
        if not changed:
            break

    if np.any(lb > ub + 1e-9):
        return PresolveResult(None, proven_infeasible=True)

    fixed = {
        var.name: float(lb[j])
        for j, var in enumerate(compiled.variables)
        if math.isclose(lb[j], ub[j], abs_tol=1e-9)
    }

    reduced = Model("presolved")
    var_list = []
    for j, var in enumerate(compiled.variables):
        var_list.append(
            reduced.add_var(
                var.name, lb=float(lb[j]), ub=float(ub[j]), vtype=var.vtype
            )
        )
    for kind, row in active:
        cols, coefs, rhs = row_slice(kind, row)
        expr = LinExpr(
            {var_list[int(j)]: float(c) for j, c in zip(cols, coefs)}
        )
        name = (
            compiled.ub_names[row] if kind == 0 else compiled.eq_names[row]
        )
        if kind == 0:
            reduced.add_constr(expr <= rhs, name=name)
        else:
            reduced.add_constr(expr == rhs, name=name)
    # The compiled objective is stored in minimization direction; restore
    # the original sense so the reduced model reports like the input.
    c, c0 = compiled.c, compiled.c0
    sense = ObjectiveSense.MINIMIZE
    if compiled.maximize:
        c, c0 = -c, -c0
        sense = ObjectiveSense.MAXIMIZE
    objective = LinExpr(
        {var_list[j]: float(c[j]) for j in np.flatnonzero(c)}, float(c0)
    )
    reduced.set_objective(objective, sense=sense)
    return PresolveResult(
        reduced,
        rows_removed=rows_removed,
        bounds_tightened=bounds_tightened,
        fixed_variables=fixed,
    )
