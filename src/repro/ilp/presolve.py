"""Lightweight presolve reductions for MILP models.

Applied (optionally) before handing a model to a backend.  The reductions
are deliberately conservative — each preserves the exact feasible set:

* **bound tightening from singleton rows**: a row with one variable is a
  bound, not a constraint,
* **activity-based row removal**: a row whose worst-case activity already
  satisfies the right-hand side is redundant,
* **activity-based infeasibility detection**: a row whose best-case
  activity cannot reach the right-hand side proves infeasibility,
* **binary fixing propagation**: variables whose tightened bounds collapse
  to a point are fixed.

The temporal-partitioning formulation benefits mostly from the redundancy
filter (path-latency rows for short paths are dominated by longer ones) —
see ``benchmarks/test_ablation_order_constraints.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ilp.expr import LinExpr, Sense
from repro.ilp.model import Model

__all__ = ["PresolveResult", "presolve"]


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`."""

    model: Model | None            # reduced model; None when proven infeasible
    proven_infeasible: bool = False
    rows_removed: int = 0
    bounds_tightened: int = 0
    fixed_variables: dict[str, float] = field(default_factory=dict)


def _activity_bounds(constr, lb, ub) -> tuple[float, float]:
    """Smallest and largest value the row's LHS can take within bounds."""
    low = high = 0.0
    for var, coef in constr.expr.terms.items():
        lo, hi = lb[var.name], ub[var.name]
        if coef >= 0:
            low += coef * lo
            high += coef * hi
        else:
            low += coef * hi
            high += coef * lo
    return low, high


def presolve(model: Model, max_rounds: int = 5) -> PresolveResult:
    """Return a reduced, equivalent model (or a proof of infeasibility)."""
    lb = {v.name: v.lb for v in model.variables}
    ub = {v.name: v.ub for v in model.variables}
    active = list(model.constraints)
    rows_removed = 0
    bounds_tightened = 0

    for _ in range(max_rounds):
        changed = False
        kept = []
        for constr in active:
            terms = constr.expr.terms
            if len(terms) == 1:
                # Singleton row: fold into the variable's bounds.
                (var, coef), = terms.items()
                limit = constr.rhs / coef
                senses: list[Sense]
                if constr.sense is Sense.EQ:
                    senses = [Sense.LE, Sense.GE]
                else:
                    senses = [constr.sense]
                for sense in senses:
                    tighten_upper = (sense is Sense.LE) == (coef > 0)
                    if tighten_upper:
                        if limit < ub[var.name] - 1e-12:
                            ub[var.name] = limit
                            bounds_tightened += 1
                            changed = True
                    else:
                        if limit > lb[var.name] + 1e-12:
                            lb[var.name] = limit
                            bounds_tightened += 1
                            changed = True
                rows_removed += 1
                continue

            low, high = _activity_bounds(constr, lb, ub)
            if constr.sense is Sense.LE:
                if high <= constr.rhs + 1e-12:
                    rows_removed += 1
                    changed = True
                    continue
                if low > constr.rhs + 1e-9:
                    return PresolveResult(None, proven_infeasible=True)
            elif constr.sense is Sense.GE:
                if low >= constr.rhs - 1e-12:
                    rows_removed += 1
                    changed = True
                    continue
                if high < constr.rhs - 1e-9:
                    return PresolveResult(None, proven_infeasible=True)
            else:
                if low > constr.rhs + 1e-9 or high < constr.rhs - 1e-9:
                    return PresolveResult(None, proven_infeasible=True)
            kept.append(constr)
        active = kept
        if not changed:
            break

    for name in lb:
        if lb[name] > ub[name] + 1e-9:
            return PresolveResult(None, proven_infeasible=True)

    fixed = {
        name: lb[name]
        for name in lb
        if math.isclose(lb[name], ub[name], abs_tol=1e-9)
    }

    reduced = Model(f"{model.name}_presolved")
    var_map = {}
    for var in model.variables:
        var_map[var.name] = reduced.add_var(
            var.name, lb=lb[var.name], ub=ub[var.name], vtype=var.vtype
        )
    for constr in active:
        expr = LinExpr(
            {var_map[v.name]: coef for v, coef in constr.expr.terms.items()}
        )
        if constr.sense is Sense.LE:
            reduced.add_constr(expr <= constr.rhs, name=constr.name)
        elif constr.sense is Sense.GE:
            reduced.add_constr(expr >= constr.rhs, name=constr.name)
        else:
            reduced.add_constr(expr == constr.rhs, name=constr.name)
    objective = LinExpr(
        {var_map[v.name]: coef for v, coef in model.objective.terms.items()},
        model.objective.constant,
    )
    reduced.set_objective(objective, sense=model.objective_sense)
    return PresolveResult(
        reduced,
        rows_removed=rows_removed,
        bounds_tightened=bounds_tightened,
        fixed_variables=fixed,
    )
