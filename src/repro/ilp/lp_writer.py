"""Export models in the CPLEX LP file format.

The paper solved its formulations with CPLEX; this writer makes any model
built by this library inspectable with (or portable to) external solvers,
and is also handy when debugging a formulation by eye.

Format reference: the classic CPLEX LP format — ``Minimize``/``Maximize``,
``Subject To``, ``Bounds``, ``General``/``Binary`` sections, ``End``.
"""

from __future__ import annotations

import math
from typing import TextIO

from repro.ilp.expr import LinExpr, Sense, VarType
from repro.ilp.model import Model, ObjectiveSense

__all__ = ["write_lp", "lp_string"]

_SENSE_TOKEN = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}


def _sanitize(name: str) -> str:
    """Make a name LP-format safe (no brackets, commas or spaces)."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_." else "_")
    text = "".join(out)
    if text[0].isdigit():
        text = "x_" + text
    return text


def _format_expr(expr: LinExpr, names: dict[int, str]) -> str:
    parts: list[str] = []
    terms = sorted(expr.terms.items(), key=lambda kv: kv[0].index)
    for var, coef in terms:
        if coef == 0:
            continue
        sign = "-" if coef < 0 else "+"
        magnitude = abs(coef)
        coef_text = "" if magnitude == 1 else f"{magnitude:.12g} "
        parts.append(f"{sign} {coef_text}{names[var.index]}")
    if not parts:
        return "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def write_lp(model: Model, stream: TextIO) -> None:
    """Write ``model`` to ``stream`` in LP format."""
    names = {var.index: _sanitize(var.name) for var in model.variables}
    if len(set(names.values())) != len(names):
        # Sanitization collided; fall back to positional names.
        names = {
            var.index: f"v{pos}" for pos, var in enumerate(model.variables)
        }

    header = (
        "Maximize"
        if model.objective_sense == ObjectiveSense.MAXIMIZE
        else "Minimize"
    )
    stream.write(f"\\ Model: {model.name}\n{header}\n")
    stream.write(f" obj: {_format_expr(model.objective, names)}\n")

    stream.write("Subject To\n")
    for pos, constr in enumerate(model.constraints):
        label = _sanitize(constr.name) if constr.name else f"c{pos}"
        stream.write(
            f" {label}: {_format_expr(constr.expr, names)} "
            f"{_SENSE_TOKEN[constr.sense]} {constr.rhs:.12g}\n"
        )

    stream.write("Bounds\n")
    for var in model.variables:
        name = names[var.index]
        if var.vtype is VarType.BINARY:
            continue  # implied 0/1 by the Binary section
        lower = "-inf" if var.lb == -math.inf else f"{var.lb:.12g}"
        upper = "+inf" if var.ub == math.inf else f"{var.ub:.12g}"
        stream.write(f" {lower} <= {name} <= {upper}\n")

    generals = [
        names[v.index] for v in model.variables if v.vtype is VarType.INTEGER
    ]
    binaries = [
        names[v.index] for v in model.variables if v.vtype is VarType.BINARY
    ]
    if generals:
        stream.write("General\n")
        for name in generals:
            stream.write(f" {name}\n")
    if binaries:
        stream.write("Binary\n")
        for name in binaries:
            stream.write(f" {name}\n")
    stream.write("End\n")


def lp_string(model: Model) -> str:
    """Return the LP-format text of ``model``."""
    import io

    buffer = io.StringIO()
    write_lp(model, buffer)
    return buffer.getvalue()
