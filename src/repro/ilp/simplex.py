"""A dense two-phase primal simplex solver built from scratch on numpy.

This is the self-contained LP engine of the reproduction (the paper used
CPLEX; this module plus :mod:`repro.ilp.branch_and_bound` replaces it when
scipy is not trusted or not wanted).  It favours clarity and robustness
over speed:

* general bounds are reduced to the canonical form ``A x = b, x >= 0`` by
  shifting / mirroring / splitting variables and adding explicit
  upper-bound rows,
* phase I minimizes the sum of artificial variables added to every row,
* Dantzig pricing with an automatic switch to Bland's rule after a pivot
  budget guards against cycling,
* all pivoting happens on a dense tableau, which is perfectly adequate for
  the model sizes this repository solves with it (hundreds of columns).

The scipy ``linprog``/HiGHS backends remain available for large models and
as an independent oracle in the test suite.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.ilp.status import Solution, SolveStatus

__all__ = ["LpResult", "solve_lp", "solve_with_simplex"]

_TOL = 1e-9


@dataclass(frozen=True)
class LpResult:
    """Raw result of :func:`solve_lp` (values in the original variables).

    ``basis`` is the optimal simplex basis — canonical column indices
    (structural + slack space), one per row — usable as ``start_basis``
    for a later :func:`solve_lp` call on the *same canonical structure*
    (identical bounds-finiteness pattern and row count; RHS and bound
    values may differ).  ``warm`` reports whether a supplied
    ``start_basis`` was successfully crashed onto, skipping phase I.
    """

    status: SolveStatus
    x: np.ndarray | None
    objective: float
    iterations: int
    basis: np.ndarray | None = None
    warm: bool = False


class _Canonical:
    """Reduction of an LP with general bounds to ``A x = b, x >= 0``.

    Keeps enough bookkeeping to map a canonical solution vector back to the
    original variable space.
    """

    def __init__(self, n_orig: int) -> None:
        self.n_orig = n_orig
        # Per original variable: (kind, column(s), offset)
        #   kind "shift":  x = offset + u[col]
        #   kind "mirror": x = offset - u[col]
        #   kind "split":  x = u[col_plus] - u[col_minus]
        self.mapping: list[tuple] = []
        self.num_cols = 0
        # Upper-bound rows expressed on canonical columns: (col, cap).
        self.caps: list[tuple[int, float]] = []

    def new_col(self) -> int:
        col = self.num_cols
        self.num_cols += 1
        return col

    def add_variable(self, lb: float, ub: float) -> None:
        if lb > ub:
            raise ValueError(f"empty variable domain [{lb}, {ub}]")
        if math.isfinite(lb):
            col = self.new_col()
            self.mapping.append(("shift", col, lb))
            if math.isfinite(ub):
                self.caps.append((col, ub - lb))
        elif math.isfinite(ub):
            col = self.new_col()
            self.mapping.append(("mirror", col, ub))
        else:
            plus, minus = self.new_col(), self.new_col()
            self.mapping.append(("split", (plus, minus), 0.0))

    def expand_row(self, row: np.ndarray) -> np.ndarray:
        """Rewrite a row on original variables onto canonical columns."""
        out = np.zeros(self.num_cols)
        for j, coef in enumerate(row):
            if coef == 0.0:
                continue
            kind, cols, _offset = self.mapping[j]
            if kind == "shift":
                out[cols] += coef
            elif kind == "mirror":
                out[cols] -= coef
            else:
                plus, minus = cols
                out[plus] += coef
                out[minus] -= coef
        return out

    def row_offset(self, row: np.ndarray) -> float:
        """Constant contributed to the row's LHS by shifts/mirrors."""
        total = 0.0
        for j, coef in enumerate(row):
            if coef == 0.0:
                continue
            kind, _cols, offset = self.mapping[j]
            if kind in ("shift", "mirror"):
                total += coef * offset
        return total

    def restore(self, u: np.ndarray) -> np.ndarray:
        x = np.zeros(self.n_orig)
        for j, (kind, cols, offset) in enumerate(self.mapping):
            if kind == "shift":
                x[j] = offset + u[cols]
            elif kind == "mirror":
                x[j] = offset - u[cols]
            else:
                plus, minus = cols
                x[j] = u[plus] - u[minus]
        return x


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the dense tableau on (row, col) and update the basis."""
    tableau[row] /= tableau[row, col]
    column = tableau[:, col].copy()
    column[row] = 0.0
    tableau -= np.outer(column, tableau[row])
    basis[row] = col


def _price(
    reduced: np.ndarray, allowed: int, bland: bool
) -> int | None:
    """Pick the entering column (or ``None`` when optimal)."""
    candidates = np.flatnonzero(reduced[:allowed] < -_TOL)
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(reduced[candidates])])


def _ratio_test(
    tableau: np.ndarray, col: int, basis: np.ndarray
) -> int | None:
    """Pick the leaving row by minimum ratio (ties by smallest basis index)."""
    column = tableau[:, col]
    rhs = tableau[:, -1]
    rows = np.flatnonzero(column > _TOL)
    if rows.size == 0:
        return None
    ratios = rhs[rows] / column[rows]
    best = ratios.min()
    tied = rows[np.flatnonzero(ratios <= best + _TOL)]
    return int(tied[np.argmin(basis[tied])])


def _crash_basis(
    tableau: np.ndarray,
    basis: np.ndarray,
    start_basis: np.ndarray,
    artificial_start: int,
) -> bool:
    """Try to pivot the tableau onto ``start_basis``, replacing phase I.

    ``start_basis`` holds canonical column indices (structural + slack
    space) from a previous optimal solve of the same canonical structure.
    Each desired column is greedily pivoted onto a row still held by an
    artificial.  Succeeds only when every artificial leaves the basis and
    the resulting RHS is primal feasible; on any failure the tableau and
    basis are restored untouched so the cold phase I can run.
    """
    if start_basis.shape != basis.shape:
        return False
    if np.any(start_basis < 0) or np.any(start_basis >= artificial_start):
        return False
    snapshot_tableau = tableau.copy()
    snapshot_basis = basis.copy()
    for col in start_basis:
        col = int(col)
        if col in basis:
            continue
        candidates = np.flatnonzero(
            (basis >= artificial_start)
            & (np.abs(tableau[:, col]) > 1e-7)
        )
        if candidates.size == 0:
            continue
        _pivot(tableau, basis, int(candidates[0]), col)
    rhs = tableau[:, -1]
    if np.all(basis < artificial_start) and np.all(rhs >= -1e-9):
        np.clip(rhs, 0.0, None, out=rhs)
        return True
    tableau[:] = snapshot_tableau
    basis[:] = snapshot_basis
    return False


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    cost0: float,
    allowed: int,
    max_iters: int,
    deadline: float | None,
) -> tuple[str, int]:
    """Run simplex iterations in place.

    Returns ``(outcome, iterations)`` with outcome in ``{"optimal",
    "unbounded", "iteration_limit", "time_limit"}``.  ``allowed`` restricts
    pricing to the first *allowed* columns (used in phase II to keep
    artificial columns out of the basis).
    """
    m = tableau.shape[0]
    iterations = 0
    bland_after = max(200, 20 * m)
    while iterations < max_iters:
        if deadline is not None and time.perf_counter() > deadline:
            return "time_limit", iterations
        # Reduced costs: c_j - c_B . B^-1 A_j, computed from the tableau.
        cb = cost[basis]
        reduced = cost[: tableau.shape[1] - 1] - cb @ tableau[:, :-1]
        col = _price(reduced, allowed, bland=iterations >= bland_after)
        if col is None:
            return "optimal", iterations
        row = _ratio_test(tableau, col, basis)
        if row is None:
            return "unbounded", iterations
        _pivot(tableau, basis, row, col)
        iterations += 1
    return "iteration_limit", iterations


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iters: int = 20_000,
    time_limit: float | None = None,
    start_basis: np.ndarray | None = None,
) -> LpResult:
    """Minimize ``c @ x`` subject to the given rows and bounds.

    All arguments are dense numpy arrays; ``a_ub``/``a_eq`` may have zero
    rows.  Returns an :class:`LpResult` whose ``x`` is in the original
    variable space.

    ``start_basis`` may carry the optimal basis of a previous solve with
    the same canonical structure (same rows and bounds-finiteness
    pattern; only RHS / bound *values* changed — the RHS-only re-solves
    of the bisection).  When the basis can be crashed onto and is primal
    feasible for the new RHS, phase I is skipped entirely; otherwise the
    solver silently falls back to a cold start.
    """
    deadline = (
        time.perf_counter() + time_limit if time_limit is not None else None
    )
    n = len(c)
    canonical = _Canonical(n)
    for j in range(n):
        canonical.add_variable(float(lb[j]), float(ub[j]))

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []
    for row, b in zip(a_ub, b_ub):
        rows.append(canonical.expand_row(row))
        rhs.append(float(b) - canonical.row_offset(row))
        senses.append("<=")
    for row, b in zip(a_eq, b_eq):
        rows.append(canonical.expand_row(row))
        rhs.append(float(b) - canonical.row_offset(row))
        senses.append("==")
    for col, cap in canonical.caps:
        bound_row = np.zeros(canonical.num_cols)
        bound_row[col] = 1.0
        rows.append(bound_row)
        rhs.append(cap)
        senses.append("<=")

    n_cols = canonical.num_cols
    n_slack = sum(1 for s in senses if s == "<=")
    m = len(rows)

    # Assemble [A | slacks | artificials | b] with b >= 0.
    total = n_cols + n_slack + m
    tableau = np.zeros((m, total + 1))
    slack_at = n_cols
    for i, (row, b, sense) in enumerate(zip(rows, rhs, senses)):
        tableau[i, :n_cols] = row
        if sense == "<=":
            tableau[i, slack_at] = 1.0
            slack_at += 1
        tableau[i, -1] = b
        if tableau[i, -1] < 0:
            tableau[i, :-1] *= -1.0
            tableau[i, -1] *= -1.0
        tableau[i, n_cols + n_slack + i] = 1.0
    basis = np.array(
        [n_cols + n_slack + i for i in range(m)], dtype=np.intp
    )

    artificial_start = n_cols + n_slack
    warm = False
    if start_basis is not None:
        warm = _crash_basis(
            tableau, basis, np.asarray(start_basis, dtype=np.intp),
            artificial_start,
        )

    if warm:
        iters1 = 0
    else:
        # Phase I: minimize the sum of artificials.
        phase1_cost = np.zeros(total)
        phase1_cost[n_cols + n_slack :] = 1.0
        outcome, iters1 = _run_simplex(
            tableau,
            basis,
            phase1_cost,
            0.0,
            allowed=total,
            max_iters=max_iters,
            deadline=deadline,
        )
        if outcome == "time_limit":
            return LpResult(SolveStatus.TIME_LIMIT, None, math.nan, iters1)
        if outcome == "iteration_limit":
            return LpResult(SolveStatus.ERROR, None, math.nan, iters1)
        infeasibility = float(phase1_cost[basis] @ tableau[:, -1])
        if infeasibility > 1e-7:
            return LpResult(SolveStatus.INFEASIBLE, None, math.nan, iters1)

        # Drive any artificial still in the basis out (degenerate rows),
        # or accept it at value zero when its row has no eligible pivot.
        for i in range(m):
            if basis[i] >= artificial_start:
                eligible = np.flatnonzero(
                    np.abs(tableau[i, :artificial_start]) > _TOL
                )
                if eligible.size:
                    _pivot(tableau, basis, i, int(eligible[0]))

    # Phase II: original objective on canonical columns.
    phase2_cost = np.zeros(total)
    for j in range(n):
        kind, cols, _offset = canonical.mapping[j]
        if kind == "shift":
            phase2_cost[cols] += c[j]
        elif kind == "mirror":
            phase2_cost[cols] -= c[j]
        else:
            plus, minus = cols
            phase2_cost[plus] += c[j]
            phase2_cost[minus] -= c[j]
    outcome, iters2 = _run_simplex(
        tableau,
        basis,
        phase2_cost,
        0.0,
        allowed=artificial_start,
        max_iters=max_iters,
        deadline=deadline,
    )
    iterations = iters1 + iters2
    if outcome == "time_limit":
        return LpResult(SolveStatus.TIME_LIMIT, None, math.nan, iterations)
    if outcome == "iteration_limit":
        return LpResult(SolveStatus.ERROR, None, math.nan, iterations)
    if outcome == "unbounded":
        return LpResult(SolveStatus.UNBOUNDED, None, -math.inf, iterations)

    u = np.zeros(total)
    u[basis] = tableau[:, -1]
    x = canonical.restore(u[:n_cols])
    objective = float(c @ x)
    return LpResult(
        SolveStatus.OPTIMAL, x, objective, iterations,
        basis=basis.copy(), warm=warm,
    )


def solve_with_simplex(model, **options) -> Solution:
    """Backend adapter: solve the model's *LP relaxation* with our simplex.

    Integrality markers are ignored; this backend exists for pure-LP use
    and as the relaxation engine inside the from-scratch branch & bound.
    Accepts a :class:`repro.ilp.model.Model` or a pre-compiled
    :class:`repro.ilp.compile.CompiledModel` (its cached dense views are
    used — the tableau algorithm is dense by construction).
    """
    from repro.ilp.compile import ensure_compiled

    form = ensure_compiled(model)
    result = solve_lp(
        form.c,
        form.a_ub,
        form.b_ub,
        form.a_eq,
        form.b_eq,
        form.lb,
        form.ub,
        max_iters=options.get("max_iters", 20_000),
        time_limit=options.get("time_limit"),
        start_basis=options.get("start_basis"),
    )
    tracer = options.get("tracer")
    if tracer is not None:
        tracer.event(
            "simplex_done",
            status=result.status.value,
            pivots=result.iterations,
        )
    values: dict[str, float] = {}
    objective = math.nan
    stats: dict[str, object] = {"basis_restarts": int(result.warm)}
    if result.status is SolveStatus.OPTIMAL and result.x is not None:
        values = form.values_to_dict(result.x)
        objective = result.objective + form.c0
        if result.basis is not None:
            stats["root_basis"] = result.basis
    return Solution(
        status=result.status,
        objective=objective,
        values=values,
        iterations=result.iterations,
        stats=stats,
    )
