"""Linearization helpers for products and logical forms on binary variables.

The paper's memory-constraint variables ``w_{p,t1,t2}`` (equations (4)-(5))
are products of sums of binaries; ILP solvers need them rewritten as linear
constraints.  This module provides the standard constructions:

* :func:`product_binary` — exact linearization of ``z = x * y``,
* :func:`product_of_sums` — ``z = 1`` iff both of two 0/1-valued sums are 1,
  with a one-sided (cheaper) variant sufficient when the model only pushes
  ``z`` *down* (as the memory capacity constraint does),
* :func:`indicator_ge` / big-M helpers used by extension formulations.
"""

from __future__ import annotations

from typing import Iterable

from repro.ilp.expr import Constraint, LinExpr, Variable, lin_sum
from repro.ilp.model import Model

__all__ = [
    "product_binary",
    "product_of_sums",
    "indicator_ge",
    "big_m_upper",
]


def product_binary(
    model: Model, x: Variable, y: Variable, name: str
) -> Variable:
    """Create ``z`` with ``z == x * y`` for binary ``x``, ``y``.

    Adds the exact three-constraint linearization::

        z <= x,  z <= y,  z >= x + y - 1
    """
    z = model.add_binary(name)
    model.add_constr(z <= x, name=f"{name}_le_x")
    model.add_constr(z <= y, name=f"{name}_le_y")
    model.add_constr(z >= x + y - 1, name=f"{name}_ge_and")
    return z


def product_of_sums(
    model: Model,
    left: Iterable,
    right: Iterable,
    name: str,
    one_sided: bool = False,
) -> Variable:
    """Create ``z = (sum(left)) * (sum(right))`` for 0/1-valued sums.

    Both sums must be guaranteed by the rest of the model to take values in
    ``{0, 1}`` (the paper's ``Y`` sums are, via the uniqueness constraint).

    With ``one_sided=True`` only ``z >= L + R - 1`` is added.  That is
    sufficient — and much cheaper — whenever every other occurrence of ``z``
    only *penalizes* large values (e.g. ``sum(B * z) <= M_max``): the solver
    is free to leave ``z`` at 0 when the product is 0, and is forced to 1
    when the product is 1.  This one-sidedness is exactly why the paper can
    state (4)-(5) as inequalities after linearization.
    """
    left_sum = lin_sum(left)
    right_sum = lin_sum(right)
    z = model.add_binary(name)
    model.add_constr(
        z >= left_sum + right_sum - 1, name=f"{name}_ge_and"
    )
    if not one_sided:
        model.add_constr(z <= left_sum, name=f"{name}_le_l")
        model.add_constr(z <= right_sum, name=f"{name}_le_r")
    return z


def indicator_ge(
    model: Model,
    indicator: Variable,
    expr,
    threshold: float,
    big_m: float,
    name: str,
) -> Constraint:
    """Add ``indicator = 1  =>  expr >= threshold`` via big-M.

    Encoded as ``expr >= threshold - M * (1 - indicator)``.
    """
    expr = LinExpr.from_value(expr)
    return model.add_constr(
        expr >= threshold - big_m * (1 - indicator), name=name
    )


def big_m_upper(
    model: Model,
    expr,
    bound_if_active: float,
    switch: Variable,
    big_m: float,
    name: str,
) -> Constraint:
    """Add ``switch = 1  =>  expr <= bound_if_active`` via big-M.

    Encoded as ``expr <= bound_if_active + M * (1 - switch)``.
    """
    expr = LinExpr.from_value(expr)
    return model.add_constr(
        expr <= bound_if_active + big_m * (1 - switch), name=name
    )
