"""Machine-readable run metrics of the solver execution layer.

Every window solve executed by :class:`repro.solve.executor.SolveExecutor`
produces one :class:`SolveStats`; a :class:`RunTelemetry` aggregates them
across a whole search run (counts, per-backend wall time, cache hit rate,
timeout and fallback events).  The structures are plain data with
``to_dict()`` serializers so the CLI (``--telemetry-json``), the
experiment harness and downstream dashboards can persist them as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolveStats", "RunTelemetry"]


@dataclass(frozen=True)
class SolveStats:
    """One window solve as executed (possibly answered from the cache).

    Attributes
    ----------
    num_partitions, d_min, d_max:
        The query: partition bound and latency window (incl. overhead).
    backend:
        Who produced the verdict: a solver backend name, ``"cache"`` for a
        memoized answer, ``"heuristic:<policy>"`` for the greedy fallback,
        or ``""`` when no backend produced anything (hard timeout).
    status:
        The :class:`repro.ilp.SolveStatus` value name (``"feasible"``,
        ``"infeasible"``, ``"time_limit"``, ...).
    wall_time:
        Wall-clock seconds of the whole window solve (all backends).
    iterations:
        Work measure reported by the winning backend (nodes / pivots).
    cache_hit:
        The verdict came from the solve cache; no backend ran.
    degraded:
        All backends exhausted their budgets and the verdict (if any)
        came from the greedy fallback.
    """

    num_partitions: int
    d_min: float
    d_max: float
    backend: str
    status: str
    wall_time: float
    iterations: int = 0
    cache_hit: bool = False
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "d_min": self.d_min,
            "d_max": self.d_max,
            "backend": self.backend,
            "status": self.status,
            "wall_time": self.wall_time,
            "iterations": self.iterations,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveStats":
        """Inverse of :meth:`to_dict` (process-boundary transport)."""
        return cls(
            num_partitions=int(payload["num_partitions"]),
            d_min=float(payload["d_min"]),
            d_max=float(payload["d_max"]),
            backend=str(payload.get("backend", "")),
            status=str(payload.get("status", "")),
            wall_time=float(payload.get("wall_time", 0.0)),
            iterations=int(payload.get("iterations", 0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            degraded=bool(payload.get("degraded", False)),
        )


@dataclass
class RunTelemetry:
    """Aggregated execution metrics of one search run.

    Filled incrementally by the :class:`SolveExecutor`; shared across
    every ``Reduce_Latency`` invocation of a ``Refine_Partitions_Bound``
    run so the numbers describe the run as a whole.
    """

    solves: list[SolveStats] = field(default_factory=list)
    #: Wall seconds per backend, including losing portfolio attempts.
    backend_wall: dict[str, float] = field(default_factory=dict)
    #: Window solves each backend decided (portfolio wins or solo runs).
    backend_wins: dict[str, int] = field(default_factory=dict)
    #: Backend attempts that exhausted their budget without a verdict.
    timeouts: int = 0
    #: Window solves answered by the greedy heuristic fallback.
    fallbacks: int = 0
    #: Model templates built (one full construct + compile + hash each).
    template_builds: int = 0
    #: Window models served by patching a template (cheap path); compare
    #: with ``template_builds`` for the incremental-reuse ratio.
    template_instantiations: int = 0
    #: Window solves answered by a still-feasible previous incumbent
    #: (zero solver work; ``SolverSettings.incumbent_reuse``).
    incumbent_reuses: int = 0
    #: Window solves answered by the primal-first stage (LP relaxation +
    #: rounding/diving, or an LP infeasibility proof).
    primal_hits: int = 0
    #: Node LPs that skipped simplex phase I by crashing onto a
    #: previous optimal basis (own-engine branch & bound).
    basis_restarts: int = 0
    #: Cover cuts added to persistent template pools across the run.
    pooled_cuts: int = 0
    #: Window solves answered by the *persistent* disk tier of the solve
    #: cache (a verdict some other process — or a previous run — paid
    #: for).  Memory-tier hits are counted in ``cache_hits`` as before;
    #: disk hits are a subset of them.
    disk_hits: int = 0
    #: Worker telemetries merged into this one (sharded runs); 0 for an
    #: ordinary single-process run.
    workers_merged: int = 0
    #: Pre-solve analyzer passes run (``SolverSettings.analyze != "off"``).
    analysis_runs: int = 0
    #: ERROR-severity diagnostics across all analyzer passes.
    analysis_errors: int = 0
    #: WARNING-severity diagnostics across all analyzer passes.
    analysis_warnings: int = 0

    # -- recording (executor-facing) ----------------------------------------

    def record(self, stats: SolveStats) -> None:
        self.solves.append(stats)
        # A degraded verdict means every backend lost: the greedy
        # fallback's "heuristic:<policy>" name is not a backend win (it
        # is already counted in ``fallbacks``).
        if stats.backend and not stats.cache_hit and not stats.degraded:
            self.backend_wins[stats.backend] = (
                self.backend_wins.get(stats.backend, 0) + 1
            )
        if stats.degraded:
            self.fallbacks += 1

    def add_backend_wall(self, backend: str, seconds: float) -> None:
        self.backend_wall[backend] = (
            self.backend_wall.get(backend, 0.0) + seconds
        )

    def record_analysis(self, num_errors: int, num_warnings: int) -> None:
        """Count one pre-solve analyzer pass and its findings."""
        self.analysis_runs += 1
        self.analysis_errors += num_errors
        self.analysis_warnings += num_warnings

    # -- aggregation across workers -----------------------------------------

    def merge(self, other: "RunTelemetry") -> None:
        """Fold another run's metrics into this one.

        The sharded service aggregates each worker's telemetry into a
        single run-wide view: counters add, per-backend maps merge,
        per-solve records concatenate (callers wanting deterministic
        order sort shards before merging).
        """
        self.solves.extend(other.solves)
        for name, seconds in other.backend_wall.items():
            self.backend_wall[name] = (
                self.backend_wall.get(name, 0.0) + seconds
            )
        for name, wins in other.backend_wins.items():
            self.backend_wins[name] = self.backend_wins.get(name, 0) + wins
        self.timeouts += other.timeouts
        self.fallbacks += other.fallbacks
        self.template_builds += other.template_builds
        self.template_instantiations += other.template_instantiations
        self.incumbent_reuses += other.incumbent_reuses
        self.primal_hits += other.primal_hits
        self.basis_restarts += other.basis_restarts
        self.pooled_cuts += other.pooled_cuts
        self.disk_hits += other.disk_hits
        self.analysis_runs += other.analysis_runs
        self.analysis_errors += other.analysis_errors
        self.analysis_warnings += other.analysis_warnings
        self.workers_merged += max(other.workers_merged, 1)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTelemetry":
        """Rebuild from :meth:`to_dict` output (wire/disk transport).

        Derived fields (hit rates, percentiles, ``degraded``) are
        recomputed from the restored base fields; a payload serialized
        with ``include_solves=False`` restores with an empty per-solve
        list, so those derived views read as idle.
        """
        telemetry = cls(
            solves=[
                SolveStats.from_dict(s) for s in payload.get("solves", [])
            ],
            backend_wall={
                str(k): float(v)
                for k, v in payload.get("backend_wall", {}).items()
            },
            backend_wins={
                str(k): int(v)
                for k, v in payload.get("backend_wins", {}).items()
            },
            timeouts=int(payload.get("timeouts", 0)),
            fallbacks=int(payload.get("fallbacks", 0)),
            template_builds=int(payload.get("template_builds", 0)),
            template_instantiations=int(
                payload.get("template_instantiations", 0)
            ),
            incumbent_reuses=int(payload.get("incumbent_reuses", 0)),
            primal_hits=int(payload.get("primal_hits", 0)),
            basis_restarts=int(payload.get("basis_restarts", 0)),
            pooled_cuts=int(payload.get("pooled_cuts", 0)),
            disk_hits=int(payload.get("disk_hits", 0)),
            analysis_runs=int(payload.get("analysis_runs", 0)),
            analysis_errors=int(payload.get("analysis_errors", 0)),
            analysis_warnings=int(payload.get("analysis_warnings", 0)),
        )
        telemetry.workers_merged = int(payload.get("workers_merged", 0))
        return telemetry

    # -- derived views ------------------------------------------------------

    @property
    def total_solves(self) -> int:
        return len(self.solves)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.solves if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return self.total_solves - self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of window solves answered from the cache (0 when idle)."""
        if not self.solves:
            return 0.0
        return self.cache_hits / len(self.solves)

    @property
    def total_wall_time(self) -> float:
        return sum(s.wall_time for s in self.solves)

    @property
    def degraded(self) -> bool:
        """``True`` when any window solve fell back past every backend."""
        return self.fallbacks > 0 or any(s.degraded for s in self.solves)

    def wall_time_percentiles(self) -> dict[str, float]:
        """Per-window wall time percentiles (nearest-rank p50/p90 + max).

        Raw totals hide the long tail that the acceleration counters are
        meant to shrink; the percentiles make them interpretable.  All
        zeros when no window has been solved yet.
        """
        times = sorted(s.wall_time for s in self.solves)
        if not times:
            return {"p50": 0.0, "p90": 0.0, "max": 0.0}

        def rank(q: float) -> float:
            index = max(0, min(len(times) - 1, int(q * len(times) + 0.5) - 1))
            return times[index]

        return {"p50": rank(0.50), "p90": rank(0.90), "max": times[-1]}

    def to_dict(self, include_solves: bool = True) -> dict:
        """JSON-ready summary (schema documented in docs/solving.md)."""
        payload = {
            "total_solves": self.total_solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "total_wall_time": self.total_wall_time,
            "timeouts": self.timeouts,
            "fallbacks": self.fallbacks,
            "incumbent_reuses": self.incumbent_reuses,
            "primal_hits": self.primal_hits,
            "basis_restarts": self.basis_restarts,
            "pooled_cuts": self.pooled_cuts,
            "disk_hits": self.disk_hits,
            "workers_merged": self.workers_merged,
            "wall_time_percentiles": self.wall_time_percentiles(),
            "template_builds": self.template_builds,
            "template_instantiations": self.template_instantiations,
            "analysis_runs": self.analysis_runs,
            "analysis_errors": self.analysis_errors,
            "analysis_warnings": self.analysis_warnings,
            "degraded": self.degraded,
            "backend_wall": dict(self.backend_wall),
            "backend_wins": dict(self.backend_wins),
        }
        if include_solves:
            payload["solves"] = [s.to_dict() for s in self.solves]
        return payload

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of window solves answered by the disk tier (0 idle)."""
        if not self.solves:
            return 0.0
        return self.disk_hits / len(self.solves)

    def summary(self) -> str:
        """One-line human summary for CLI footers and logs."""
        backends = ", ".join(
            f"{name}: {wins}" for name, wins in sorted(self.backend_wins.items())
        ) or "none"
        pct = self.wall_time_percentiles()
        reuse = ""
        if (
            self.incumbent_reuses or self.primal_hits
            or self.basis_restarts or self.pooled_cuts
        ):
            reuse = (
                f", reuse: {self.incumbent_reuses} incumbent/"
                f"{self.primal_hits} primal/"
                f"{self.basis_restarts} basis/"
                f"{self.pooled_cuts} cuts"
            )
        if self.total_solves:
            disk = ""
            if self.disk_hits:
                disk = (
                    f" ({self.disk_hits} disk, "
                    f"{self.disk_hit_rate:.0%} disk rate)"
                )
            cache = (
                f"({self.cache_hits} cached{disk}, hit rate "
                f"{self.cache_hit_rate:.0%})"
            )
        elif self.disk_hits:
            # Merged worker aggregates carry counters but no per-solve
            # records; the disk tier's work is still worth surfacing.
            cache = f"({self.disk_hits} disk hits)"
        else:
            # No window was solved: a "0.0% hit rate" would read as a
            # cold cache when the cache was simply never consulted.
            cache = "(cache idle)"
        service = (
            f", merged from {self.workers_merged} worker(s)"
            if self.workers_merged
            else ""
        )
        return (
            f"{self.total_solves} solves "
            f"{cache}, wins: {backends}, "
            f"{self.timeouts} timeouts, {self.fallbacks} fallbacks{reuse}, "
            f"templates: {self.template_builds} built/"
            f"{self.template_instantiations} instantiated, "
            f"window wall p50/p90/max "
            f"{pct['p50']:.2f}/{pct['p90']:.2f}/{pct['max']:.2f}s, "
            f"{self.total_wall_time:.2f}s total{service}"
        )
