"""Machine-readable run metrics of the solver execution layer.

Every window solve executed by :class:`repro.solve.executor.SolveExecutor`
produces one :class:`SolveStats`; a :class:`RunTelemetry` aggregates them
across a whole search run (counts, per-backend wall time, cache hit rate,
timeout and fallback events).  The structures are plain data with
``to_dict()`` serializers so the CLI (``--telemetry-json``), the
experiment harness and downstream dashboards can persist them as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolveStats", "RunTelemetry"]


@dataclass(frozen=True)
class SolveStats:
    """One window solve as executed (possibly answered from the cache).

    Attributes
    ----------
    num_partitions, d_min, d_max:
        The query: partition bound and latency window (incl. overhead).
    backend:
        Who produced the verdict: a solver backend name, ``"cache"`` for a
        memoized answer, ``"heuristic:<policy>"`` for the greedy fallback,
        or ``""`` when no backend produced anything (hard timeout).
    status:
        The :class:`repro.ilp.SolveStatus` value name (``"feasible"``,
        ``"infeasible"``, ``"time_limit"``, ...).
    wall_time:
        Wall-clock seconds of the whole window solve (all backends).
    iterations:
        Work measure reported by the winning backend (nodes / pivots).
    cache_hit:
        The verdict came from the solve cache; no backend ran.
    degraded:
        All backends exhausted their budgets and the verdict (if any)
        came from the greedy fallback.
    """

    num_partitions: int
    d_min: float
    d_max: float
    backend: str
    status: str
    wall_time: float
    iterations: int = 0
    cache_hit: bool = False
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "d_min": self.d_min,
            "d_max": self.d_max,
            "backend": self.backend,
            "status": self.status,
            "wall_time": self.wall_time,
            "iterations": self.iterations,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
        }


@dataclass
class RunTelemetry:
    """Aggregated execution metrics of one search run.

    Filled incrementally by the :class:`SolveExecutor`; shared across
    every ``Reduce_Latency`` invocation of a ``Refine_Partitions_Bound``
    run so the numbers describe the run as a whole.
    """

    solves: list[SolveStats] = field(default_factory=list)
    #: Wall seconds per backend, including losing portfolio attempts.
    backend_wall: dict[str, float] = field(default_factory=dict)
    #: Window solves each backend decided (portfolio wins or solo runs).
    backend_wins: dict[str, int] = field(default_factory=dict)
    #: Backend attempts that exhausted their budget without a verdict.
    timeouts: int = 0
    #: Window solves answered by the greedy heuristic fallback.
    fallbacks: int = 0
    #: Model templates built (one full construct + compile + hash each).
    template_builds: int = 0
    #: Window models served by patching a template (cheap path); compare
    #: with ``template_builds`` for the incremental-reuse ratio.
    template_instantiations: int = 0
    #: Window solves answered by a still-feasible previous incumbent
    #: (zero solver work; ``SolverSettings.incumbent_reuse``).
    incumbent_reuses: int = 0
    #: Window solves answered by the primal-first stage (LP relaxation +
    #: rounding/diving, or an LP infeasibility proof).
    primal_hits: int = 0
    #: Node LPs that skipped simplex phase I by crashing onto a
    #: previous optimal basis (own-engine branch & bound).
    basis_restarts: int = 0
    #: Cover cuts added to persistent template pools across the run.
    pooled_cuts: int = 0
    #: Pre-solve analyzer passes run (``SolverSettings.analyze != "off"``).
    analysis_runs: int = 0
    #: ERROR-severity diagnostics across all analyzer passes.
    analysis_errors: int = 0
    #: WARNING-severity diagnostics across all analyzer passes.
    analysis_warnings: int = 0

    # -- recording (executor-facing) ----------------------------------------

    def record(self, stats: SolveStats) -> None:
        self.solves.append(stats)
        # A degraded verdict means every backend lost: the greedy
        # fallback's "heuristic:<policy>" name is not a backend win (it
        # is already counted in ``fallbacks``).
        if stats.backend and not stats.cache_hit and not stats.degraded:
            self.backend_wins[stats.backend] = (
                self.backend_wins.get(stats.backend, 0) + 1
            )
        if stats.degraded:
            self.fallbacks += 1

    def add_backend_wall(self, backend: str, seconds: float) -> None:
        self.backend_wall[backend] = (
            self.backend_wall.get(backend, 0.0) + seconds
        )

    def record_analysis(self, num_errors: int, num_warnings: int) -> None:
        """Count one pre-solve analyzer pass and its findings."""
        self.analysis_runs += 1
        self.analysis_errors += num_errors
        self.analysis_warnings += num_warnings

    # -- derived views ------------------------------------------------------

    @property
    def total_solves(self) -> int:
        return len(self.solves)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.solves if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return self.total_solves - self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of window solves answered from the cache (0 when idle)."""
        if not self.solves:
            return 0.0
        return self.cache_hits / len(self.solves)

    @property
    def total_wall_time(self) -> float:
        return sum(s.wall_time for s in self.solves)

    @property
    def degraded(self) -> bool:
        """``True`` when any window solve fell back past every backend."""
        return self.fallbacks > 0 or any(s.degraded for s in self.solves)

    def wall_time_percentiles(self) -> dict[str, float]:
        """Per-window wall time percentiles (nearest-rank p50/p90 + max).

        Raw totals hide the long tail that the acceleration counters are
        meant to shrink; the percentiles make them interpretable.  All
        zeros when no window has been solved yet.
        """
        times = sorted(s.wall_time for s in self.solves)
        if not times:
            return {"p50": 0.0, "p90": 0.0, "max": 0.0}

        def rank(q: float) -> float:
            index = max(0, min(len(times) - 1, int(q * len(times) + 0.5) - 1))
            return times[index]

        return {"p50": rank(0.50), "p90": rank(0.90), "max": times[-1]}

    def to_dict(self, include_solves: bool = True) -> dict:
        """JSON-ready summary (schema documented in docs/solving.md)."""
        payload = {
            "total_solves": self.total_solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "total_wall_time": self.total_wall_time,
            "timeouts": self.timeouts,
            "fallbacks": self.fallbacks,
            "incumbent_reuses": self.incumbent_reuses,
            "primal_hits": self.primal_hits,
            "basis_restarts": self.basis_restarts,
            "pooled_cuts": self.pooled_cuts,
            "wall_time_percentiles": self.wall_time_percentiles(),
            "template_builds": self.template_builds,
            "template_instantiations": self.template_instantiations,
            "analysis_runs": self.analysis_runs,
            "analysis_errors": self.analysis_errors,
            "analysis_warnings": self.analysis_warnings,
            "degraded": self.degraded,
            "backend_wall": dict(self.backend_wall),
            "backend_wins": dict(self.backend_wins),
        }
        if include_solves:
            payload["solves"] = [s.to_dict() for s in self.solves]
        return payload

    def summary(self) -> str:
        """One-line human summary for CLI footers and logs."""
        backends = ", ".join(
            f"{name}: {wins}" for name, wins in sorted(self.backend_wins.items())
        ) or "none"
        pct = self.wall_time_percentiles()
        reuse = ""
        if (
            self.incumbent_reuses or self.primal_hits
            or self.basis_restarts or self.pooled_cuts
        ):
            reuse = (
                f", reuse: {self.incumbent_reuses} incumbent/"
                f"{self.primal_hits} primal/"
                f"{self.basis_restarts} basis/"
                f"{self.pooled_cuts} cuts"
            )
        return (
            f"{self.total_solves} solves "
            f"({self.cache_hits} cached, hit rate "
            f"{self.cache_hit_rate:.0%}), wins: {backends}, "
            f"{self.timeouts} timeouts, {self.fallbacks} fallbacks{reuse}, "
            f"templates: {self.template_builds} built/"
            f"{self.template_instantiations} instantiated, "
            f"window wall p50/p90/max "
            f"{pct['p50']:.2f}/{pct['p90']:.2f}/{pct['max']:.2f}s, "
            f"{self.total_wall_time:.2f}s total"
        )
