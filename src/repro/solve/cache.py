"""Solve memoization with window-monotonic verdict reuse.

The binary-subdivision search re-solves near-identical ILPs: the same
constraint system under a sliding latency window, and whole windows are
revisited verbatim when an experiment (or a replayed run) repeats a
query.  The cache keys entries by the *windowless* model digest of
:mod:`repro.solve.fingerprint` and stores per-window verdicts, serving
three kinds of hits:

``exact``
    The same window was solved before — replay the stored verdict
    (design or proven infeasibility).  Trajectory-preserving: the search
    behaves exactly as if the solver had run again.
``feasible (monotone)``
    A cached design's total latency ``L`` lies inside the queried window
    ``[lo, hi]``.  A design feasible at window ``[a, b]`` is feasible for
    any window containing its latency — in particular any *wider*
    window — so the design itself is a certificate and is returned
    without solving.
``infeasible (monotone)``
    A previously *proven* empty window contains the queried window.
    Infeasibility of ``[a, b]`` implies infeasibility of every
    ``[lo, hi] ⊆ [a, b]``.  Only verdicts with status ``INFEASIBLE`` are
    stored this way: a time-limited solve that found nothing proves
    nothing and is never cached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.obs.metrics import as_metrics
from repro.solve.fingerprint import ModelFingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.solution import PartitionedDesign
    from repro.taskgraph.graph import TaskGraph

__all__ = [
    "CachedVerdict",
    "CacheHit",
    "SolveCache",
    "SolveCacheProtocol",
    "TieredSolveCache",
]

#: Tolerance for window comparisons (floats produced by bisection).
_EPS = 1e-9


@dataclass(frozen=True)
class CachedVerdict:
    """One stored window verdict.

    ``feasible`` entries carry the certificate design and its total
    latency; ``infeasible`` entries carry only the proven-empty window.
    """

    d_min: float
    d_max: float
    feasible: bool
    achieved: float | None = None
    design: "PartitionedDesign | None" = None
    backend: str = ""


@dataclass(frozen=True)
class CacheHit:
    """Lookup result: the verdict, which rule matched, and which tier."""

    verdict: CachedVerdict
    rule: str  # "exact", "feasible", or "infeasible"
    #: Which cache layer answered: ``"memory"`` for the in-process
    #: :class:`SolveCache`, ``"disk"`` for the persistent
    #: :class:`repro.solve.disk_cache.DiskSolveCache`.
    tier: str = "memory"


@runtime_checkable
class SolveCacheProtocol(Protocol):
    """What the :class:`repro.solve.executor.SolveExecutor` needs from a
    solve cache.

    Three implementations exist: the in-process :class:`SolveCache`, the
    persistent :class:`repro.solve.disk_cache.DiskSolveCache`, and the
    :class:`TieredSolveCache` composing the two.  ``lookup`` takes the
    query's :class:`~repro.taskgraph.graph.TaskGraph` so tiers that store
    designs as plain assignments (the disk tier) can decode them back
    into :class:`~repro.core.solution.PartitionedDesign` certificates;
    the in-memory tier ignores it.
    """

    def lookup(
        self, fp: ModelFingerprint, graph: "TaskGraph | None" = None
    ) -> CacheHit | None:
        ...  # pragma: no cover - protocol

    def store_feasible(
        self,
        fp: ModelFingerprint,
        design: "PartitionedDesign",
        achieved: float,
        backend: str = "",
    ) -> None:
        ...  # pragma: no cover - protocol

    def store_infeasible(
        self, fp: ModelFingerprint, backend: str = ""
    ) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class SolveCache:
    """Window-verdict memoization shared across a search run (or runs).

    Thread-safe; the portfolio runner's worker threads never touch the
    cache directly (the executor looks up before dispatch and stores
    after), but a shared cache may serve several searches.
    """

    _entries: dict[str, list[CachedVerdict]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    hits: int = 0
    misses: int = 0
    #: Optional :class:`repro.obs.MetricsRegistry`; lookups are counted
    #: as ``repro_solve_cache_{hits,misses}_total{tier="memory"}``.
    metrics: object = None

    def __post_init__(self) -> None:
        registry = as_metrics(self.metrics)
        self._m_hits = registry.counter(
            "repro_solve_cache_hits_total",
            "Solve-cache lookups answered, by tier and matching rule.",
            ("tier", "rule"),
        )
        self._m_misses = registry.counter(
            "repro_solve_cache_misses_total",
            "Solve-cache lookups nobody answered, by tier.",
            ("tier",),
        )

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup -------------------------------------------------------------

    def lookup(
        self, fp: ModelFingerprint, graph: "TaskGraph | None" = None
    ) -> CacheHit | None:
        """Return a stored verdict valid for ``fp``'s window, or ``None``.

        ``graph`` is part of the :class:`SolveCacheProtocol` signature
        (the disk tier needs it to decode stored assignments); the
        in-memory cache holds live designs and ignores it.
        """
        lo, hi = fp.d_min, fp.d_max
        with self._lock:
            records = self._entries.get(fp.base, ())
            exact = None
            feasible = None
            infeasible = None
            for record in records:
                same_window = (
                    abs(record.d_min - lo) <= _EPS
                    and abs(record.d_max - hi) <= _EPS
                )
                if same_window and exact is None:
                    exact = record
                if (
                    record.feasible
                    and record.achieved is not None
                    and lo - _EPS <= record.achieved <= hi + _EPS
                    and feasible is None
                ):
                    feasible = record
                if (
                    not record.feasible
                    and record.d_min <= lo + _EPS
                    and hi <= record.d_max + _EPS
                    and infeasible is None
                ):
                    infeasible = record
            # Exact replays win (they preserve the search trajectory
            # bit-for-bit); then certificates, then emptiness proofs.
            if exact is not None:
                hit = CacheHit(exact, "exact")
            elif feasible is not None:
                hit = CacheHit(feasible, "feasible")
            elif infeasible is not None:
                hit = CacheHit(infeasible, "infeasible")
            else:
                self.misses += 1
                self._m_misses.labels("memory").inc()
                return None
            self.hits += 1
            self._m_hits.labels("memory", hit.rule).inc()
            return hit

    # -- store --------------------------------------------------------------

    def store_feasible(
        self,
        fp: ModelFingerprint,
        design: "PartitionedDesign",
        achieved: float,
        backend: str = "",
    ) -> None:
        """Record a feasibility certificate for ``fp``'s window."""
        self._store(
            fp,
            CachedVerdict(
                d_min=fp.d_min,
                d_max=fp.d_max,
                feasible=True,
                achieved=float(achieved),
                design=design,
                backend=backend,
            ),
        )

    def store_infeasible(self, fp: ModelFingerprint, backend: str = "") -> None:
        """Record a *proven* emptiness verdict for ``fp``'s window.

        Callers must only pass windows whose solve ended with status
        ``INFEASIBLE`` — never a timeout treated as infeasible by the
        search's pragmatic convention.
        """
        self._store(
            fp,
            CachedVerdict(
                d_min=fp.d_min,
                d_max=fp.d_max,
                feasible=False,
                backend=backend,
            ),
        )

    def insert(self, base: str, record: CachedVerdict) -> None:
        """Adopt a verdict produced elsewhere (tier promotion).

        Used by :class:`TieredSolveCache` to pull disk hits into memory
        so repeated queries in the same process never touch SQLite again.
        """
        fp = ModelFingerprint(
            base=base, num_partitions=0,
            d_min=record.d_min, d_max=record.d_max,
        )
        self._store(fp, record)

    def _store(self, fp: ModelFingerprint, record: CachedVerdict) -> None:
        with self._lock:
            bucket = self._entries.setdefault(fp.base, [])
            for existing in bucket:
                if (
                    existing.feasible == record.feasible
                    and abs(existing.d_min - record.d_min) <= _EPS
                    and abs(existing.d_max - record.d_max) <= _EPS
                ):
                    return  # duplicate verdict
            bucket.append(record)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


class TieredSolveCache:
    """Two-level solve cache: in-process memory in front of shared disk.

    Lookups consult the memory tier first (no I/O on the hot path); disk
    hits are promoted into memory so each verdict is decoded at most once
    per process.  Stores write through to both tiers, which is how one
    worker's verdict becomes visible to the whole fleet: the memory tier
    dies with the process, the disk tier (``DiskSolveCache``) is the
    durable, cross-process store.
    """

    def __init__(self, memory: SolveCache, disk) -> None:
        self.memory = memory
        self.disk = disk

    def __len__(self) -> int:
        return len(self.memory)

    @property
    def hits(self) -> int:
        return self.memory.hits + self.disk.hits

    @property
    def misses(self) -> int:
        # Every disk lookup was a memory miss first; only count the
        # queries neither tier answered.
        return self.disk.misses

    def lookup(
        self, fp: ModelFingerprint, graph: "TaskGraph | None" = None
    ) -> CacheHit | None:
        hit = self.memory.lookup(fp, graph)
        if hit is not None:
            return hit
        hit = self.disk.lookup(fp, graph)
        if hit is not None:
            self.memory.insert(fp.base, hit.verdict)
        return hit

    def store_feasible(
        self,
        fp: ModelFingerprint,
        design: "PartitionedDesign",
        achieved: float,
        backend: str = "",
    ) -> None:
        self.memory.store_feasible(fp, design, achieved, backend=backend)
        self.disk.store_feasible(fp, design, achieved, backend=backend)

    def store_infeasible(self, fp: ModelFingerprint, backend: str = "") -> None:
        self.memory.store_infeasible(fp, backend=backend)
        self.disk.store_infeasible(fp, backend=backend)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()
