"""Solve memoization with window-monotonic verdict reuse.

The binary-subdivision search re-solves near-identical ILPs: the same
constraint system under a sliding latency window, and whole windows are
revisited verbatim when an experiment (or a replayed run) repeats a
query.  The cache keys entries by the *windowless* model digest of
:mod:`repro.solve.fingerprint` and stores per-window verdicts, serving
three kinds of hits:

``exact``
    The same window was solved before — replay the stored verdict
    (design or proven infeasibility).  Trajectory-preserving: the search
    behaves exactly as if the solver had run again.
``feasible (monotone)``
    A cached design's total latency ``L`` lies inside the queried window
    ``[lo, hi]``.  A design feasible at window ``[a, b]`` is feasible for
    any window containing its latency — in particular any *wider*
    window — so the design itself is a certificate and is returned
    without solving.
``infeasible (monotone)``
    A previously *proven* empty window contains the queried window.
    Infeasibility of ``[a, b]`` implies infeasibility of every
    ``[lo, hi] ⊆ [a, b]``.  Only verdicts with status ``INFEASIBLE`` are
    stored this way: a time-limited solve that found nothing proves
    nothing and is never cached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.solve.fingerprint import ModelFingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.solution import PartitionedDesign

__all__ = ["CachedVerdict", "SolveCache"]

#: Tolerance for window comparisons (floats produced by bisection).
_EPS = 1e-9


@dataclass(frozen=True)
class CachedVerdict:
    """One stored window verdict.

    ``feasible`` entries carry the certificate design and its total
    latency; ``infeasible`` entries carry only the proven-empty window.
    """

    d_min: float
    d_max: float
    feasible: bool
    achieved: float | None = None
    design: "PartitionedDesign | None" = None
    backend: str = ""


@dataclass(frozen=True)
class CacheHit:
    """Lookup result: the verdict plus which rule matched."""

    verdict: CachedVerdict
    rule: str  # "exact", "feasible", or "infeasible"


@dataclass
class SolveCache:
    """Window-verdict memoization shared across a search run (or runs).

    Thread-safe; the portfolio runner's worker threads never touch the
    cache directly (the executor looks up before dispatch and stores
    after), but a shared cache may serve several searches.
    """

    _entries: dict[str, list[CachedVerdict]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    hits: int = 0
    misses: int = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup -------------------------------------------------------------

    def lookup(self, fp: ModelFingerprint) -> CacheHit | None:
        """Return a stored verdict valid for ``fp``'s window, or ``None``."""
        lo, hi = fp.d_min, fp.d_max
        with self._lock:
            records = self._entries.get(fp.base, ())
            exact = None
            feasible = None
            infeasible = None
            for record in records:
                same_window = (
                    abs(record.d_min - lo) <= _EPS
                    and abs(record.d_max - hi) <= _EPS
                )
                if same_window and exact is None:
                    exact = record
                if (
                    record.feasible
                    and record.achieved is not None
                    and lo - _EPS <= record.achieved <= hi + _EPS
                    and feasible is None
                ):
                    feasible = record
                if (
                    not record.feasible
                    and record.d_min <= lo + _EPS
                    and hi <= record.d_max + _EPS
                    and infeasible is None
                ):
                    infeasible = record
            # Exact replays win (they preserve the search trajectory
            # bit-for-bit); then certificates, then emptiness proofs.
            if exact is not None:
                hit = CacheHit(exact, "exact")
            elif feasible is not None:
                hit = CacheHit(feasible, "feasible")
            elif infeasible is not None:
                hit = CacheHit(infeasible, "infeasible")
            else:
                self.misses += 1
                return None
            self.hits += 1
            return hit

    # -- store --------------------------------------------------------------

    def store_feasible(
        self,
        fp: ModelFingerprint,
        design: "PartitionedDesign",
        achieved: float,
        backend: str = "",
    ) -> None:
        """Record a feasibility certificate for ``fp``'s window."""
        self._store(
            fp,
            CachedVerdict(
                d_min=fp.d_min,
                d_max=fp.d_max,
                feasible=True,
                achieved=float(achieved),
                design=design,
                backend=backend,
            ),
        )

    def store_infeasible(self, fp: ModelFingerprint, backend: str = "") -> None:
        """Record a *proven* emptiness verdict for ``fp``'s window.

        Callers must only pass windows whose solve ended with status
        ``INFEASIBLE`` — never a timeout treated as infeasible by the
        search's pragmatic convention.
        """
        self._store(
            fp,
            CachedVerdict(
                d_min=fp.d_min,
                d_max=fp.d_max,
                feasible=False,
                backend=backend,
            ),
        )

    def _store(self, fp: ModelFingerprint, record: CachedVerdict) -> None:
        with self._lock:
            bucket = self._entries.setdefault(fp.base, [])
            for existing in bucket:
                if (
                    existing.feasible == record.feasible
                    and abs(existing.d_min - record.d_min) <= _EPS
                    and abs(existing.d_max - record.d_max) <= _EPS
                ):
                    return  # duplicate verdict
            bucket.append(record)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
