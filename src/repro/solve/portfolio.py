"""Backend portfolio: race several solvers, keep the first verdict.

The paper's search only ever asks a *decision* question — "does a design
exist in this latency window?" — so any backend that answers first
answers correctly: a feasible design is a certificate whoever finds it,
and a proven ``INFEASIBLE`` is a proof whoever derives it.  Racing the
scipy/HiGHS engine against the from-scratch branch & bound (and
optionally the CP backtracker) therefore changes only *when* the answer
arrives, never *whether* it is right.

Implementation notes
--------------------
* One worker thread per backend via :mod:`concurrent.futures`; the GIL
  is released inside scipy's HiGHS calls, so the race genuinely overlaps.
* Cancellation is cooperative: the winner sets a :class:`threading.Event`
  that the branch & bound (``BnbOptions.should_stop``) and the CP solver
  poll in their node loops.  HiGHS cannot be interrupted mid-call; its
  thread is abandoned (``shutdown(wait=False)``) and expires on its own
  per-solve time limit.
* An attempt is *conclusive* when it carries a solution or a proven
  ``INFEASIBLE``/``UNBOUNDED`` verdict.  Timeouts and cancellations are
  inconclusive; the race keeps waiting for the remaining backends.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.ilp.status import SolveStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.solution import PartitionedDesign

__all__ = ["SolveAttempt", "race_backends"]


@dataclass(frozen=True)
class SolveAttempt:
    """Outcome of one backend's try at a window solve."""

    backend: str
    status: SolveStatus
    design: "PartitionedDesign | None"
    wall_time: float
    iterations: int = 0
    error: str | None = None
    #: Backend extras (e.g. ``root_basis`` / ``basis_restarts`` from the
    #: from-scratch branch & bound).  Returned through the attempt — not
    #: written to shared state — so worker threads stay race-free
    #: (RL002); the executor reads it on the main thread after the race.
    stats: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def conclusive(self) -> bool:
        """A verdict the search can act on without consulting anyone else."""
        if self.design is not None:
            return True
        return self.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)


#: A backend runner: receives the shared cancellation event, returns its
#: attempt.  Runners must be thread-safe with respect to each other.
AttemptFn = Callable[[threading.Event], SolveAttempt]


def race_backends(
    attempts: Sequence[tuple[str, AttemptFn]],
    grace: float = 0.05,
    tracer=None,
    parent=None,
    metrics=None,
) -> tuple[SolveAttempt | None, list[SolveAttempt]]:
    """Run every attempt concurrently; return the first conclusive one.

    Parameters
    ----------
    attempts:
        ``(backend name, runner)`` pairs.  A single pair short-circuits to
        an inline call (no thread overhead) — sequential mode is just a
        one-entry portfolio.
    grace:
        After a winner emerges, how long to wait for already-finished
        futures when collecting loser statistics.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Each attempt runs inside an
        ``attempt:<backend>`` span.  Worker threads cannot see the
        caller's thread-local span stack, so the parent is captured here
        (``parent`` or the caller's current span) and attached
        explicitly — the spans nest under the window solve in the tree
        even though they ran on other threads.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` recording per-backend
        attempt counts, win/cancellation counts and solve-duration
        histograms.  Worker threads only call the registry's (locked)
        methods — no shared state is assigned — so the portfolio's
        race-freedom rules hold.

    Returns
    -------
    ``(winner, completed)`` where ``winner`` is the first conclusive
    attempt (or ``None`` if every backend finished inconclusively) and
    ``completed`` lists every attempt that finished before the race was
    abandoned — used for per-backend telemetry.
    """
    if tracer is None:
        from repro.obs.tracer import NULL_TRACER

        tracer = NULL_TRACER
    if metrics is None:
        from repro.obs.metrics import NULL_METRICS

        metrics = NULL_METRICS
    if parent is None:
        parent = tracer.current_span()

    m_attempts = metrics.counter(
        "repro_backend_attempts_total",
        "Backend attempts started in portfolio races.",
        ("backend",),
    )
    m_seconds = metrics.histogram(
        "repro_backend_solve_seconds",
        "Wall time of one backend attempt (winners and losers alike).",
        ("backend",),
    )

    def run(name: str, fn: AttemptFn, cancel: threading.Event) -> SolveAttempt:
        with tracer.span(f"attempt:{name}", parent=parent, backend=name) as sp:
            attempt = _run_guarded(name, fn, cancel)
            m_attempts.labels(name).inc()
            m_seconds.labels(name).observe(attempt.wall_time)
            sp.annotate(
                status=attempt.status.value,
                iterations=attempt.iterations,
                conclusive=attempt.conclusive,
            )
            if attempt.error:
                sp.annotate(error=attempt.error)
        return attempt

    cancel = threading.Event()
    if len(attempts) == 1:
        name, fn = attempts[0]
        attempt = run(name, fn, cancel)
        winner = attempt if attempt.conclusive else None
        _tally_race(metrics, winner, [attempt])
        return winner, [attempt]

    completed: list[SolveAttempt] = []
    winner: SolveAttempt | None = None
    pool = ThreadPoolExecutor(
        max_workers=len(attempts), thread_name_prefix="solve-portfolio"
    )
    try:
        pending = {
            pool.submit(run, name, fn, cancel): name
            for name, fn in attempts
        }
        while pending:
            done, not_done = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                pending.pop(future)
                attempt = future.result()
                completed.append(attempt)
                if winner is None and attempt.conclusive:
                    winner = attempt
            if winner is not None:
                # Tell cooperative backends to stop, then give the
                # near-finished stragglers a moment to land in telemetry.
                cancel.set()
                if not_done:
                    done, _ = wait(not_done, timeout=grace)
                    for future in done:
                        pending.pop(future, None)
                        completed.append(future.result())
                break
    finally:
        cancel.set()
        pool.shutdown(wait=False, cancel_futures=True)
    _tally_race(metrics, winner, completed)
    return winner, completed


def _tally_race(metrics, winner, completed) -> None:
    """Per-backend win/cancellation counters, recorded on the caller's
    thread once the race is decided (losers reporting a budget status
    after a winner emerged were cancelled, not slow)."""
    m_wins = metrics.counter(
        "repro_backend_wins_total",
        "Races decided by this backend's conclusive verdict.",
        ("backend",),
    )
    m_cancellations = metrics.counter(
        "repro_backend_cancellations_total",
        "Attempts cancelled because another backend answered first.",
        ("backend",),
    )
    if winner is None:
        return
    m_wins.labels(winner.backend).inc()
    for attempt in completed:
        if attempt is not winner and attempt.status in (
            SolveStatus.TIME_LIMIT,
            SolveStatus.NODE_LIMIT,
        ):
            m_cancellations.labels(attempt.backend).inc()


def _run_guarded(
    name: str, fn: AttemptFn, cancel: threading.Event
) -> SolveAttempt:
    """Run one backend, converting exceptions into ERROR attempts.

    A crashing backend must not take the portfolio down: the other
    backends can still answer, and the executor degrades gracefully if
    none do.
    """
    start = time.perf_counter()
    try:
        return fn(cancel)
    except Exception as exc:  # noqa: BLE001 - deliberate containment
        return SolveAttempt(
            backend=name,
            status=SolveStatus.ERROR,
            design=None,
            wall_time=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
