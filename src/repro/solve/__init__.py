"""Solver execution layer: portfolio racing, memoization, telemetry.

This package sits between the search algorithms of :mod:`repro.core` and
the solver backends of :mod:`repro.ilp`.  The search asks *decision*
questions ("is there a design in this latency window?"); this layer
decides *how* each question is answered:

* :mod:`repro.solve.executor` — the :class:`SolveExecutor` entry point:
  cache lookup, deadline policy, portfolio dispatch, greedy fallback;
* :mod:`repro.solve.portfolio` — backend racing with cooperative
  cancellation;
* :mod:`repro.solve.cache` — window-monotonic solve memoization (and
  the :class:`TieredSolveCache` putting in-process memory in front of
  shared disk);
* :mod:`repro.solve.disk_cache` — the persistent SQLite verdict store
  shared across processes and runs (``SolverSettings(cache_path=...)``);
* :mod:`repro.solve.fingerprint` — canonical model fingerprints;
* :mod:`repro.solve.telemetry` — machine-readable run metrics.

See ``docs/solving.md`` for the full design.
"""

from repro.solve.cache import (
    CachedVerdict,
    CacheHit,
    SolveCache,
    SolveCacheProtocol,
    TieredSolveCache,
)
from repro.solve.disk_cache import DiskSolveCache
from repro.solve.executor import KNOWN_BACKENDS, SolveExecutor, WindowOutcome
from repro.solve.fingerprint import (
    ModelFingerprint,
    fingerprint_compiled,
    fingerprint_ilp,
    fingerprint_model,
)
from repro.solve.portfolio import SolveAttempt, race_backends
from repro.solve.telemetry import RunTelemetry, SolveStats

__all__ = [
    "CacheHit",
    "CachedVerdict",
    "DiskSolveCache",
    "KNOWN_BACKENDS",
    "ModelFingerprint",
    "RunTelemetry",
    "SolveAttempt",
    "SolveCache",
    "SolveCacheProtocol",
    "SolveExecutor",
    "SolveStats",
    "TieredSolveCache",
    "WindowOutcome",
    "fingerprint_compiled",
    "fingerprint_ilp",
    "fingerprint_model",
    "race_backends",
]
