"""Canonical fingerprints of built temporal-partitioning models.

The solve cache must recognize that two ``build_model()`` calls describe
the *same* constraint system even though the objects differ, and it must
separate the latency window (equations (9)-(10)) from the rest of the
model so window-monotonic verdict reuse is possible.  The digest covers:

* every variable as ``(name, lb, ub, vtype)``,
* every constraint — *except* the two latency-window rows
  (``latency_ub`` / ``latency_lb``), which are represented structurally
  by the fingerprint's ``d_min``/``d_max`` fields instead,
* the objective terms and sense.

The canonical hashing path is :func:`fingerprint_compiled`: it digests
the raw arrays of the sparse compiled form
(:class:`repro.ilp.compile.CompiledModel`) — no expression walking.
Template-built models (:class:`repro.core.formulation.ModelTemplate`)
skip hashing entirely: the template's ``base_fingerprint`` is composed
with the window into a :class:`ModelFingerprint` as-is, so a cache key
for a new window costs nothing.  :func:`fingerprint_ilp` remains as the
expression-level reference implementation (and for models one does not
want to compile).

Floats are hashed via ``repr`` (or raw IEEE bytes on the compiled path)
so the digest is exact (no quantization): a perturbed capacity, latency
value or coefficient changes the digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.formulation import TemporalPartitioningModel
    from repro.ilp.compile import CompiledModel
    from repro.ilp.model import Model

__all__ = [
    "ModelFingerprint",
    "fingerprint_compiled",
    "fingerprint_model",
    "fingerprint_ilp",
]

#: Constraint names that encode the latency window, excluded from the
#: structural digest and carried as the fingerprint's window fields.
WINDOW_ROW_NAMES = ("latency_ub", "latency_lb")


@dataclass(frozen=True)
class ModelFingerprint:
    """Identity of one window solve: structure digest + latency window.

    Two fingerprints with equal ``base`` describe the same constraint
    system up to the latency window; the window itself is kept as plain
    numbers so the cache can reason about containment and monotonicity.
    """

    base: str            # sha256 hex digest of the windowless structure
    num_partitions: int
    d_min: float
    d_max: float
    #: Id of the scenario whose families built the model.  Annotation
    #: only: scenarios build different constraint systems, so distinct
    #: scenarios already yield distinct ``base`` digests — cache keys
    #: (and warm disk caches) are unaffected by this field.
    scenario: str = "paper_oneshot"

    @property
    def window(self) -> tuple[float, float]:
        return (self.d_min, self.d_max)

    def same_model(self, other: "ModelFingerprint") -> bool:
        """Same constraint system, ignoring the latency window."""
        return self.base == other.base

    def __str__(self) -> str:  # compact, log-friendly
        suffix = "" if self.scenario == "paper_oneshot" else f"#{self.scenario}"
        return (
            f"{self.base[:12]}@N{self.num_partitions}"
            f"[{self.d_min:g},{self.d_max:g}]{suffix}"
        )


def fingerprint_ilp(model: "Model", skip_rows: tuple[str, ...] = ()) -> str:
    """SHA-256 digest of an ILP's structure, skipping named rows."""
    digest = hashlib.sha256()
    update = digest.update
    for var in model.variables:
        update(
            f"v|{var.name}|{var.lb!r}|{var.ub!r}|{var.vtype.value}\n".encode()
        )
    for constr in model.constraints:
        if constr.name in skip_rows:
            continue
        terms = sorted(
            (var.name, coef) for var, coef in constr.expr.terms.items()
        )
        update(f"c|{constr.name}|{constr.sense.value}|{constr.rhs!r}|".encode())
        for name, coef in terms:
            update(f"{name}:{coef!r},".encode())
        update(b"\n")
    objective = sorted(
        (var.name, coef) for var, coef in model.objective.terms.items()
    )
    update(f"o|{model.objective_sense}|{model.objective.constant!r}|".encode())
    for name, coef in objective:
        update(f"{name}:{coef!r},".encode())
    return digest.hexdigest()


def fingerprint_compiled(
    compiled: "CompiledModel", skip_rows: tuple[str, ...] = ()
) -> str:
    """SHA-256 digest of a compiled model's structure, skipping named rows.

    Hashes the raw CSR arrays (cached per ``skip_rows`` on the compiled
    object), so fingerprinting shares work with solving instead of
    re-walking expressions.
    """
    return compiled.fingerprint(skip_rows=skip_rows)


def fingerprint_model(tp_model: "TemporalPartitioningModel") -> ModelFingerprint:
    """Fingerprint a built temporal-partitioning model.

    The latency-window rows are excluded from the digest and surfaced as
    the fingerprint's ``d_min``/``d_max``, enabling the cache's
    monotonicity rules (see :mod:`repro.solve.cache`).

    Three cost tiers, cheapest first:

    * template-built models carry their template's ``base_fingerprint``
      — composed directly, no hashing at all;
    * models with a compiled form (or a cached one on their ``model``)
      hash the compiled arrays via :func:`fingerprint_compiled`;
    * otherwise the model is compiled first (the compilation is cached
      on the :class:`repro.ilp.Model`, so a subsequent solve reuses it).
    """
    base = tp_model.base_fingerprint
    if base is None:
        compiled = tp_model.compiled
        if compiled is None:
            compiled = tp_model.model.compile()
        base = fingerprint_compiled(compiled, skip_rows=WINDOW_ROW_NAMES)
    return ModelFingerprint(
        base=base,
        num_partitions=tp_model.num_partitions,
        d_min=float(tp_model.d_min),
        d_max=float(tp_model.d_max),
        scenario=getattr(tp_model.options, "scenario", "paper_oneshot"),
    )
